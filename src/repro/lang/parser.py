"""A concrete text syntax for the mini-language.

Programs can be written as plain text and parsed into
:class:`~repro.lang.ast.Program` values, which makes the CLI, the
examples and user experiments self-contained.  The grammar::

    program   := decl* procdef+
    decl      := "shared" NAME "=" INT
               | "sem" NAME ["=" INT]
               | "event" NAME ["posted"]
    procdef   := "proc" NAME block
    block     := "{" stmt* "}"
    stmt      := NAME ":=" expr                  -- shared assignment
               | "$" NAME ":=" expr              -- local assignment
               | "skip" [label]
               | "P" "(" NAME ")" [label]
               | "V" "(" NAME ")" [label]
               | "post" NAME [label]
               | "wait" NAME [label]
               | "clear" NAME [label]
               | "fence" [label]
               | "if" [label] expr block ["else" block]
               | "while" [label] expr block
               | "fork" [label] "{" procdef+ "}"
               | "join" [label]
    label     := "@" NAME
    expr      := C-like precedence over || && ! == != < <= > >=
                 + - * / % with INT, NAME (shared), $NAME (local),
                 parentheses

Statements are newline- or ``;``-separated; ``#`` starts a comment.

Example
-------
>>> prog = parse_program('''
... shared X = 0
... proc main {
...   fork {
...     proc t1 { post ev @left; X := 1 }
...     proc t2 { if X == 1 { post ev @right } else { wait ev } }
...   }
...   join
... }
... ''')
>>> [p.name for p in prog.processes]
['main']
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast as A


class ParseError(ValueError):
    """A syntax error, carrying line/column information."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>:=|==|!=|<=|>=|\|\||&&|[-+*/%<>!(){};$@=])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "shared", "sem", "event", "posted", "proc", "skip", "P", "V",
    "post", "wait", "clear", "fence", "if", "else", "while", "fork", "join",
}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind == "newline":
            tokens.append(_Token("newline", text, line, col))
            line += 1
            line_start = m.end()
        elif kind not in ("ws", "comment"):
            if kind == "name" and text in _KEYWORDS:
                kind = text
            tokens.append(_Token(kind, text, line, col))
        pos = m.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, skip_newlines: bool = True) -> _Token:
        i = self.pos
        while skip_newlines and self.tokens[i].kind == "newline":
            i += 1
        return self.tokens[i]

    def advance(self, skip_newlines: bool = True) -> _Token:
        while skip_newlines and self.tokens[self.pos].kind == "newline":
            self.pos += 1
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, context: Optional[str] = None) -> _Token:
        tok = self.advance()
        if tok.kind != kind:
            what = context if context is not None else repr(kind)
            raise ParseError(f"expected {what}, found {tok.text!r}", tok.line, tok.column)
        return tok

    def accept(self, kind: str) -> Optional[_Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def accept_op(self, text: str) -> Optional[_Token]:
        tok = self.peek()
        if tok.kind == "op" and tok.text == text:
            return self.advance()
        return None

    # -- program --------------------------------------------------------
    def parse_program(self) -> A.Program:
        shared: Dict[str, int] = {}
        sems: Dict[str, int] = {}
        events: Set[str] = set()
        procs: List[A.ProcessDef] = []
        while True:
            tok = self.peek()
            if tok.kind == "eof":
                break
            if tok.kind == "shared":
                self.advance()
                name = self.expect("name").text
                self._expect_op("=")
                neg = self.accept_op("-") is not None
                value = int(self.expect("int").text)
                shared[name] = -value if neg else value
            elif tok.kind == "sem":
                self.advance()
                name = self.expect("name").text
                init = 0
                if self.accept_op("="):
                    init = int(self.expect("int").text)
                sems[name] = init
            elif tok.kind == "event":
                self.advance()
                name = self.expect("name").text
                if self.accept("posted"):
                    events.add(name)
                else:
                    events.discard(name)
            elif tok.kind == "proc":
                procs.append(self.parse_procdef())
            else:
                raise ParseError(
                    f"expected a declaration or 'proc', found {tok.text!r}",
                    tok.line, tok.column,
                )
        if not procs:
            tok = self.peek()
            raise ParseError("program has no processes", tok.line, tok.column)
        return A.Program(procs, sem_initial=sems, var_initial=events, shared_initial=shared)

    def parse_procdef(self) -> A.ProcessDef:
        self.expect("proc")
        name = self.expect("name").text
        body = self.parse_block()
        return A.ProcessDef(name, body)

    def parse_block(self) -> List[A.Stmt]:
        tok = self.advance()
        if not (tok.kind == "op" and tok.text == "{"):
            raise ParseError(f"expected '{{', found {tok.text!r}", tok.line, tok.column)
        stmts: List[A.Stmt] = []
        while True:
            if self.peek().kind == "op" and self.peek().text == "}":
                self.advance()
                return stmts
            if self.peek().kind == "eof":
                tok = self.peek()
                raise ParseError("unterminated block", tok.line, tok.column)
            stmts.append(self.parse_stmt())
            while self.accept_op(";"):
                pass

    def _label(self) -> Optional[str]:
        if self.peek().kind == "op" and self.peek().text == "@":
            self.advance()
            return self.expect("name").text
        return None

    # -- statements -------------------------------------------------------
    def parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if tok.kind == "skip":
            self.advance()
            return A.Skip(label=self._label())
        if tok.kind in ("P", "V"):
            self.advance()
            self._expect_op("(", context=f"after {tok.text!r}")
            name = self.expect("name", context=f"a semaphore name in {tok.text}(...)")
            self._expect_op(")", context=f"closing {tok.text}(...)")
            label = self._label()
            return A.SemP(name.text, label) if tok.kind == "P" else A.SemV(name.text, label)
        if tok.kind in ("post", "wait", "clear"):
            self.advance()
            name = self.expect("name", context=f"an event-variable name after {tok.text!r}")
            label = self._label()
            cls = {"post": A.Post, "wait": A.Wait, "clear": A.Clear}[tok.kind]
            return cls(name.text, label)
        if tok.kind == "fence":
            self.advance()
            return A.Fence(label=self._label())
        if tok.kind == "if":
            self.advance()
            label = self._label()
            cond = self.parse_expr()
            then = self.parse_block()
            orelse: List[A.Stmt] = []
            if self.accept("else"):
                orelse = self.parse_block()
            return A.If(cond, then, orelse, label=label)
        if tok.kind == "while":
            self.advance()
            label = self._label()
            cond = self.parse_expr()
            body = self.parse_block()
            return A.While(cond, body, label=label)
        if tok.kind == "fork":
            self.advance()
            label = self._label()
            self._expect_op("{")
            children = []
            while self.peek().kind == "proc":
                children.append(self.parse_procdef())
            self._expect_op("}")
            if not children:
                raise ParseError("fork requires at least one proc", tok.line, tok.column)
            return A.Fork(children, label=label)
        if tok.kind == "join":
            self.advance()
            return A.Join(label=self._label())
        if tok.kind == "op" and tok.text == "$":
            self.advance()
            name = self.expect("name").text
            self._expect_op(":=")
            expr = self.parse_expr()
            return A.LocalAssign(name, expr, label=self._label())
        if tok.kind == "name":
            self.advance()
            nxt = self.peek()
            if not (nxt.kind == "op" and nxt.text == ":="):
                # a bare name that is not an assignment target is almost
                # always a misspelled keyword (fense, joinn, ...); point
                # at the name itself rather than complaining about ':='
                raise ParseError(
                    f"unknown statement {tok.text!r} (not a keyword, and not "
                    f"followed by ':=' for an assignment)",
                    tok.line, tok.column,
                )
            self._expect_op(":=")
            expr = self.parse_expr()
            return A.Assign(tok.text, expr, label=self._label())
        raise ParseError(f"expected a statement, found {tok.text!r}", tok.line, tok.column)

    def _expect_op(self, text: str, context: Optional[str] = None) -> None:
        tok = self.advance()
        if tok.text != text:
            where = f" {context}" if context else ""
            raise ParseError(
                f"expected {text!r}{where}, found {tok.text!r}", tok.line, tok.column
            )

    # -- expressions (precedence climbing) ---------------------------------
    _BINARY_LEVELS = [
        {"||": "or"},
        {"&&": "and"},
        {"==": "==", "!=": "!="},
        {"<": "<", "<=": "<=", ">": ">", ">=": ">="},
        {"+": "+", "-": "-"},
        {"*": "*", "/": "//", "%": "%"},
    ]

    def parse_expr(self, level: int = 0) -> A.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_expr(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            op = self.advance().text
            right = self.parse_expr(level + 1)
            left = A.BinOp(ops[op], left, right)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text == "!":
            self.advance()
            return A.UnOp("not", self.parse_unary())
        if tok.kind == "op" and tok.text == "-":
            self.advance()
            return A.UnOp("-", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> A.Expr:
        tok = self.advance()
        if tok.kind == "int":
            return A.Const(int(tok.text))
        if tok.kind == "name":
            return A.Shared(tok.text)
        if tok.kind == "op" and tok.text == "$":
            name = self.expect("name").text
            return A.Local(name)
        if tok.kind == "op" and tok.text == "(":
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        raise ParseError(f"expected an expression, found {tok.text!r}", tok.line, tok.column)


def parse_program(source: str) -> A.Program:
    """Parse a program from its text form (see module docstring)."""
    return _Parser(source).parse_program()


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression (useful in tests and the REPL)."""
    parser = _Parser(source)
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(f"trailing input {tok.text!r}", tok.line, tok.column)
    return expr
