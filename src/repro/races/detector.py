"""Race detectors: apparent (vector clock) and feasible (exact CCW).

The feasible detector is where the paper's hardness bites in practice:
each conflicting pair is an NP-hard CCW query, so the scan degrades
gracefully instead of crashing.  Every pair is classified
``feasible`` / ``infeasible`` / ``unknown`` under a per-pair
:class:`~repro.budget.Budget` (sharing one wall-clock deadline across
the scan), and a single pathological pair can neither raise away the
results already computed nor starve the remaining pairs.

The scan itself is *pluggable*: :meth:`RaceDetector.feasible_races`
delegates each undecided pair either to the in-process serial loop or
to a caller-supplied *pair runner* (see :data:`PairRunner`) such as the
crash-isolated worker pool in :mod:`repro.supervise.pool`.  Pairs
already classified by an earlier scan can be injected via
``precomputed`` (the checkpoint/resume path), and every freshly
computed classification is streamed to ``on_classified`` so a journal
can record it the moment it exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.approx.vectorclock import VectorClockAnalysis
from repro.budget import Budget, DEADLINE
from repro.core.witness import Witness
from repro.model.execution import ProgramExecution
from repro.solve.context import EMPTY_DROP, SolveContext
from repro.solve.planner import PlannerReport, QueryPlanner

FEASIBLE = "feasible"
INFEASIBLE = "infeasible"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Race:
    """A pair of conflicting events that may run concurrently.

    ``witness`` (feasible races only) is a schedule in which the two
    events' intervals overlap; ``variables`` lists the shared locations
    both sides touch conflictingly.
    """

    a: int
    b: int
    variables: FrozenSet[str]
    kind: str  # "apparent" or "feasible"
    witness: Optional[Witness] = None

    def describe(self, exe: ProgramExecution) -> str:
        ea, eb = exe.event(self.a), exe.event(self.b)
        vs = ",".join(sorted(self.variables))
        return f"[{self.kind}] {ea.describe()} <-> {eb.describe()} on {{{vs}}}"


@dataclass(frozen=True)
class PairClassification:
    """One conflicting pair's outcome under a budgeted scan."""

    a: int
    b: int
    status: str  # FEASIBLE / INFEASIBLE / UNKNOWN
    variables: FrozenSet[str]
    witness: Optional[Witness] = None
    resource: Optional[str] = None  # exhausted resource when UNKNOWN
    decided_by: Optional[str] = None  # planner tier that settled the pair

    def describe(self, exe: ProgramExecution) -> str:
        ea, eb = exe.event(self.a), exe.event(self.b)
        note = f" (exhausted {self.resource})" if self.resource else ""
        return f"[{self.status}] {ea.describe()} <-> {eb.describe()}{note}"


@dataclass
class RaceReport:
    """The result of one detection run.

    ``classifications`` (feasible scans only) records every conflicting
    pair's three-valued outcome; ``races`` keeps only the confirmed
    ones, so pre-budget callers read the report unchanged.
    ``interrupted`` marks a scan cut short (Ctrl-C): the classified
    prefix is still valid, the missing pairs were never examined.
    """

    execution: ProgramExecution
    races: List[Race]
    kind: str
    conflicting_pairs_examined: int
    classifications: List[PairClassification] = field(default_factory=list)
    interrupted: bool = False
    planner: Optional[PlannerReport] = None  # per-tier tallies (feasible scans)
    # choice-point attribution when the scan ran with profiling (a
    # repro.obs.profile.SearchProfile, duck-typed to keep races below
    # obs in the import layering); None otherwise
    profile: Optional[object] = None

    def pairs(self) -> List[Tuple[int, int]]:
        return [(r.a, r.b) for r in self.races]

    @property
    def unknown_pairs(self) -> List[PairClassification]:
        return [c for c in self.classifications if c.status == UNKNOWN]

    @property
    def complete(self) -> bool:
        """True when no pair was left undecided by a budget."""
        return not self.unknown_pairs and not self.interrupted

    def summary(self) -> str:
        base = (
            f"{self.kind} races: {len(self.races)} / "
            f"{self.conflicting_pairs_examined} conflicting pairs"
        )
        unknown = len(self.unknown_pairs)
        if unknown:
            base += f" ({unknown} unknown: budget exhausted)"
        if self.interrupted:
            base += (
                f" (interrupted: {len(self.classifications)}/"
                f"{self.conflicting_pairs_examined} pairs classified)"
            )
        return base

    def pretty(self) -> str:
        lines = [self.summary()]
        for r in self.races:
            lines.append("  " + r.describe(self.execution))
        for c in self.unknown_pairs:
            lines.append("  " + c.describe(self.execution))
        return "\n".join(lines)


def _conflict_variables(exe: ProgramExecution, a: int, b: int) -> FrozenSet[str]:
    ea, eb = exe.event(a), exe.event(b)
    out = set()
    for x in ea.accesses:
        for y in eb.accesses:
            if x.conflicts_with(y):
                out.add(x.variable)
    return frozenset(out)


# ----------------------------------------------------------------------
# the pluggable pair-runner protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairScanOptions:
    """Everything a pair runner needs to classify pairs on the
    detector's behalf.

    ``max_states`` and ``pair_timeout`` bound each individual pair;
    ``deadline`` is the scan-wide absolute :func:`time.monotonic`
    instant (pairs not started by then are classified ``unknown`` with
    resource ``"deadline"`` without searching).  ``profile`` asks the
    runner to attribute engine search cost to branch choice points (a
    :class:`~repro.obs.profile.SearchProfile` per worker, merged and
    shipped home in the runner's tier snapshot under ``"profile"``).
    """

    drop_racing_dependences: bool = True
    max_states: Optional[int] = None
    pair_timeout: Optional[float] = None
    deadline: Optional[float] = None
    profile: bool = False
    por: str = "sleep"


#: One unit of scan work: ``(a, b, conflict variables)``.
PairTask = Tuple[int, int, FrozenSet[str]]

#: A pair runner classifies a batch of tasks and returns
#: ``(classifications, interrupted)`` -- optionally with a third element,
#: a :meth:`~repro.solve.planner.PlannerReport.snapshot` dict aggregating
#: the tiers that answered (the supervised pool ships these home from its
#: workers).  It must invoke the callback (when not ``None``) once per
#: classification, as soon as it is known, and on interruption return
#: whatever prefix it managed to classify.
PairRunner = Callable[
    [ProgramExecution, Sequence[PairTask], PairScanOptions,
     Optional[Callable[[PairClassification], None]]],
    Tuple[List[PairClassification], bool],
]


def classify_pair(
    exe: ProgramExecution,
    a: int,
    b: int,
    *,
    drop_racing_dependences: bool = True,
    budget: Optional[Budget] = None,
    variables: Optional[FrozenSet[str]] = None,
    planner: Optional[QueryPlanner] = None,
    por: str = "sleep",
) -> PairClassification:
    """Classify one conflicting pair (the unit of work of a scan).

    Module-level (not a method) so worker processes can import it by
    name and run it against their own deserialized copy of the
    execution.  ``planner`` lets a scan share one
    :class:`~repro.solve.planner.QueryPlanner` across pairs (structural
    bitsets, the conflict index and every witness found so far carry
    over); without one, an ephemeral planner is built for the pair.
    The racing pair's own dependence edges are expressed as a ``drop``
    on the query rather than a rebuilt execution, so the shared
    precomputation stays valid.  ``por`` selects the exact engine's
    partial-order-reduction mode for the ephemeral planner; a provided
    ``planner`` already carries its own mode and ``por`` is ignored.
    """
    if planner is None:
        planner = QueryPlanner(SolveContext(exe, por=por))
    ctx = planner.ctx
    if variables is None:
        variables = ctx.conflict_variables(a, b)
    drop = ctx.racing_drop(a, b) if drop_racing_dependences else EMPTY_DROP
    verdict = planner.ccw_verdict(a, b, drop=drop, budget=budget)
    if verdict.is_true:
        witness = verdict.witness
        if witness is not None and drop:
            # cached/engine witnesses are anchored to the base
            # execution; a race witness must validate against the
            # execution *without* the racing pair's own dependences
            witness = Witness(ctx.execution_for(drop), witness.points)
        return PairClassification(
            a, b, FEASIBLE, variables,
            witness=witness, decided_by=verdict.provenance,
        )
    if verdict.is_false:
        return PairClassification(
            a, b, INFEASIBLE, variables, decided_by=verdict.provenance
        )
    return PairClassification(a, b, UNKNOWN, variables, resource=verdict.resource)


class RaceDetector:
    """Detects apparent and feasible races of one execution.

    ``max_states`` / ``budget`` bound each pair's exact search; the
    feasible scan never raises on exhaustion -- undecided pairs are
    reported as ``unknown``.
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
        plan: Optional[Tuple[str, ...]] = None,
        por: str = "sleep",
    ) -> None:
        self.exe = exe
        self.max_states = max_states
        self.budget = budget
        self.plan = tuple(plan) if plan is not None else None
        self.por = por
        self._planner: Optional[QueryPlanner] = None

    @property
    def planner(self) -> QueryPlanner:
        """The scan-shared planner (lazy: apparent-only runs never pay
        for the solve context)."""
        if self._planner is None:
            ctx = SolveContext(self.exe, por=self.por)
            if self.plan is not None:
                self._planner = QueryPlanner(ctx, self.plan)
            else:
                self._planner = QueryPlanner(ctx)
        return self._planner

    # ------------------------------------------------------------------
    def apparent_races(self, schedule: Optional[Sequence[int]] = None) -> RaceReport:
        """Conflicting pairs unordered by the observed vector clocks.

        Fast (polynomial) but tied to the observed pairing: it can both
        miss races (a sync edge in this run masked an overlap another
        run allows) and, relative to feasibility, report pairs that
        shared-data dependences actually order.
        """
        vc = VectorClockAnalysis(self.exe, schedule)
        races: List[Race] = []
        pairs = self.exe.conflicting_pairs()
        for a, b in pairs:
            if vc.concurrent(a, b):
                races.append(Race(a, b, _conflict_variables(self.exe, a, b), "apparent"))
        return RaceReport(self.exe, races, "apparent", len(pairs))

    # ------------------------------------------------------------------
    def _effective_budget(self, budget: Optional[Budget]) -> Optional[Budget]:
        if budget is not None:
            return budget
        if self.budget is not None:
            return self.budget
        if self.max_states is not None:
            return Budget(max_states=self.max_states)
        return None

    def feasible_races(
        self,
        *,
        drop_racing_dependences: bool = True,
        budget: Optional[Budget] = None,
        per_pair_max_states: Optional[int] = None,
        per_pair_timeout: Optional[float] = None,
        runner: Optional[PairRunner] = None,
        precomputed: Optional[Dict[Tuple[int, int], PairClassification]] = None,
        on_classified: Optional[Callable[[PairClassification], None]] = None,
        tracer=None,
        profile=None,
    ) -> RaceReport:
        """Conflicting pairs with ``a CCW b`` -- the paper's notion.

        ``drop_racing_dependences``: a conflicting pair is itself a
        shared-data dependence of the observed execution, and condition
        F3 would freeze its order, masking the very race under test.
        Following the companion race-detection paper [10], the
        dependence between the two *tested* events is dropped while all
        other dependences are kept, so the query asks "could these two
        have overlapped while the rest of the data flow stayed intact".
        Set it False to keep strict F3 semantics.

        Budgeting: each pair runs under its own child budget derived
        from ``budget`` (or the detector's), optionally tightened by
        ``per_pair_max_states`` / ``per_pair_timeout`` so one hard pair
        cannot starve the scan.  Exhaustion marks *that pair* unknown
        and the scan continues; once the shared deadline expires, the
        remaining pairs are classified unknown without searching.  The
        returned report is therefore always complete over the pair set
        -- partial only in the sense that some entries are ``unknown``.

        Supervision hooks: ``precomputed`` maps ``(a, b)`` to an
        already-known classification (e.g. replayed from a checkpoint
        journal) -- those pairs are not re-examined.  The remaining
        pairs go to ``runner`` (a :data:`PairRunner`, e.g. the
        crash-isolated pool in :mod:`repro.supervise.pool`) when given,
        else to the in-process serial loop.  ``on_classified`` is
        invoked once per *freshly computed* classification as soon as
        it is known, so a journal stays current even if the scan is
        later killed.  A Ctrl-C during the serial loop (or an
        interrupted runner) yields a partial report flagged
        ``interrupted`` instead of propagating ``KeyboardInterrupt``.

        ``tracer`` (a :class:`~repro.obs.trace.TraceSink`) records the
        scan as structured spans: ``scan.start``/``scan.end`` bounds,
        one ``pair`` record per fresh classification, and -- on the
        serial path -- the shared planner's per-query spans.  (A
        parallel runner traces its own workers; give the
        :class:`~repro.supervise.pool.SupervisedScanner` the same sink.)

        ``profile`` (a :class:`~repro.obs.profile.SearchProfile`)
        accumulates choice-point attribution across the whole scan: the
        serial loop attaches it to the shared planner, a parallel
        runner ships per-worker profiles home in its tier snapshot and
        they are merged here.  One ``profile`` trace record carrying
        the merged snapshot is emitted before ``scan.end``, and the
        profile rides on the returned report.  Profiling is a pure
        observer -- classifications and ``states_visited`` are
        identical with it on or off.
        """
        budget = self._effective_budget(budget)
        traced = tracer is not None and tracer.enabled
        pairs = self.exe.conflicting_pairs()
        precomputed = dict(precomputed or {})
        classifications: List[PairClassification] = []
        todo: List[PairTask] = []
        planner_report = PlannerReport()
        for a, b in pairs:
            known = precomputed.get((a, b))
            if known is not None:
                classifications.append(known)
            else:
                todo.append((a, b, _conflict_variables(self.exe, a, b)))
        interrupted = False
        if traced:
            tracer.emit(
                {"kind": "scan.start", "pairs": len(pairs), "todo": len(todo)}
            )

        def notify(c: PairClassification) -> None:
            if traced:
                rec = {"kind": "pair", "a": c.a, "b": c.b, "status": c.status}
                if c.resource is not None:
                    rec["resource"] = c.resource
                if c.decided_by is not None:
                    rec["decided_by"] = c.decided_by
                tracer.emit(rec)
            if on_classified is not None:
                on_classified(c)
        if runner is not None and todo:
            options = PairScanOptions(
                drop_racing_dependences=drop_racing_dependences,
                max_states=(
                    per_pair_max_states
                    if per_pair_max_states is not None
                    else (budget.max_states if budget is not None else None)
                ),
                pair_timeout=per_pair_timeout,
                deadline=budget.deadline if budget is not None else None,
                profile=profile is not None,
                por=self.por,
            )
            result = runner(self.exe, todo, options, notify)
            if len(result) == 3:
                fresh, interrupted, tier_counts = result
                if tier_counts:
                    profile_snap = tier_counts.pop("profile", None)
                    if profile is not None and profile_snap:
                        profile.merge(profile_snap)
                    planner_report.merge(tier_counts)
            else:
                fresh, interrupted = result
            classifications.extend(fresh)
        else:
            planner = self.planner
            planner.report = planner_report  # tally this scan only
            if traced:
                planner.attach_tracer(tracer)
            if profile is not None:
                planner.attach_profiler(profile)
            for a, b, variables in todo:
                if budget is not None and budget.expired():
                    c = PairClassification(
                        a, b, UNKNOWN, variables, resource=DEADLINE
                    )
                else:
                    pair_budget = None
                    if budget is not None:
                        pair_budget = budget.per_query(
                            max_states=per_pair_max_states,
                            timeout=per_pair_timeout,
                        )
                    try:
                        c = classify_pair(
                            self.exe,
                            a,
                            b,
                            drop_racing_dependences=drop_racing_dependences,
                            budget=pair_budget,
                            variables=variables,
                            planner=planner,
                        )
                    except KeyboardInterrupt:
                        interrupted = True
                        break
                classifications.append(c)
                notify(c)
            if profile is not None:
                planner.attach_profiler(None)
        order = {pair: i for i, pair in enumerate(pairs)}
        classifications.sort(key=lambda c: order[(c.a, c.b)])
        races = [
            Race(c.a, c.b, c.variables, "feasible", witness=c.witness)
            for c in classifications
            if c.status == FEASIBLE
        ]
        if traced:
            if profile is not None:
                tracer.emit({"kind": "profile", "profile": profile.snapshot()})
            by_status: Dict[str, int] = {}
            for c in classifications:
                by_status[c.status] = by_status.get(c.status, 0) + 1
            tracer.emit(
                {
                    "kind": "scan.end",
                    "done": len(classifications),
                    "feasible": by_status.get(FEASIBLE, 0),
                    "infeasible": by_status.get(INFEASIBLE, 0),
                    "unknown": by_status.get(UNKNOWN, 0),
                    "interrupted": interrupted,
                }
            )
        return RaceReport(
            self.exe,
            races,
            "feasible",
            len(pairs),
            classifications,
            interrupted=interrupted,
            planner=planner_report,
            profile=profile,
        )
