"""Exhaustive truth-table SAT (ground truth for tests).

``O(2^n)`` by construction; the property tests keep ``n`` small and use
this to validate :mod:`repro.sat.dpll` -- and transitively, through the
reductions, the ordering engine itself.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Optional

from repro.sat.cnf import CNF, Assignment


def _assignments(num_vars: int) -> Iterator[Assignment]:
    for bits in product((False, True), repeat=num_vars):
        yield {i + 1: bits[i] for i in range(num_vars)}


def brute_force_satisfiable(cnf: CNF) -> Optional[Assignment]:
    """The first satisfying assignment in lexicographic order, or None."""
    if any(len(c) == 0 for c in cnf.clauses):
        return None
    for assignment in _assignments(cnf.num_vars):
        if cnf.evaluate(assignment):
            return assignment
    return None


def all_models(cnf: CNF) -> Iterator[Assignment]:
    """Every satisfying assignment (lexicographic order)."""
    if any(len(c) == 0 for c in cnf.clauses):
        return
    for assignment in _assignments(cnf.num_vars):
        if cnf.evaluate(assignment):
            yield assignment


def count_models(cnf: CNF) -> int:
    return sum(1 for _ in all_models(cnf))
