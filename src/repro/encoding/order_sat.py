"""CNF encoding of legal serial schedules.

A serial schedule of an execution is a strict total order of its
events satisfying program order, fork/join, dependences (optionally)
and the synchronization semantics.  The encoding:

* **order variables** ``o(a, b)`` for each unordered pair (one
  polarity per pair: ``o(b, a)`` is represented as ``NOT o(a, b)``),
  with transitivity clauses over every triple -- a satisfying
  assignment is exactly a strict total order;
* structural constraints as unit clauses over the order variables;
* **semaphore legality via token matching** (Hall's theorem): a total
  order keeps every count non-negative iff there is an injective
  assignment of suppliers (``V`` completions plus ``init`` virtual
  initial tokens) to ``P`` events with each supplier ordered before
  its consumer.  Matching variables ``m(supplier, p)`` with
  exactly-one per ``P``, at-most-one per supplier, and
  ``m(v, p) -> o(v, p)``;
* **event-variable legality via triggering posts**: each ``Wait`` is
  matched to a ``Post`` of the same variable ordered before it with
  no ``Clear`` of that variable between them (``o(c, post) OR
  o(wait, c)`` for every clear ``c``), or to the initial posted state
  (then every clear must come after the wait).  Posts may trigger any
  number of waits, so no at-most-one side.
* **joins**: a join completes after the awaited processes' events --
  in a *serial* order that is just a conjunction of order literals
  (matching the engine's completion semantics).

Size: O(|E|^2) variables and O(|E|^3) transitivity clauses -- fine for
the cross-validation sizes (|E| <= ~15); the point is independence
from the search engine, not speed.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.budget import Budget
from repro.model.events import EventKind
from repro.model.execution import ProgramExecution
from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver, SolveBudgetExceeded


class OrderSatEncoder:
    """Compiles one execution's serial-schedule existence to CNF.

    ``budget`` makes the whole pipeline budget-aware so the encoder can
    serve as a ladder tier rather than an unbounded dead end: the
    state-count cap doubles as a clause cap during encoding (the
    O(|E|^3) transitivity clauses are the size hazard) and as the
    solver's decision cap, and the budget's absolute deadline is
    checked inside the DPLL loop.  Exceeding any of them raises
    :class:`~repro.sat.dpll.SolveBudgetExceeded` -- never a wrong
    answer.
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        budget: Optional[Budget] = None,
    ):
        self.exe = exe
        self.include_dependences = include_dependences
        self.budget = budget
        self._max_clauses = budget.max_states if budget is not None else None
        self._n = len(exe)
        self._next_var = 0
        self._order: Dict[Tuple[int, int], int] = {}
        self._clauses: List[Tuple[int, ...]] = []
        self._build()

    # ------------------------------------------------------------------
    # variable plumbing
    # ------------------------------------------------------------------
    def _fresh(self) -> int:
        self._next_var += 1
        return self._next_var

    def _o(self, a: int, b: int) -> int:
        """Literal meaning "event a before event b" (a != b)."""
        if a == b:
            raise ValueError("no self-order literal")
        if (a, b) in self._order:
            return self._order[(a, b)]
        if (b, a) in self._order:
            return -self._order[(b, a)]
        var = self._fresh()
        self._order[(a, b)] = var
        return var

    def _add(self, *lits: int) -> None:
        if self._max_clauses is not None and len(self._clauses) >= self._max_clauses:
            raise SolveBudgetExceeded(
                f"encoding clause cap {self._max_clauses} exceeded",
                resource="clauses",
            )
        self._clauses.append(tuple(lits))

    # ------------------------------------------------------------------
    def _build(self) -> None:
        exe = self.exe
        n = self._n

        # structural order facts -------------------------------------------
        g = exe.static_order_graph(
            include_dependences=self.include_dependences, join_edges=True
        )
        for u, v in g.edges:
            self._add(self._o(u, v))

        # transitivity over all triples -------------------------------------
        for a, b, c in itertools.permutations(range(n), 3):
            if a < c:  # each (a,b,c) chain once; symmetric closure via literals
                self._add(-self._o(a, b), -self._o(b, c), self._o(a, c))

        # semaphore token matching -------------------------------------------
        for s in exe.semaphores:
            ops = exe.sem_events(s)
            p_events = [e for e in ops if exe.event(e).kind is EventKind.SEM_P]
            v_events = [e for e in ops if exe.event(e).kind is EventKind.SEM_V]
            init = exe.sem_initial(s)
            suppliers: List[Optional[int]] = list(v_events) + [None] * init
            if len(suppliers) < len(p_events):
                self._add()  # empty clause: plainly infeasible
                continue
            match: Dict[Tuple[int, int], int] = {}
            for pi, p in enumerate(p_events):
                row = []
                for si, supplier in enumerate(suppliers):
                    var = self._fresh()
                    match[(si, pi)] = var
                    row.append(var)
                    if supplier is not None:
                        # a matched supplier completes before its consumer
                        self._add(-var, self._o(supplier, p))
                self._add(*row)  # at least one supplier
            # each supplier serves at most one P
            for si in range(len(suppliers)):
                for p1, p2 in itertools.combinations(range(len(p_events)), 2):
                    self._add(-match[(si, p1)], -match[(si, p2)])

        # event-variable triggering -------------------------------------------
        for v in exe.event_variables:
            ops = exe.var_events(v)
            posts = [e for e in ops if exe.event(e).kind is EventKind.POST]
            clears = [e for e in ops if exe.event(e).kind is EventKind.CLEAR]
            waits = [e for e in ops if exe.event(e).kind is EventKind.WAIT]
            initially = exe.var_initially_posted(v)
            for w in waits:
                triggers = []
                for b in posts:
                    var = self._fresh()
                    triggers.append(var)
                    self._add(-var, self._o(b, w))
                    for c in clears:
                        if c == w:
                            continue
                        # no clear strictly between the post and the wait
                        self._add(-var, self._o(c, b), self._o(w, c))
                if initially:
                    var = self._fresh()
                    triggers.append(var)
                    for c in clears:
                        self._add(-var, self._o(w, c))
                if triggers:
                    self._add(*triggers)
                else:
                    self._add()  # wait can never be satisfied

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cnf(self, extra_order: Sequence[Tuple[int, int]] = ()) -> CNF:
        """The encoding, plus unit clauses asserting ``a before b`` for
        each extra pair."""
        clauses = list(self._clauses)
        for a, b in extra_order:
            clauses.append((self._o(a, b),))
        return CNF(clauses, num_vars=self._next_var)

    def solve(self, extra_order: Sequence[Tuple[int, int]] = ()) -> Optional[List[int]]:
        """A legal serial schedule satisfying the extra order facts, or
        None.  Decoded from the satisfying assignment by sorting events
        by their number of predecessors."""
        solver = DPLLSolver(
            self.cnf(extra_order),
            max_decisions=self.budget.max_states if self.budget is not None else None,
            deadline=self.budget.deadline if self.budget is not None else None,
        )
        model = solver.solve()
        if model is None:
            return None

        def before(a: int, b: int) -> bool:
            if a == b:
                return False
            lit = self._o(a, b)
            # pairs never mentioned by any clause (possible only for
            # |E| <= 2) default to False -> the converse reads True,
            # which is a consistent arbitrary orientation
            value = model.get(abs(lit), False)
            return value if lit > 0 else not value

        n = self._n
        order = sorted(
            range(n), key=lambda e: sum(before(x, e) for x in range(n) if x != e)
        )
        return order


def sat_is_feasible(exe: ProgramExecution, *, include_dependences: bool = True) -> bool:
    """Serial-schedule existence, decided purely by SAT."""
    return OrderSatEncoder(exe, include_dependences=include_dependences).solve() is not None


def sat_chb(
    exe: ProgramExecution, a: int, b: int, *, include_dependences: bool = True
) -> bool:
    """Could-have-happened-before, decided purely by SAT.

    By the serialization lemma, ``a CHB b`` iff a legal serial schedule
    orders ``a`` before ``b``."""
    if a == b:
        return False
    enc = OrderSatEncoder(exe, include_dependences=include_dependences)
    return enc.solve([(a, b)]) is not None
