"""Unit tests for events and accesses."""

import pytest

from repro.model.events import Access, Event, EventKind


class TestAccess:
    def test_conflict_requires_same_variable(self):
        assert not Access("x", True).conflicts_with(Access("y", True))

    def test_conflict_requires_a_write(self):
        assert not Access("x", False).conflicts_with(Access("x", False))
        assert Access("x", True).conflicts_with(Access("x", False))
        assert Access("x", False).conflicts_with(Access("x", True))
        assert Access("x", True).conflicts_with(Access("x", True))

    def test_repr_mode(self):
        assert repr(Access("x", True)) == "W(x)"
        assert repr(Access("x", False)) == "R(x)"


class TestEventKind:
    def test_synchronization_classification(self):
        assert not EventKind.COMPUTATION.is_synchronization
        for k in EventKind:
            if k is not EventKind.COMPUTATION:
                assert k.is_synchronization

    def test_family_flags(self):
        assert EventKind.SEM_P.is_semaphore_op and EventKind.SEM_V.is_semaphore_op
        assert EventKind.POST.is_event_var_op and EventKind.CLEAR.is_event_var_op
        assert EventKind.FORK.is_task_op and EventKind.JOIN.is_task_op
        assert not EventKind.SEM_P.is_event_var_op

    def test_blocking_operations(self):
        assert EventKind.SEM_P.may_block
        assert EventKind.WAIT.may_block
        assert EventKind.JOIN.may_block
        assert not EventKind.SEM_V.may_block
        assert not EventKind.POST.may_block


class TestEvent:
    def test_sync_event_requires_object(self):
        with pytest.raises(ValueError):
            Event(0, "p", 0, EventKind.SEM_P)

    def test_computation_rejects_object(self):
        with pytest.raises(ValueError):
            Event(0, "p", 0, EventKind.COMPUTATION, obj="s")

    def test_only_computation_carries_accesses(self):
        with pytest.raises(ValueError):
            Event(0, "p", 0, EventKind.SEM_V, obj="s", accesses=(Access("x", True),))

    def test_reads_writes_partition(self):
        e = Event(
            0, "p", 0, EventKind.COMPUTATION,
            accesses=(Access("x", False), Access("y", True), Access("x", True)),
        )
        assert e.reads == {"x"}
        assert e.writes == {"x", "y"}
        assert e.variables == {"x", "y"}

    def test_conflicts_with(self):
        w = Event(0, "p", 0, EventKind.COMPUTATION, accesses=(Access("x", True),))
        r = Event(1, "q", 0, EventKind.COMPUTATION, accesses=(Access("x", False),))
        other = Event(2, "q", 1, EventKind.COMPUTATION, accesses=(Access("z", False),))
        assert w.conflicts_with(r)
        assert not r.conflicts_with(other)

    def test_describe_prefers_label(self):
        e = Event(0, "p", 0, EventKind.COMPUTATION, label="a")
        assert e.describe() == "a"

    def test_describe_sync(self):
        e = Event(3, "p", 2, EventKind.SEM_P, obj="s")
        assert "P(s)" in e.describe()

    def test_describe_empty_computation(self):
        e = Event(0, "p", 0, EventKind.COMPUTATION)
        assert "skip" in e.describe()
