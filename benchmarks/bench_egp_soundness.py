"""Experiment S4b -- Section 4: the Emrath/Ghosh/Padua comparison.

The paper: "since their method does not account for the orderings
imposed by the shared-data dependences, the graph sometimes shows no
ordering when indeed an ordering is enforced by a shared-data
dependence."

Measured two ways:

* on dependence-free event-style workloads the task graph's claims are
  verified against the exact engine (sound in this regime -- asserted);
* on Figure-1-style workloads with data-dependent control flow, the
  number of exact must-orderings *missing* from the graph is counted --
  the paper's criticism, quantified.
"""

import time

from conftest import report, table

from repro.approx.taskgraph import TaskGraph
from repro.core.queries import OrderingQueries
from repro.lang.ast import Assign, BinOp, Const, Fork, If, Join, Post, ProcessDef, Program, Shared, Wait
from repro.lang.interpreter import run_program
from repro.lang.scheduler import PriorityScheduler
from repro.workloads.generators import random_event_execution


def figure1_family(width: int):
    """Generalized Figure 1: ``width`` writer/tester pairs over one
    event variable; every tester's Post is dependence-chained after its
    writer's Post."""
    tasks = []
    order = ["main"]
    for k in range(width):
        tasks.append(
            ProcessDef(f"w{k}", [Post("ev", label=f"left{k}"), Assign(f"x{k}", Const(1))])
        )
        tasks.append(
            ProcessDef(
                f"t{k}",
                [
                    If(
                        BinOp("==", Shared(f"x{k}"), Const(1)),
                        then=[Post("ev", label=f"right{k}")],
                        orelse=[Wait("ev")],
                    )
                ],
            )
        )
        order += [f"w{k}", f"t{k}"]
    tasks.append(ProcessDef("sink", [Wait("ev")]))
    order.append("sink")
    main = ProcessDef("main", [Fork(tasks), Join()])
    prog = Program([main], shared_initial={f"x{k}": 0 for k in range(width)})
    return run_program(prog, PriorityScheduler(order)).to_execution()


def run_study():
    results = []

    # regime 1: no shared data -- soundness check
    for seed in range(5):
        exe = random_event_execution(
            processes=3, events_per_process=3, variables=2, seed=seed
        )
        tg = TaskGraph(exe)
        q = OrderingQueries(exe)
        claimed = list(tg.ordering_relation().pairs)
        unsound = [(a, b) for a, b in claimed if not q.mcb(a, b)]
        results.append(
            dict(kind="no-D", name=f"seed {seed}", exe=exe,
                 claimed=len(claimed), unsound=len(unsound), missed=None)
        )

    # regime 2: Figure-1 family -- count the graph's misses
    for width in (1, 2, 3):
        exe = figure1_family(width)
        tg = TaskGraph(exe)
        q = OrderingQueries(exe)
        sync = set(tg.nodes)
        claimed = set(tg.ordering_relation().pairs)
        missed = 0
        for a in sync:
            for b in sync:
                if a != b and (a, b) not in claimed and q.mhb(a, b):
                    missed += 1
        results.append(
            dict(kind="figure1-like", name=f"width {width}", exe=exe,
                 claimed=len(claimed), unsound=0, missed=missed)
        )
    return results


def test_egp_soundness_and_misses(benchmark):
    results = benchmark(run_study)

    rows = []
    for r in results:
        if r["kind"] == "no-D":
            assert r["unsound"] == 0  # sound when D is empty
        else:
            # exactly the left->right Post ordering per writer/tester pair
            width = int(r["name"].split()[-1])
            assert r["missed"] == width
        rows.append(
            [
                r["kind"], r["name"], len(r["exe"]), r["claimed"],
                r["unsound"], "-" if r["missed"] is None else r["missed"],
            ]
        )

    headers = ["regime", "workload", "|E|", "graph orderings", "unsound", "missed must-orderings"]
    lines = table(headers, rows)
    lines.append("")
    lines.append("no-D regime: every task-graph ordering verified exact (sound)")
    lines.append("figure1-like regime: exactly one missed must-ordering per")
    lines.append("writer/tester pair -- the Post ordering enforced only by the")
    lines.append("shared-data dependence, invisible to the task graph")
    report("egp_soundness", lines)
