"""Per-execution precomputation shared by every backend.

One :class:`SolveContext` is built per analyzed execution and handed
to every backend of every query, so nothing linear-or-worse is ever
computed twice:

* transitive-closure **bitsets** of both strengths of the static order
  graph (completion order with join edges, interval order without),
  with a drop-aware DFS refinement for queries that ignore some
  dependences;
* the **conflict-variable index** (variable -> per-event access sets),
  hoisted out of the race detector's per-pair loop;
* the validated **observed witness** (the traced schedule replayed
  through the reference semantics once, then reused as a free member
  of ``F``);
* the lazily built polynomial analyses (HMW counting phases, the EGP
  task graph, vector clocks);
* one :class:`~repro.core.engine.FeasibilityEngine` per ``drop``
  variant (each engine keeps its own failure memo across queries);
* the shared :class:`~repro.solve.witnesses.WitnessCache`, and the
  resolved base-feasibility fact once any tier settles it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.engine import FeasibilityEngine, Point, SearchStats
from repro.core.witness import IllegalScheduleError, Witness, replay_schedule
from repro.model.execution import ProgramExecution, SyncStyle
from repro.solve.witnesses import WitnessCache
from repro.util.graphs import topological_sort

EMPTY_DROP: FrozenSet[Tuple[int, int]] = frozenset()


class SolveContext:
    """Shared state for one execution's planner."""

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        stats: Optional[SearchStats] = None,
        witness_capacity: int = 256,
        por: str = "sleep",
    ) -> None:
        self.exe = exe
        self.include_dependences = include_dependences
        self.binary_semaphores = binary_semaphores
        if por not in FeasibilityEngine.POR_MODES:
            raise ValueError(
                f"unknown por mode {por!r} (expected one of "
                f"{', '.join(FeasibilityEngine.POR_MODES)})"
            )
        # partial-order-reduction mode handed to every engine this
        # context builds (one per drop variant)
        self.por = por
        self.stats = stats if stats is not None else SearchStats()
        self.witnesses = WitnessCache(
            exe,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
            capacity=witness_capacity,
        )
        # base feasibility, once some tier resolves it ("is F non-empty
        # with the full dependence relation"); None = not yet known
        self.feasible: Optional[bool] = None
        self.feasible_provenance: Optional[str] = None
        # optional SearchStats callback the engine invokes at its
        # amortized budget checks (set by QueryPlanner.attach_tracer)
        self.on_progress = None
        # optional SearchProfile-shaped observer handed to every engine
        # search (set by QueryPlanner.attach_profiler); duck-typed so
        # this module never imports repro.obs
        self.profile = None

        # two strengths of structural reachability, as bitsets
        self._static_reach = self._compute_reach(join_edges=True)
        self._interval_reach = self._compute_reach(join_edges=False)
        # adjacency of the dependence-free graphs, for drop-aware DFS
        self._struct_succ = self._successors(join_edges=True, with_deps=False)
        self._interval_succ = self._successors(join_edges=False, with_deps=False)
        self._dep_succ: Dict[int, List[int]] = {}
        for x, y in sorted(exe.dependences):
            self._dep_succ.setdefault(x, []).append(y)

        # conflict-variable index: per-event write/access variable sets
        self._writes: List[FrozenSet[str]] = []
        self._touched: List[FrozenSet[str]] = []
        for e in exe.events:
            self._writes.append(
                frozenset(acc.variable for acc in e.accesses if acc.is_write)
            )
            self._touched.append(frozenset(acc.variable for acc in e.accesses))

        self.observed_pos: Optional[Dict[int, int]] = None
        if exe.observed_schedule is not None:
            self.observed_pos = {
                eid: i for i, eid in enumerate(exe.observed_schedule)
            }

        self._observed_witness: Optional[Witness] = None
        self._observed_checked = False
        self._engines: Dict[FrozenSet[Tuple[int, int]], FeasibilityEngine] = {}
        self._hmw_relation = None
        self._hmw_infeasible = False
        self._hmw_checked = False
        self._taskgraph = None
        self._taskgraph_checked = False
        self._vc = None
        self._vc_checked = False

    # ------------------------------------------------------------------
    # structural reachability
    # ------------------------------------------------------------------
    def _compute_reach(self, *, join_edges: bool):
        g = self.exe.static_order_graph(
            include_dependences=self.include_dependences, join_edges=join_edges
        )
        order = topological_sort(g)
        reach = {}
        for n in reversed(order):
            mask = 0
            for s in g.successors(n):
                mask |= reach[s] | (1 << s)
            reach[n] = mask
        return reach

    def _successors(self, *, join_edges: bool, with_deps: bool):
        g = self.exe.static_order_graph(
            include_dependences=with_deps, join_edges=join_edges
        )
        return {n: tuple(g.successors(n)) for n in self.exe.eids}

    def _drop_reachable(
        self,
        a: int,
        b: int,
        drop: FrozenSet[Tuple[int, int]],
        succ: Dict[int, Tuple[int, ...]],
    ) -> bool:
        stack = [a]
        seen = {a}
        while stack:
            n = stack.pop()
            nexts = list(succ[n])
            if self.include_dependences:
                nexts += [y for y in self._dep_succ.get(n, ()) if (n, y) not in drop]
            for m in nexts:
                if m == b:
                    return True
                if m not in seen:
                    seen.add(m)
                    stack.append(m)
        return False

    def statically_ordered(
        self, a: int, b: int, drop: FrozenSet[Tuple[int, int]] = EMPTY_DROP
    ) -> bool:
        """``a`` completes before ``b`` in every schedule, by structure
        alone (program order, fork/join, un-dropped dependences)."""
        if not (self._static_reach[a] >> b) & 1:
            return False  # removing edges cannot create reachability
        if not drop:
            return True
        return self._drop_reachable(a, b, drop, self._struct_succ)

    def statically_interval_ordered(
        self, a: int, b: int, drop: FrozenSet[Tuple[int, int]] = EMPTY_DROP
    ) -> bool:
        """``end(a) < begin(b)`` in every schedule, by structure alone
        (join edges excluded -- they only order completions)."""
        if not (self._interval_reach[a] >> b) & 1:
            return False
        if not drop:
            return True
        return self._drop_reachable(a, b, drop, self._interval_succ)

    # ------------------------------------------------------------------
    # conflict-variable index (hoisted from races/detector per-pair loop)
    # ------------------------------------------------------------------
    def conflict_variables(self, a: int, b: int) -> FrozenSet[str]:
        """Shared variables the two events access conflictingly."""
        return (self._writes[a] & self._touched[b]) | (
            self._writes[b] & self._touched[a]
        )

    def racing_drop(self, a: int, b: int) -> FrozenSet[Tuple[int, int]]:
        """The dependence edges between exactly ``a`` and ``b`` -- what
        the race detector drops so the observed pairing cannot mask the
        race under test."""
        return frozenset(
            (x, y) for (x, y) in self.exe.dependences if {x, y} == {a, b}
        )

    # ------------------------------------------------------------------
    # persistent witness reuse (the ``repro serve`` store)
    # ------------------------------------------------------------------
    def seed_witnesses(self, schedules) -> int:
        """Warm the witness cache from externally persisted schedules
        (each fully re-validated; see
        :meth:`~repro.solve.witnesses.WitnessCache.seed`).  Returns the
        cache mark *after* seeding, so
        :meth:`~repro.solve.witnesses.WitnessCache.points_since` yields
        only schedules this context discovered itself -- the daemon
        persists exactly those, and a repeat query on a stored
        execution is then answered by the ``witness`` tier without the
        engine running at all."""
        return self.witnesses.seed(schedules)

    # ------------------------------------------------------------------
    # lazy shared analyses
    # ------------------------------------------------------------------
    def observed_witness(self) -> Optional[Witness]:
        """The traced schedule as a validated member of ``F`` (serial:
        each event begins and ends adjacently), or None when absent or
        -- defensively -- when it does not replay."""
        if not self._observed_checked:
            self._observed_checked = True
            sched = self.exe.observed_schedule
            if sched is not None:
                points = []
                for eid in sched:
                    points.append(Point(eid, False))
                    points.append(Point(eid, True))
                try:
                    replay_schedule(
                        self.exe,
                        points,
                        include_dependences=self.include_dependences,
                        binary_semaphores=self.binary_semaphores,
                    )
                except IllegalScheduleError:
                    self._observed_witness = None
                else:
                    self._observed_witness = Witness(self.exe, points)
                    self.witnesses.add(points)
        return self._observed_witness

    def hmw_relation(self):
        """The HMW phase-3 guaranteed completion orderings, or None when
        the style is out of scope (event variables, binary semaphores)
        or the counting phases prove the trace infeasible.

        The phases read program order, fork/join and semaphore counts
        only -- never ``D`` -- so the relation is sound for every
        ``drop`` variant (it speaks about the larger dependence-free
        ``F``, a superset of each variant's).
        """
        if not self._hmw_checked:
            self._hmw_checked = True
            if not self.binary_semaphores and self.exe.sync_style in (
                SyncStyle.SEMAPHORE,
                SyncStyle.NONE,
            ):
                from repro.approx.hmw import HMWAnalysis, InfeasibleTraceError

                try:
                    self._hmw_relation = HMWAnalysis(self.exe).phase3()
                except InfeasibleTraceError:
                    self._hmw_infeasible = True
        return self._hmw_relation

    def hmw_infeasible(self) -> bool:
        """True when the counting phases proved no schedule completes
        -- valid for every ``drop`` since the phases never read ``D``."""
        self.hmw_relation()
        return self._hmw_infeasible

    def taskgraph(self):
        """The EGP task graph over synchronization events, or None when
        it cannot be built for this execution."""
        if not self._taskgraph_checked:
            self._taskgraph_checked = True
            from repro.approx.taskgraph import TaskGraph

            try:
                self._taskgraph = TaskGraph(self.exe)
            except ValueError:
                self._taskgraph = None
        return self._taskgraph

    def vector_clocks(self):
        """Vector clocks over the observed schedule, or None without one."""
        if not self._vc_checked:
            self._vc_checked = True
            if self.exe.observed_schedule is not None:
                from repro.approx.vectorclock import VectorClockAnalysis

                try:
                    self._vc = VectorClockAnalysis(self.exe)
                except ValueError:
                    self._vc = None
        return self._vc

    # ------------------------------------------------------------------
    # exact engines, one per drop variant
    # ------------------------------------------------------------------
    def execution_for(self, drop: FrozenSet[Tuple[int, int]]) -> ProgramExecution:
        if not drop or not self.include_dependences:
            return self.exe
        return self.exe.with_dependences(self.exe.dependences - drop)

    def engine_for(self, drop: FrozenSet[Tuple[int, int]]) -> FeasibilityEngine:
        if not self.include_dependences:
            drop = EMPTY_DROP
        engine = self._engines.get(drop)
        if engine is None:
            engine = FeasibilityEngine(
                self.execution_for(drop),
                include_dependences=self.include_dependences,
                binary_semaphores=self.binary_semaphores,
                por=self.por,
            )
            self._engines[drop] = engine
        return engine


__all__ = ["SolveContext", "EMPTY_DROP"]
