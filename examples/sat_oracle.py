#!/usr/bin/env python3
"""The hardness theorems as a working machine: SAT via event ordering.

Theorems 1-4 reduce 3CNFSAT to ordering queries.  Because the library's
ordering engine is exact, the reduction actually *runs*: feed it a
formula, ask one MHB (or CHB) question about the constructed execution,
and read off (un)satisfiability.  We verify against the library's own
DPLL solver, and decode a satisfying assignment out of the ordering
witness schedule.

Run:  python examples/sat_oracle.py
"""

from repro import CNF, event_reduction, sat_solve, semaphore_reduction
from repro.model.events import EventKind


def assignment_from_witness(red, witness):
    """Read the first-pass guesses out of a Theorem 1/2 witness.

    In the semaphore construction, the V operations on the literal
    semaphores that complete *before event a* are the first-pass
    guesses; each variable contributes at most one polarity.
    """
    order = witness.serial_order()
    a_pos = order.index(red.a)
    guesses = {}
    for eid in order[:a_pos]:
        e = red.execution.event(eid)
        if e.kind is EventKind.SEM_V and e.obj and e.obj.startswith("X"):
            var = int(e.obj[1:-1])
            guesses[var] = e.obj.endswith("+")
    return guesses


def main() -> None:
    formulas = {
        "satisfiable     (x1|x2|x3) & (~x1|x2|x3)": CNF([(1, 2, 3), (-1, 2, 3)]),
        "unsatisfiable   x1 & ~x1 (3CNF-padded)": CNF([(1, 1, 1), (-1, -1, -1)]),
        "tight satisfiable 4-var instance": CNF(
            [(1, 2, -3), (-1, -2, 4), (3, -4, 1), (-1, 2, -4)]
        ),
    }

    for name, formula in formulas.items():
        print(f"formula: {name}")
        expected = sat_solve(formula)
        print(f"  DPLL says: {'SAT' if expected else 'UNSAT'}")

        for build, style in ((semaphore_reduction, "semaphores (Thm 1/2)"),
                             (event_reduction, "event style (Thm 3/4)")):
            red = build(formula)
            sizes = red.size_summary()
            q = red.queries()
            mhb = q.mhb(red.a, red.b)
            chb = q.chb(red.b, red.a)
            verdict = "UNSAT" if mhb else "SAT"
            agree = (mhb == (expected is None)) and (chb == (expected is not None))
            print(
                f"  {style}: {sizes['processes']} processes, "
                f"{sizes['events']} events -> a MHB b = {mhb}, "
                f"b CHB a = {chb}  => {verdict}  "
                f"[{'agrees' if agree else 'DISAGREES'} with DPLL]"
            )

            if chb and style.startswith("semaphores"):
                w = q.chb_witness(red.b, red.a)
                guesses = assignment_from_witness(red, w)
                total = {v: guesses.get(v, False) for v in formula.variables}
                print(f"    assignment decoded from the witness schedule: {total}")
                print(f"    formula satisfied by it: {formula.evaluate(total)}")
        print()

    print("The oracle works because the engine is exact -- and the paper's")
    print("theorems are exactly the statement that it cannot also be fast:")
    print("deciding MHB is co-NP-hard, deciding CHB is NP-hard.")


if __name__ == "__main__":
    main()
