"""Execution traces and their conversion to the formal model.

A :class:`Trace` is the raw output of the simulator: one :class:`Step`
per atomic operation, in global (sequentially consistent) order.
:meth:`Trace.to_execution` converts it to a
:class:`~repro.model.execution.ProgramExecution`:

* maximal uninterrupted runs of non-synchronization steps of one
  process collapse into a single *computation event* (the paper's
  definition: "an instance of a group of statements belonging to the
  same process, none of which are synchronization operations"), except
  that labelled steps always form their own event so that marker events
  (``a: skip``) stay addressable;
* each synchronization step becomes its own event;
* ``D`` is derived from per-variable access order: ``a ->D b`` iff some
  access of ``a`` precedes a conflicting access of ``b`` in the trace;
* the observed schedule is the identity permutation (events are
  numbered in completion order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.builder import ExecutionBuilder
from repro.model.events import Access, EventKind
from repro.model.execution import ProgramExecution


@dataclass(frozen=True)
class Step:
    """One atomic operation performed by the simulated machine."""

    number: int
    process: str
    kind: EventKind
    obj: Optional[str] = None
    accesses: Tuple[Access, ...] = ()
    text: str = ""
    label: Optional[str] = None
    created: Tuple[str, ...] = ()
    joined: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        extra = f" {self.obj}" if self.obj else ""
        return f"<step {self.number} {self.process}: {self.kind.value}{extra} {self.text!r}>"


@dataclass
class Trace:
    """A complete, sequentially consistent trace of one program run."""

    steps: List[Step]
    sem_initial: Dict[str, int] = field(default_factory=dict)
    var_initial: Tuple[str, ...] = ()
    parent_of: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: ``parent_of[child] = (parent process, step number of the fork)``
    final_shared: Dict[str, int] = field(default_factory=dict)
    #: memory model the simulator ran under ("sc" or "tso"); carried
    #: into the converted execution so analyses use the same model
    memory_model: str = "sc"

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def processes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.steps:
            seen.setdefault(s.process, None)
        return list(seen)

    def pretty(self, limit: Optional[int] = None) -> str:
        rows = []
        for s in self.steps[: limit or len(self.steps)]:
            acc = " ".join(repr(a) for a in s.accesses)
            rows.append(f"{s.number:>4} {s.process:<12} {s.text:<28} {acc}")
        return "\n".join(rows)

    # ------------------------------------------------------------------
    def to_execution(self) -> ProgramExecution:
        """Convert the trace to the formal model (see module docstring).

        The execution inherits the trace's memory model.  For a TSO
        trace the simulator records writes at *issue* time (the drain
        that publishes them is internal machine activity), so ``D``
        follows issue order -- the dependence ``a ->D b`` means ``a``'s
        access was issued before ``b``'s conflicting access.  This is a
        deliberate modeling choice: issue order is what the process
        itself observed, and the feasibility analysis then asks which
        *other* orders the memory model would also have allowed.
        """
        # 1. group steps into events -----------------------------------
        groups: List[List[Step]] = []
        for s in self.steps:
            merge = (
                groups
                and s.kind is EventKind.COMPUTATION
                and s.label is None
                and groups[-1][-1].process == s.process
                and groups[-1][-1].kind is EventKind.COMPUTATION
                and groups[-1][0].label is None
            )
            if merge:
                groups[-1].append(s)
            else:
                groups.append([s])

        # 2. build events through the standard builder -----------------
        b = ExecutionBuilder()
        proc_builders: Dict[str, object] = {}
        fork_handles: Dict[int, object] = {}  # fork step number -> handle
        # Processes must be declared before events reference them; a
        # child is declared when its creating fork's event is built, so
        # process the groups in trace order (forks precede child steps).
        for p in self.processes:
            if p not in self.parent_of:
                proc_builders[p] = b.process(p)

        eids: List[int] = []
        for grp in groups:
            first = grp[0]
            pb = proc_builders[first.process]
            kind = first.kind
            if kind is EventKind.COMPUTATION:
                accesses = [a for s in grp for a in s.accesses]
                reads = [a.variable for a in accesses if not a.is_write]
                writes = [a.variable for a in accesses if a.is_write]
                eid = pb.compute(reads=reads, writes=writes, label=first.label)
            elif kind is EventKind.FORK:
                handle = pb.fork(label=first.label)
                fork_handles[first.number] = handle
                eid = handle.eid
                for child in first.created:
                    proc_builders[child] = b.process(child, parent=handle)
            elif kind is EventKind.JOIN:
                eid = pb.join(list(first.joined), label=first.label)
            elif kind is EventKind.SEM_P:
                eid = pb.sem_p(first.obj, label=first.label)
            elif kind is EventKind.SEM_V:
                eid = pb.sem_v(first.obj, label=first.label)
            elif kind is EventKind.POST:
                eid = pb.post(first.obj, label=first.label)
            elif kind is EventKind.WAIT:
                eid = pb.wait(first.obj, label=first.label)
            elif kind is EventKind.CLEAR:
                eid = pb.clear(first.obj, label=first.label)
            elif kind is EventKind.FENCE:
                eid = pb.fence(label=first.label)
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled kind {kind}")
            eids.append(eid)

        # 3. initial synchronization state ------------------------------
        for sem, init in self.sem_initial.items():
            b.semaphore(sem, init)
        for var in self.var_initial:
            b.event_variable(var, posted=True)

        # 4. derive D from access order ---------------------------------
        # Events are in completion (serial) order, so event i precedes
        # event j in observed time iff i < j.
        infos = []
        for i, grp in enumerate(groups):
            accesses = [a for s in grp for a in s.accesses]
            infos.append(accesses)
        for i in range(len(groups)):
            if not infos[i]:
                continue
            for j in range(i + 1, len(groups)):
                if not infos[j]:
                    continue
                if any(x.conflicts_with(y) for x in infos[i] for y in infos[j]):
                    b.dependence(eids[i], eids[j])

        b.memory_model(self.memory_model)
        return b.build(observed_schedule=eids)
