"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.model.builder import ExecutionBuilder
from repro.workloads.generators import (
    random_computation_overlay,
    random_event_execution,
    random_semaphore_execution,
)


# ----------------------------------------------------------------------
# canonical micro-executions
# ----------------------------------------------------------------------
@pytest.fixture
def vp_execution():
    """One V and one P on a zero semaphore, in separate processes."""
    b = ExecutionBuilder()
    v = b.process("producer").sem_v("s")
    p = b.process("consumer").sem_p("s")
    return b.build(), v, p


@pytest.fixture
def independent_pair():
    """Two events with no constraints whatsoever."""
    b = ExecutionBuilder()
    x = b.process("A").skip(label="x")
    y = b.process("B").skip(label="y")
    return b.build(), x, y


@pytest.fixture
def deadlocked_execution():
    """Two P operations on empty semaphores that nothing ever signals:
    the event set can never complete (``F`` is empty)."""
    b = ExecutionBuilder()
    x = b.process("A").sem_p("s1")
    y = b.process("B").sem_p("s2")
    return b.build(), x, y


@pytest.fixture
def fork_join_execution():
    """main forks two children, each one event, then joins."""
    b = ExecutionBuilder()
    main = b.process("main")
    f = main.fork()
    c1 = b.process("c1", parent=f).skip(label="c1e")
    c2 = b.process("c2", parent=f).skip(label="c2e")
    j = main.join(f)
    return b.build(), f, c1, c2, j


# ----------------------------------------------------------------------
# hypothesis strategies over random-but-feasible executions
# ----------------------------------------------------------------------
def small_semaphore_executions():
    """Strategy: tiny semaphore executions (enumeration-tractable)."""
    return st.builds(
        random_semaphore_execution,
        processes=st.integers(2, 3),
        events_per_process=st.integers(1, 2),
        semaphores=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )


def small_event_executions():
    return st.builds(
        random_event_execution,
        processes=st.integers(2, 3),
        events_per_process=st.integers(1, 2),
        variables=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )


def medium_semaphore_executions():
    """Strategy: engine-tractable but not enumeration-tractable."""
    return st.builds(
        random_semaphore_execution,
        processes=st.integers(2, 4),
        events_per_process=st.integers(2, 4),
        semaphores=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )


def overlay_executions():
    """Strategy: semaphores plus shared-variable accesses (non-empty D)."""
    return st.builds(
        random_computation_overlay,
        processes=st.integers(2, 3),
        events_per_process=st.integers(2, 3),
        semaphores=st.integers(1, 2),
        shared_vars=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )
