"""The solver portfolio: planner soundness, witness reuse, accounting.

The tiered :class:`~repro.solve.planner.QueryPlanner` promises exactly
what the exact layer promises -- a definite verdict is *true of the
execution* -- while answering most queries below the exponential tier.
These tests pin that contract:

* property tests against brute-force enumeration (the planner may be
  cleverer than the engine, never different);
* every witness a verdict carries replays through the reference
  semantics and actually exhibits its relation;
* drop-relaxed queries (the race detector's mode) stay sound;
* per-tier accounting survives snapshot/merge round-trips and the
  wire format the supervised pool ships home.
"""

from hypothesis import given, settings

from repro.budget import Budget
from repro.core.enumerate import relations_by_enumeration
from repro.core.queries import OrderingQueries
from repro.core.relations import RelationName
from repro.core.witness import replay_schedule
from repro.encoding.order_sat import OrderSatEncoder
from repro.model.builder import ExecutionBuilder
from repro.races.detector import RaceDetector
from repro.sat.cnf import parse_dimacs
from repro.sat.dpll import DPLLSolver, SolveBudgetExceeded
from repro.solve import (
    BACKENDS,
    BEST_EFFORT_PLAN,
    DEFAULT_PLAN,
    PlannerReport,
    QueryPlanner,
    SolveContext,
    WitnessCache,
    resolve_plan,
    tier_of,
)

from tests.strategies import (
    small_event_executions,
    small_semaphore_executions,
)


def fresh_planner(exe, plan=DEFAULT_PLAN):
    return QueryPlanner(SolveContext(exe), plan)


def conflict_execution():
    """Two independent processes, one write of ``x`` each, a dependence
    ``x -> y`` and the serial observed schedule: the race detector's
    minimal drop-relaxation workload."""
    b = ExecutionBuilder()
    x = b.process("A").write("x")
    y = b.process("B").write("x")
    exe = b.build(observed_schedule=[x, y])
    return exe.with_dependences([(x, y)]), x, y


# ----------------------------------------------------------------------
# soundness: the planner agrees with brute-force enumeration
# ----------------------------------------------------------------------
class TestAgreesWithEnumeration:
    def check(self, exe):
        ref = relations_by_enumeration(exe)
        planner = fresh_planner(exe)
        for a in range(len(exe)):
            for b in range(len(exe)):
                if a == b:
                    continue
                for name, v in planner.relation_verdicts(a, b).items():
                    assert not v.is_unknown, "unbudgeted ladder must decide"
                    expected = (a, b) in ref[RelationName[name]]
                    assert v.to_bool() == expected, (
                        f"{name}({a},{b}): planner={v.to_bool()} "
                        f"[{v.provenance}], enumeration={expected}"
                    )

    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_semaphore_executions(self, exe):
        self.check(exe)

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_event_executions(self, exe):
        self.check(exe)

    @given(small_semaphore_executions())
    @settings(max_examples=10, deadline=None)
    def test_every_plan_prefix_is_sound(self, exe):
        """Dropping cheap tiers changes cost, never definite answers."""
        ref = relations_by_enumeration(exe)
        planner = fresh_planner(exe, plan=("engine",))
        for a in range(len(exe)):
            for b in range(len(exe)):
                if a != b:
                    for name, v in planner.relation_verdicts(a, b).items():
                        assert v.to_bool() == ((a, b) in ref[RelationName[name]])


class TestWitnessesReplay:
    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_existential_witnesses_are_legal_and_exhibit(self, exe):
        planner = fresh_planner(exe)
        for a in range(len(exe)):
            for b in range(len(exe)):
                if a == b:
                    continue
                chb = planner.chb_verdict(a, b)
                if chb.is_true and chb.witness is not None:
                    chb.witness.validate()
                    assert chb.witness.happened_before(a, b)
                ccw = planner.ccw_verdict(a, b)
                if ccw.is_true and ccw.witness is not None:
                    ccw.witness.validate()
                    assert ccw.witness.concurrent(a, b)

    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_cached_schedules_replay(self, exe):
        """Nothing illegal ever enters the shared witness cache."""
        planner = fresh_planner(exe)
        for a in range(len(exe)):
            for b in range(len(exe)):
                if a != b:
                    planner.relation_verdicts(a, b)
        for entry in planner.ctx.witnesses.entries_for(
            frozenset(exe.dependences)
        ):
            replay_schedule(exe, entry.witness.points, include_dependences=False)


# ----------------------------------------------------------------------
# cross-query reuse: later queries ride earlier discoveries
# ----------------------------------------------------------------------
class TestWitnessReuse:
    def test_observed_schedule_seeds_the_cache(self):
        exe, x, y = conflict_execution()
        planner = fresh_planner(exe)
        v = planner.chb_verdict(x, y)
        assert v.is_true and v.provenance in ("structural", "observed")
        assert planner.report.engine_states() == 0

    def test_widening_answers_ccw_without_search(self):
        """The adjacent-swap transformation turns the serial observed
        schedule into an overlap witness: decided with zero states."""
        exe, x, y = conflict_execution()
        planner = fresh_planner(exe)
        drop = planner.ctx.racing_drop(x, y)
        v = planner.ccw_verdict(x, y, drop=drop)
        assert v.is_true and v.provenance == "witness"
        assert v.witness.concurrent(x, y)
        assert planner.report.engine_states() == 0

    def test_widening_is_validated_not_assumed(self):
        exe, x, y = conflict_execution()
        cache = WitnessCache(exe)
        w = SolveContext(exe).observed_witness()
        assert w is not None
        assert cache.add_witness(w) is not None
        widened = cache.widen_overlap(x, y, frozenset(exe.dependences))
        assert widened is not None
        widened.validate(include_dependences=False)
        assert widened.concurrent(x, y)

    def test_cache_rejects_illegal_schedules(self):
        exe, x, y = conflict_execution()
        cache = WitnessCache(exe)
        w = SolveContext(exe).observed_witness()
        assert cache.add(tuple(reversed(w.points))) is None
        assert cache.rejected == 1

    def test_unknown_is_not_memoized_retry_decides(self):
        exe, x, y = conflict_execution()
        planner = fresh_planner(exe, plan=("engine",))
        drop = planner.ctx.racing_drop(x, y)
        first = planner.ccw_verdict(x, y, drop=drop, budget=Budget.of(max_states=1))
        assert first.is_unknown
        second = planner.ccw_verdict(x, y, drop=drop)
        assert second.is_true
        # ...and the definite answer IS memoized: a later budgeted call
        # returns it instead of conceding again
        third = planner.ccw_verdict(x, y, drop=drop, budget=Budget.of(max_states=1))
        assert third.is_true


# ----------------------------------------------------------------------
# drop relaxations (the race detector's query mode)
# ----------------------------------------------------------------------
class TestDropQueries:
    def test_drop_enlarges_f_monotonically(self):
        exe, x, y = conflict_execution()
        planner = fresh_planner(exe)
        base = planner.ccw_verdict(x, y)
        relaxed = planner.ccw_verdict(x, y, drop=planner.ctx.racing_drop(x, y))
        # the dependence orders them in every member of F; dropping it
        # frees the overlap
        assert base.is_false
        assert relaxed.is_true

    def test_drop_queries_memoize_separately(self):
        exe, x, y = conflict_execution()
        planner = fresh_planner(exe)
        assert planner.ccw_verdict(x, y, drop=planner.ctx.racing_drop(x, y)).is_true
        assert planner.ccw_verdict(x, y).is_false


# ----------------------------------------------------------------------
# plans and accounting
# ----------------------------------------------------------------------
class TestPlans:
    def test_unknown_backend_name_raises(self):
        try:
            resolve_plan(("structural", "nosuch"))
        except ValueError as exc:
            assert "nosuch" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_registry_covers_every_strategy(self):
        for name in ("structural", "observed", "witness", "vc", "hmw",
                     "taskgraph", "sat", "engine"):
            assert name in BACKENDS

    def test_named_plans_resolve(self):
        assert len(resolve_plan(DEFAULT_PLAN)) == len(DEFAULT_PLAN)
        assert len(resolve_plan(BEST_EFFORT_PLAN)) == len(BEST_EFFORT_PLAN)

    def test_tier_of_maps_exact_to_engine(self):
        assert tier_of("exact") == "engine"
        assert tier_of("structural") == "structural"


class TestPlannerReport:
    def test_snapshot_merge_round_trip(self):
        r = PlannerReport()
        r.queries = 3
        r.unknown = 1
        r.record_answer("structural")
        r.record_answer("engine", states=40, elapsed=0.5)
        r.record_cost("hmw", elapsed=0.1)
        again = PlannerReport.from_snapshot(r.snapshot())
        assert again.snapshot() == r.snapshot()
        assert again.answered == 2
        assert again.answered_below("engine") == 1
        assert again.engine_states() == 40

    def test_merge_is_associative_accumulation(self):
        a, b = PlannerReport(), PlannerReport()
        a.record_answer("observed", states=1)
        b.record_answer("observed", states=2)
        b.record_answer("engine", states=10)
        total = PlannerReport()
        total.merge(a)
        total.merge(b.snapshot())
        assert total.tiers["observed"].answered == 2
        assert total.tiers["observed"].states == 3
        assert total.engine_states() == 10

    def test_race_scan_emits_report(self):
        exe, _, _ = conflict_execution()
        report = RaceDetector(exe).feasible_races()
        assert report.planner is not None
        assert report.planner.queries > 0
        assert report.planner.answered_below("engine") > 0

    def test_supervised_scan_ships_tier_counts_home(self):
        from repro.supervise import SupervisedScanner

        exe, _, _ = conflict_execution()
        serial = RaceDetector(exe).feasible_races()
        pooled = RaceDetector(exe).feasible_races(
            runner=SupervisedScanner(jobs=2)
        )
        assert pooled.planner is not None
        assert pooled.planner.answered == serial.planner.answered
        assert pooled.planner.answered_below("engine") > 0


# ----------------------------------------------------------------------
# serialization (satellite: journals record which tier answered)
# ----------------------------------------------------------------------
class TestSerialization:
    def test_planner_report_round_trip(self):
        from repro.model import serialize

        r = PlannerReport()
        r.queries = 2
        r.record_answer("witness")
        r.record_answer("engine", states=7)
        doc = serialize.planner_report_to_dict(r)
        assert doc["format"] == "repro-planner-report"
        assert serialize.planner_report_from_dict(doc).snapshot() == r.snapshot()

    def test_planner_report_rejects_unknown_version(self):
        from repro.model import serialize

        doc = serialize.planner_report_to_dict(PlannerReport())
        doc["version"] = 99
        try:
            serialize.planner_report_from_dict(doc)
        except ValueError as exc:
            assert "version" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_race_report_round_trips_provenance(self):
        from repro.model import serialize

        exe, _, _ = conflict_execution()
        report = RaceDetector(exe).feasible_races()
        loaded = serialize.report_from_dict(serialize.report_to_dict(report))
        assert [c.decided_by for c in loaded.classifications] == [
            c.decided_by for c in report.classifications
        ]
        assert all(c.decided_by is not None for c in loaded.classifications)
        assert loaded.planner is not None
        assert loaded.planner.snapshot() == report.planner.snapshot()

    def test_version1_report_still_loads(self):
        """Old journals (no decided_by, no planner block) stay readable."""
        from repro.model import serialize

        exe, _, _ = conflict_execution()
        doc = serialize.report_to_dict(RaceDetector(exe).feasible_races())
        doc["version"] = 1
        doc["planner"] = None
        for rec in doc["classifications"]:
            del rec["decided_by"]
        loaded = serialize.report_from_dict(doc)
        assert loaded.planner is None
        assert all(c.decided_by is None for c in loaded.classifications)


# ----------------------------------------------------------------------
# the SAT tier's budget awareness (satellite: first-class backend)
# ----------------------------------------------------------------------
class TestSatBudgets:
    HARD = "p cnf 6 8\n" + "".join(
        f"{a} {b} {c} 0\n-{a} -{b} -{c} 0\n"
        for a, b, c in [(1, 2, 3), (2, 3, 4), (3, 4, 5), (4, 5, 6)]
    )

    def test_decision_cap_raises_with_resource(self):
        cnf = parse_dimacs(self.HARD).to_3cnf()
        try:
            DPLLSolver(cnf, max_decisions=0).solve()
        except SolveBudgetExceeded as exc:
            assert exc.resource == "decisions"
        else:
            raise AssertionError("expected SolveBudgetExceeded")

    def test_deadline_raises_with_resource(self):
        cnf = parse_dimacs(self.HARD).to_3cnf()
        try:
            DPLLSolver(cnf, deadline=0.0).solve()
        except SolveBudgetExceeded as exc:
            assert exc.resource == "deadline"
        else:
            raise AssertionError("expected SolveBudgetExceeded")

    def test_encoder_clause_cap_raises(self):
        # enough unordered events that the O(n^3) transitivity clauses
        # must blow a one-clause cap during encoding
        b = ExecutionBuilder()
        for p in ("A", "B", "C", "D"):
            b.process(p).skip()
        exe = b.build()
        try:
            OrderSatEncoder(exe, budget=Budget.of(max_states=1))
        except SolveBudgetExceeded as exc:
            assert exc.resource == "clauses"
        else:
            raise AssertionError("expected SolveBudgetExceeded")

    def test_unbudgeted_encoder_still_solves(self):
        exe, x, y = conflict_execution()
        order = OrderSatEncoder(exe).solve()
        assert order is not None
        assert order.index(x) < order.index(y)  # respects the dependence
