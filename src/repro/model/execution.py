"""The program execution triple ``P = <E, T, D>``.

:class:`ProgramExecution` is the central value type of the library:
the exact ordering engine, the approximation algorithms, the reductions
and the race detector all consume it.

Design notes
------------
* ``E`` is stored as a tuple of :class:`~repro.model.events.Event`
  whose position equals its ``eid`` -- every engine state is then a
  pair of integer bitmasks over ``eid``.
* The *observed* temporal ordering ``T`` is represented by an optional
  observed serial schedule (the order in which the tracing interpreter
  completed the events).  An execution built directly (e.g. by the
  theorem reductions) need not carry an observed schedule; the paper's
  reductions construct programs whose every execution performs the same
  events, so any legal schedule is as good as any other and the engine
  verifies one exists.
* ``D`` is stored as an explicit set of ``(eid, eid)`` pairs.  When an
  execution is produced by the tracer, ``D`` is derived from the
  per-variable access order of the observed schedule.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.model.events import Event, EventKind
from repro.util.graphs import Digraph, is_acyclic


class SyncStyle(enum.Enum):
    """Which synchronization family an execution uses (Section 2)."""

    NONE = "none"
    SEMAPHORE = "semaphore"
    EVENT = "event"
    MIXED = "mixed"


class ProgramExecution:
    """An immutable program execution ``<E, T, D>``.

    Parameters
    ----------
    events:
        All events; ``events[i].eid`` must equal ``i``.
    processes:
        Mapping of process name to the eids of its events in program
        order.
    fork_children:
        Mapping from the eid of each FORK event to the names of the
        processes it creates.
    join_targets:
        Mapping from the eid of each JOIN event to the names of the
        processes whose completion it awaits.
    parent_fork:
        Mapping from process name to the eid of the FORK event that
        created it; root processes are absent from the mapping.
    sem_initial:
        Initial value of each counting semaphore (defaults to 0 for
        semaphores that appear in events but not in the mapping, as in
        the paper's reductions).
    var_initial:
        Initially *posted* event variables (all variables start
        cleared unless listed).
    dependences:
        The shared-data dependence relation ``D`` as (eid, eid) pairs.
    observed_schedule:
        Optional serial order of event completion from the tracer.
    memory_model:
        Name of the memory model the execution ran under (``"sc"`` by
        default; see :mod:`repro.memmodel`).  Feasibility, the ordering
        relations and witness replay all derive their program-order
        constraints from it.
    """

    def __init__(
        self,
        events: Sequence[Event],
        processes: Mapping[str, Sequence[int]],
        *,
        fork_children: Mapping[int, Sequence[str]] = (),
        join_targets: Mapping[int, Sequence[str]] = (),
        parent_fork: Mapping[str, int] = (),
        sem_initial: Mapping[str, int] = (),
        var_initial: Iterable[str] = (),
        dependences: Iterable[Tuple[int, int]] = (),
        observed_schedule: Optional[Sequence[int]] = None,
        memory_model: str = "sc",
    ) -> None:
        self._events: Tuple[Event, ...] = tuple(events)
        for i, e in enumerate(self._events):
            if e.eid != i:
                raise ValueError(f"event at position {i} has eid {e.eid}; eids must be dense and ordered")
        self._processes: Dict[str, Tuple[int, ...]] = {p: tuple(eids) for p, eids in processes.items()}
        self._fork_children: Dict[int, Tuple[str, ...]] = {int(k): tuple(v) for k, v in dict(fork_children).items()}
        self._join_targets: Dict[int, Tuple[str, ...]] = {int(k): tuple(v) for k, v in dict(join_targets).items()}
        self._parent_fork: Dict[str, int] = dict(parent_fork)
        self._sem_initial: Dict[str, int] = dict(sem_initial)
        self._var_initial: FrozenSet[str] = frozenset(var_initial)
        self._dependences: FrozenSet[Tuple[int, int]] = frozenset((int(a), int(b)) for a, b in dependences)
        self._observed: Optional[Tuple[int, ...]] = tuple(observed_schedule) if observed_schedule is not None else None
        from repro.memmodel import resolve_memory_model

        self._model = resolve_memory_model(memory_model)

        self._validate_basic()
        self._build_caches()

    # ------------------------------------------------------------------
    # validation + caches
    # ------------------------------------------------------------------
    def _validate_basic(self) -> None:
        seen: Dict[int, str] = {}
        for p, eids in self._processes.items():
            for pos, eid in enumerate(eids):
                if eid < 0 or eid >= len(self._events):
                    raise ValueError(f"process {p!r} references unknown eid {eid}")
                e = self._events[eid]
                if e.process != p:
                    raise ValueError(f"event {eid} claims process {e.process!r} but listed under {p!r}")
                if e.index != pos:
                    raise ValueError(f"event {eid} has index {e.index} but is at position {pos} of {p!r}")
                if eid in seen:
                    raise ValueError(f"event {eid} appears in two processes: {seen[eid]!r} and {p!r}")
                seen[eid] = p
        if len(seen) != len(self._events):
            missing = [e.eid for e in self._events if e.eid not in seen]
            raise ValueError(f"events not assigned to any process: {missing}")

        for eid, children in self._fork_children.items():
            if self._events[eid].kind is not EventKind.FORK:
                raise ValueError(f"fork_children maps non-FORK event {eid}")
            for c in children:
                if c not in self._processes:
                    raise ValueError(f"fork {eid} creates unknown process {c!r}")
                if self._parent_fork.get(c) != eid:
                    raise ValueError(f"process {c!r} missing parent_fork back-reference to fork {eid}")
        for eid, targets in self._join_targets.items():
            if self._events[eid].kind is not EventKind.JOIN:
                raise ValueError(f"join_targets maps non-JOIN event {eid}")
            for t in targets:
                if t not in self._processes:
                    raise ValueError(f"join {eid} awaits unknown process {t!r}")
        for e in self._events:
            if e.kind is EventKind.FORK and e.eid not in self._fork_children:
                raise ValueError(f"FORK event {e.eid} has no fork_children entry")
            if e.kind is EventKind.JOIN and e.eid not in self._join_targets:
                raise ValueError(f"JOIN event {e.eid} has no join_targets entry")
        for p, feid in self._parent_fork.items():
            if p not in self._processes:
                raise ValueError(f"parent_fork references unknown process {p!r}")
            if feid not in self._fork_children or p not in self._fork_children[feid]:
                raise ValueError(f"parent_fork of {p!r} inconsistent with fork_children")
        for a, b in self._dependences:
            if not (0 <= a < len(self._events) and 0 <= b < len(self._events)):
                raise ValueError(f"dependence ({a},{b}) references unknown event")
            if a == b:
                raise ValueError("dependence relation must be irreflexive")
        if self._observed is not None:
            if sorted(self._observed) != list(range(len(self._events))):
                raise ValueError("observed schedule must be a permutation of all eids")

    def _build_caches(self) -> None:
        from repro.memmodel import po_constraint_pairs

        n = len(self._events)
        self._po_pred: List[Optional[int]] = [None] * n
        self._po_succ: List[Optional[int]] = [None] * n
        for eids in self._processes.values():
            for prev, cur in zip(eids, eids[1:]):
                self._po_pred[cur] = prev
                self._po_succ[prev] = cur
        # program-order *interval* constraints under the memory model:
        # end(pred) < begin(succ) must hold in every legal schedule.
        # Under SC this is exactly the adjacent-predecessor chain; a
        # relaxed model (TSO) drops the W->R edges its store buffer
        # permits, in which case an event can owe its begin to several
        # non-adjacent predecessors.
        self._po_begin_preds: List[Tuple[int, ...]] = [() for _ in range(n)]
        for eids in self._processes.values():
            evs = [self._events[i] for i in eids]
            for i, j in po_constraint_pairs(evs, self._model):
                pred, succ = eids[i], eids[j]
                self._po_begin_preds[succ] = self._po_begin_preds[succ] + (pred,)
        self._dep_preds: List[Tuple[int, ...]] = [() for _ in range(n)]
        for a, b in sorted(self._dependences):
            self._dep_preds[b] = self._dep_preds[b] + (a,)
        self._semaphores = tuple(sorted({e.obj for e in self._events if e.kind.is_semaphore_op}))
        self._event_vars = tuple(sorted({e.obj for e in self._events if e.kind.is_event_var_op}))
        self._var_index = {v: i for i, v in enumerate(self._event_vars)}
        self._label_map = {e.label: e.eid for e in self._events if e.label is not None}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[Event, ...]:
        return self._events

    def event(self, eid: int) -> Event:
        return self._events[eid]

    def __len__(self) -> int:
        return len(self._events)

    @property
    def eids(self) -> range:
        return range(len(self._events))

    @property
    def processes(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self._processes)

    @property
    def process_names(self) -> Tuple[str, ...]:
        return tuple(self._processes.keys())

    def process_events(self, name: str) -> Tuple[int, ...]:
        return self._processes[name]

    @property
    def root_processes(self) -> Tuple[str, ...]:
        return tuple(p for p in self._processes if p not in self._parent_fork)

    @property
    def fork_children(self) -> Dict[int, Tuple[str, ...]]:
        return dict(self._fork_children)

    @property
    def join_targets(self) -> Dict[int, Tuple[str, ...]]:
        return dict(self._join_targets)

    @property
    def parent_fork(self) -> Dict[str, int]:
        return dict(self._parent_fork)

    @property
    def semaphores(self) -> Tuple[str, ...]:
        return self._semaphores

    @property
    def event_variables(self) -> Tuple[str, ...]:
        return self._event_vars

    def sem_initial(self, name: str) -> int:
        return self._sem_initial.get(name, 0)

    def var_initially_posted(self, name: str) -> bool:
        return name in self._var_initial

    @property
    def dependences(self) -> FrozenSet[Tuple[int, int]]:
        return self._dependences

    def dependence_predecessors(self, eid: int) -> Tuple[int, ...]:
        return self._dep_preds[eid]

    @property
    def observed_schedule(self) -> Optional[Tuple[int, ...]]:
        return self._observed

    def po_predecessor(self, eid: int) -> Optional[int]:
        """Program-order predecessor within the event's process."""
        return self._po_pred[eid]

    def po_successor(self, eid: int) -> Optional[int]:
        return self._po_succ[eid]

    @property
    def memory_model(self) -> str:
        """Name of the memory model this execution ran under."""
        return self._model.name

    @property
    def model(self):
        """The resolved :class:`~repro.memmodel.MemoryModel` instance."""
        return self._model

    def po_begin_predecessors(self, eid: int) -> Tuple[int, ...]:
        """Same-process events that must *end* before ``eid`` begins
        under this execution's memory model (transitively reduced).
        Under SC: the adjacent program-order predecessor alone."""
        return self._po_begin_preds[eid]

    def by_label(self, label: str) -> Event:
        return self._events[self._label_map[label]]

    @property
    def labels(self) -> Dict[str, int]:
        return dict(self._label_map)

    # ------------------------------------------------------------------
    # classification & views
    # ------------------------------------------------------------------
    @property
    def sync_style(self) -> SyncStyle:
        has_sem = bool(self._semaphores)
        has_evt = bool(self._event_vars)
        if has_sem and has_evt:
            return SyncStyle.MIXED
        if has_sem:
            return SyncStyle.SEMAPHORE
        if has_evt:
            return SyncStyle.EVENT
        return SyncStyle.NONE

    def sem_events(self, name: str) -> Tuple[int, ...]:
        return tuple(e.eid for e in self._events if e.kind.is_semaphore_op and e.obj == name)

    def var_events(self, name: str) -> Tuple[int, ...]:
        return tuple(e.eid for e in self._events if e.kind.is_event_var_op and e.obj == name)

    def computation_events(self) -> Tuple[int, ...]:
        return tuple(e.eid for e in self._events if e.kind is EventKind.COMPUTATION)

    def synchronization_events(self) -> Tuple[int, ...]:
        return tuple(e.eid for e in self._events if e.kind.is_synchronization)

    def conflicting_pairs(self) -> List[Tuple[int, int]]:
        """All unordered pairs of events with conflicting shared accesses."""
        comp = [self._events[i] for i in self.computation_events()]
        out: List[Tuple[int, int]] = []
        for i, a in enumerate(comp):
            for b in comp[i + 1 :]:
                if a.process != b.process and a.conflicts_with(b):
                    out.append((a.eid, b.eid))
        return out

    # ------------------------------------------------------------------
    # the static guaranteed-order graph (program order + fork/join + D)
    # ------------------------------------------------------------------
    def static_order_graph(
        self, *, include_dependences: bool = True, join_edges: bool = True
    ) -> Digraph:
        """Orderings enforced in *every* execution by structure alone.

        Edges: program order within a process, fork -> first event of
        each created process, last event of a process -> the join that
        awaits it, and (optionally) each shared-data dependence.  This
        is the skeleton every feasible execution's ``T`` must extend;
        the engine adds the synchronization-semantics constraints on
        top of it.

        Edge-strength caveat: program-order, fork and dependence edges
        are *interval* orderings (``end(u) < begin(v)``), but a join
        edge only orders **completions** -- the join may begin (and
        block) before its children end.  Queries about concurrency must
        therefore pass ``join_edges=False``; completion-order reasoning
        (CHB shortcuts, the approximation algorithms) keeps them.

        Program-order edges are the ones this execution's memory model
        guarantees: under SC the adjacent chain, under a relaxed model
        the transitively-reduced constraint set with the relaxed pairs
        (e.g. TSO's W->R) absent.
        """
        g = Digraph(range(len(self._events)))
        for cur in range(len(self._events)):
            for prev in self._po_begin_preds[cur]:
                g.add_edge(prev, cur)
        for feid, children in self._fork_children.items():
            for c in children:
                child_events = self._processes[c]
                if child_events:
                    g.add_edge(feid, child_events[0])
        if join_edges:
            for jeid, targets in self._join_targets.items():
                for t in targets:
                    t_events = self._processes[t]
                    if t_events:
                        g.add_edge(t_events[-1], jeid)
        if include_dependences:
            for a, b in self._dependences:
                g.add_edge(a, b)
        return g

    def is_structurally_consistent(self) -> bool:
        """The static order graph must be acyclic for any execution to exist."""
        return is_acyclic(self.static_order_graph())

    # ------------------------------------------------------------------
    def with_dependences(self, dependences: Iterable[Tuple[int, int]]) -> "ProgramExecution":
        """A copy of this execution with a different ``D`` relation."""
        return ProgramExecution(
            self._events,
            self._processes,
            fork_children=self._fork_children,
            join_targets=self._join_targets,
            parent_fork=self._parent_fork,
            sem_initial=self._sem_initial,
            var_initial=self._var_initial,
            dependences=dependences,
            observed_schedule=self._observed,
            memory_model=self._model.name,
        )

    def without_dependences(self) -> "ProgramExecution":
        """The Section 5.3 view: same events, ``D`` ignored."""
        return self.with_dependences(())

    def with_memory_model(self, name: str) -> "ProgramExecution":
        """The same events re-analyzed under another memory model
        (used by ``--memory-model`` to ask "what could this trace have
        done on that hardware?").  Unknown names raise ``ValueError``."""
        from repro.memmodel import resolve_memory_model

        if resolve_memory_model(name).name == self._model.name:
            return self
        return ProgramExecution(
            self._events,
            self._processes,
            fork_children=self._fork_children,
            join_targets=self._join_targets,
            parent_fork=self._parent_fork,
            sem_initial=self._sem_initial,
            var_initial=self._var_initial,
            dependences=self._dependences,
            observed_schedule=self._observed,
            memory_model=name,
        )

    def __repr__(self) -> str:
        model = "" if self._model.name == "sc" else f", model={self._model.name}"
        return (
            f"ProgramExecution({len(self._events)} events, "
            f"{len(self._processes)} processes, style={self.sync_style.value}, "
            f"|D|={len(self._dependences)}{model})"
        )
