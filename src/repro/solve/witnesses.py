"""Cross-query witness reuse: a cache of known members of ``F``.

Every existential ``TRUE`` the exact engine (or the SAT backend, or
the observed schedule) produces is a complete legal point schedule --
a member of ``F``.  One such schedule answers many later queries by
*replay*: reading off interval positions is linear, while re-deriving
the same fact by search is exponential in the worst case.  The cache
therefore keeps every schedule found during a scan and lets the
``witness`` backend consult them before any search runs.

Soundness of reuse across ``drop`` variants: a cached schedule is
validated once against the synchronization semantics *ignoring* the
dependence relation, and the exact set of dependence edges it violates
is recorded.  The schedule is then a member of ``F(drop)`` for every
``drop ⊇ violated`` -- dropping edges only removes begin-gates, never
adds them.  A schedule found under one pair's drop set typically
violates nothing (``violated = ∅``) and so serves *every* pair.

Persistence hooks: every successful :meth:`~WitnessCache.add` bumps a
monotonic :attr:`~WitnessCache.version`; :meth:`~WitnessCache.mark`
plus :meth:`~WitnessCache.entries_since` let a caller (a supervised
query worker) extract exactly the schedules discovered by one query,
and :meth:`~WitnessCache.seed` replays externally stored schedules
(the daemon's on-disk witness store) back in.  Seeding goes through
:meth:`~WitnessCache.add`'s full validation, so a corrupted or stale
store entry is silently rejected rather than trusted -- the cache
remains the single soundness gate no matter where a schedule claims
to come from.

The cache also implements the one sound schedule *transformation* the
planner uses: :func:`widen_overlap` takes a schedule ordering ``c``
before ``d`` and moves ``begin(d)`` to just before ``end(c)``.  Begin
points never change synchronization state, so the move is legal iff
``d``'s begin-gates (program order, creating fork, un-dropped
dependences) still hold at the new position -- re-checked by a full
replay, never assumed.  When legal, the result is a new member of
``F(drop)`` in which ``c`` and ``d`` overlap: a CCW witness obtained
for the cost of one replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.engine import Point
from repro.core.witness import IllegalScheduleError, Witness, replay_schedule
from repro.model.execution import ProgramExecution


@dataclass(frozen=True)
class CacheEntry:
    """A validated schedule plus the dependence edges it violates."""

    witness: Witness
    violated: FrozenSet[Tuple[int, int]]

    def valid_for(self, drop: FrozenSet[Tuple[int, int]]) -> bool:
        return self.violated <= drop


class WitnessCache:
    """Validated members of ``F`` (and of its ``drop`` relaxations).

    Entries are kept in insertion order and bounded by ``capacity``
    (FIFO eviction): a long scan keeps its most recent discoveries,
    which empirically serve nearby pairs best.
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        capacity: int = 256,
    ) -> None:
        self.exe = exe
        self.include_dependences = include_dependences
        self.binary_semaphores = binary_semaphores
        self.capacity = capacity
        self._entries: List[CacheEntry] = []
        self._versions: List[int] = []  # parallel to _entries
        self._seen: set = set()
        self.hits = 0
        self.rejected = 0
        #: monotonic count of successful adds (never decremented by
        #: eviction) -- the basis of :meth:`mark`/:meth:`entries_since`
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def add(self, points: Sequence[Point]) -> Optional[CacheEntry]:
        """Validate and cache one schedule; return its entry.

        Returns ``None`` (and counts a rejection) when the schedule
        does not replay through the reference semantics -- the cache
        never trusts a caller, so a buggy backend cannot poison it.
        Duplicates are returned without re-validation.
        """
        key = tuple(points)
        if key in self._seen:
            for entry in self._entries:
                if entry.witness.points == key:
                    return entry
        try:
            replay_schedule(
                self.exe,
                points,
                include_dependences=False,
                binary_semaphores=self.binary_semaphores,
            )
        except IllegalScheduleError:
            self.rejected += 1
            return None
        w = Witness(self.exe, points)
        if self.include_dependences:
            violated = frozenset(
                (x, y)
                for (x, y) in self.exe.dependences
                if not w.end_position(x) < w.begin_position(y)
            )
        else:
            violated = frozenset()
        entry = CacheEntry(w, violated)
        self.version += 1
        self._entries.append(entry)
        self._versions.append(self.version)
        self._seen.add(key)
        if len(self._entries) > self.capacity:
            evicted = self._entries.pop(0)
            self._versions.pop(0)
            self._seen.discard(evicted.witness.points)
        return entry

    def add_witness(self, witness: Witness) -> Optional[CacheEntry]:
        return self.add(witness.points)

    # ------------------------------------------------------------------
    # persistence hooks (the daemon's on-disk witness store)
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """An opaque watermark; pass to :meth:`entries_since` to get
        only the schedules discovered after this point."""
        return self.version

    def entries_since(self, mark: int) -> List[CacheEntry]:
        """Entries added after ``mark`` that are still resident
        (eviction can only shrink the answer, never corrupt it)."""
        return [
            e for e, v in zip(self._entries, self._versions) if v > mark
        ]

    def points_since(self, mark: int) -> List[List[Tuple[int, int]]]:
        """JSON-ready ``[[eid, is_end], ...]`` schedules added after
        ``mark`` -- what a query worker ships home for the store."""
        return [
            [[p.eid, int(p.is_end)] for p in e.witness.points]
            for e in self.entries_since(mark)
        ]

    def seed(self, schedules: Sequence[Sequence[Sequence[int]]]) -> int:
        """Replay externally stored schedules into the cache, each
        through :meth:`add`'s full validation (an invalid schedule is
        rejected and counted, never trusted).  Returns a :meth:`mark`
        taken *after* seeding, so ``points_since`` excludes the seeds
        themselves and reports only genuinely new discoveries."""
        for sched in schedules:
            try:
                self.add([Point(int(eid), bool(end)) for eid, end in sched])
            except (TypeError, ValueError, KeyError, IndexError):
                # malformed points document: reject like an illegal
                # schedule instead of letting a bad store entry crash
                # the query that tried to reuse it
                self.rejected += 1
        return self.mark()

    # ------------------------------------------------------------------
    def entries_for(self, drop: FrozenSet[Tuple[int, int]]) -> Iterator[CacheEntry]:
        for entry in self._entries:
            if entry.valid_for(drop):
                yield entry

    def any_member(self, drop: FrozenSet[Tuple[int, int]]) -> Optional[Witness]:
        for entry in self.entries_for(drop):
            self.hits += 1
            return entry.witness
        return None

    def find_chb(
        self, a: int, b: int, drop: FrozenSet[Tuple[int, int]]
    ) -> Optional[Witness]:
        """A cached member of ``F(drop)`` completing ``a`` before ``b``
        begins."""
        for entry in self.entries_for(drop):
            if entry.witness.happened_before(a, b):
                self.hits += 1
                return entry.witness
        return None

    def find_ccb(
        self, a: int, b: int, drop: FrozenSet[Tuple[int, int]]
    ) -> Optional[Witness]:
        """A cached member of ``F(drop)`` completing ``a`` before ``b``."""
        for entry in self.entries_for(drop):
            if entry.witness.end_position(a) < entry.witness.end_position(b):
                self.hits += 1
                return entry.witness
        return None

    def find_ccw(
        self, a: int, b: int, drop: FrozenSet[Tuple[int, int]]
    ) -> Optional[Witness]:
        """A cached member of ``F(drop)`` overlapping ``a`` and ``b``."""
        for entry in self.entries_for(drop):
            if entry.witness.concurrent(a, b):
                self.hits += 1
                return entry.witness
        return None

    # ------------------------------------------------------------------
    def widen_overlap(
        self, a: int, b: int, drop: FrozenSet[Tuple[int, int]]
    ) -> Optional[Witness]:
        """Derive an overlap witness for ``(a, b)`` by the adjacent-swap
        transformation on any cached schedule valid for ``drop``.

        The candidate is fully re-validated (replay plus a positional
        check of every un-dropped dependence) before being cached and
        returned, so an illegal move can only cost time, never
        soundness.
        """
        for entry in self.entries_for(drop):
            w = entry.witness
            if w.concurrent(a, b):
                self.hits += 1
                return w
            c, d = (a, b) if w.happened_before(a, b) else (b, a)
            pts = list(w.points)
            pts.remove(Point(d, False))
            pts.insert(pts.index(Point(c, True)), Point(d, False))
            candidate = self.add(pts)
            if candidate is not None and candidate.valid_for(drop):
                self.hits += 1
                return candidate.witness
        return None


__all__ = ["CacheEntry", "WitnessCache"]
