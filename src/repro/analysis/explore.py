"""Exhaustive schedule-tree exploration of a program.

Strategy: depth-first over scheduler decision prefixes.  A probing
scheduler replays a forced prefix and then reports the runnable set at
the first free step; each runnable process extends the prefix by one
branch.  Replaying from scratch per prefix costs O(depth) re-execution
but keeps the interpreter entirely unmodified -- no snapshotting of
interpreter state, no hidden coupling.  Fine for the program sizes the
examples and benchmarks use (schedule trees up to a few thousand runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import Program
from repro.lang.interpreter import DeadlockError, Interpreter
from repro.lang.scheduler import Scheduler
from repro.lang.trace import Trace


class _Probe(Exception):
    """Raised by the probing scheduler when the prefix is exhausted."""

    def __init__(self, runnable: Tuple[str, ...]):
        self.runnable = runnable


class _ProbingScheduler(Scheduler):
    def __init__(self, prefix: Sequence[str]):
        self.prefix = list(prefix)
        self._i = 0

    def reset(self) -> None:
        self._i = 0

    def choose(self, runnable, step):
        if self._i >= len(self.prefix):
            raise _Probe(tuple(sorted(runnable)))
        choice = self.prefix[self._i]
        self._i += 1
        return choice


@dataclass
class Run:
    """One maximal run of the program."""

    schedule: Tuple[str, ...]
    trace: Trace
    deadlocked: bool
    blocked: Tuple[str, ...] = ()


@dataclass
class ExplorationResult:
    """All maximal runs of a program (complete and deadlocked)."""

    runs: List[Run]
    truncated: bool  # hit the max_runs budget before finishing

    @property
    def complete_runs(self) -> List[Run]:
        return [r for r in self.runs if not r.deadlocked]

    @property
    def deadlocked_runs(self) -> List[Run]:
        return [r for r in self.runs if r.deadlocked]

    def __len__(self) -> int:
        return len(self.runs)


def explore_program(
    program: Program,
    *,
    max_runs: Optional[int] = None,
    max_steps: int = 10_000,
) -> ExplorationResult:
    """Enumerate every maximal run of ``program`` (DFS over choices).

    ``max_runs`` bounds the enumeration (``truncated`` is set when the
    budget is hit); ``max_steps`` guards against unbounded loops in any
    single run.
    """
    runs: List[Run] = []
    truncated = False
    stack: List[List[str]] = [[]]
    while stack:
        if max_runs is not None and len(runs) >= max_runs:
            truncated = True
            break
        prefix = stack.pop()
        interp = Interpreter(program, _ProbingScheduler(prefix), max_steps=max_steps)
        try:
            trace = interp.run()
        except _Probe as probe:
            # branch: one child per runnable process (reverse-sorted so
            # the DFS visits them in sorted order)
            for choice in sorted(probe.runnable, reverse=True):
                stack.append(prefix + [choice])
            continue
        except DeadlockError as dead:
            runs.append(
                Run(
                    schedule=tuple(prefix),
                    trace=dead.trace,
                    deadlocked=True,
                    blocked=tuple(sorted(dead.blocked)),
                )
            )
            continue
        runs.append(Run(schedule=tuple(prefix), trace=trace, deadlocked=False))
    return ExplorationResult(runs=runs, truncated=truncated)


class ProgramAnalysis:
    """Aggregate questions over all executions of a program.

    This is the Callahan/Subhlok-style quantifier ("guaranteed to occur
    in all executions of a given program") answered by dynamic
    exhaustion rather than static dataflow.
    """

    def __init__(self, program: Program, *, max_runs: Optional[int] = None,
                 max_steps: int = 10_000):
        self.program = program
        # unknown-pair tally of the most recent program_races() call
        self.race_unknowns: Dict[Tuple[str, str], int] = {}
        self.result = explore_program(program, max_runs=max_runs, max_steps=max_steps)
        if self.result.truncated:
            raise RuntimeError(
                "schedule tree larger than max_runs; raise the budget or "
                "shrink the program"
            )

    # ------------------------------------------------------------------
    @property
    def can_deadlock(self) -> bool:
        return bool(self.result.deadlocked_runs)

    def event_signatures(self) -> Dict[Tuple[str, ...], int]:
        """Distinct complete-run event sets (as sorted step descriptor
        tuples) with their multiplicities -- two signatures mean the
        program's executions do not all perform the same events."""
        sigs: Dict[Tuple[str, ...], int] = {}
        for run in self.result.complete_runs:
            sig = tuple(sorted(f"{s.process}:{s.text}" for s in run.trace.steps))
            sigs[sig] = sigs.get(sig, 0) + 1
        return sigs

    def labels_in_all_runs(self) -> FrozenSet[str]:
        """Labels executed in every complete run."""
        sets = [
            {s.label for s in run.trace.steps if s.label}
            for run in self.result.complete_runs
        ]
        if not sets:
            return frozenset()
        return frozenset(set.intersection(*sets))

    def guaranteed_orderings(self) -> Set[Tuple[str, str]]:
        """Label pairs ``(a, b)`` with ``a`` completing before ``b`` in
        **every** complete run (both labels present in all runs).

        The dynamic ground truth for the static problem Callahan &
        Subhlok prove co-NP-hard.
        """
        common = self.labels_in_all_runs()
        candidates = {(a, b) for a in common for b in common if a != b}
        for run in self.result.complete_runs:
            pos = {
                s.label: i
                for i, s in enumerate(run.trace.steps)
                if s.label in common
            }
            candidates = {(a, b) for (a, b) in candidates if pos[a] < pos[b]}
            if not candidates:
                break
        return candidates

    def program_races(self, *, max_states: Optional[int] = None, budget=None):
        """Feasible races aggregated over every distinct execution.

        Each complete run's trace converts to an execution whose
        feasible races are computed exactly; results are merged by the
        racing events' statement descriptors (distinct runs may number
        events differently).  A pair reported here races in *some*
        execution of the program -- the strongest dynamic guarantee an
        exhaustive exploration can give, and necessarily exponential
        (the paper's corollary applies to each member).

        ``budget`` (a :class:`repro.budget.Budget`) is shared across
        every per-execution scan; pairs left undecided are tallied in
        :attr:`race_unknowns` (same key format) rather than dropped
        silently, so a truncated scan is distinguishable from a clean
        one.
        """
        from repro.races.detector import RaceDetector

        seen_signatures = set()
        merged: Dict[Tuple[str, str], int] = {}
        unknowns: Dict[Tuple[str, str], int] = {}
        for run in self.result.complete_runs:
            sig = tuple(sorted(f"{s.process}:{s.text}" for s in run.trace.steps))
            if sig in seen_signatures:
                continue  # same events => same feasible races
            seen_signatures.add(sig)
            exe = run.trace.to_execution()
            report = RaceDetector(
                exe, max_states=max_states, budget=budget
            ).feasible_races()
            for race in report.races:
                ea, eb = exe.event(race.a), exe.event(race.b)
                key = tuple(sorted((ea.describe(), eb.describe())))
                merged[key] = merged.get(key, 0) + 1
            for cls in report.unknown_pairs:
                ea, eb = exe.event(cls.a), exe.event(cls.b)
                key = tuple(sorted((ea.describe(), eb.describe())))
                unknowns[key] = unknowns.get(key, 0) + 1
        self.race_unknowns = unknowns
        return merged

    def summary(self) -> Dict[str, object]:
        return {
            "runs": len(self.result.runs),
            "complete": len(self.result.complete_runs),
            "deadlocked": len(self.result.deadlocked_runs),
            "event_signatures": len(self.event_signatures()),
            "guaranteed_orderings": len(self.guaranteed_orderings()),
        }
