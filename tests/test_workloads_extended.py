"""Tests for the extended workload programs (readers/writers, reusable
barrier, work queue) and their ordering semantics."""

import pytest

from repro.core.queries import OrderingQueries
from repro.lang.interpreter import run_program
from repro.lang.scheduler import PriorityScheduler
from repro.model.axioms import validate_execution
from repro.model.events import EventKind
from repro.races.detector import RaceDetector
from repro.workloads.programs import (
    readers_writers_program,
    reusable_barrier_program,
    work_queue_program,
)


class TestReadersWriters:
    @pytest.mark.parametrize("seed", range(5))
    def test_runs_to_completion(self, seed):
        trace = run_program(readers_writers_program(readers=2), seed)
        assert trace.final_shared["data"] == 1

    def test_no_feasible_race_under_mutex(self):
        exe = run_program(readers_writers_program(readers=2), 1).to_execution()
        report = RaceDetector(exe).feasible_races()
        assert report.races == []
        # but there ARE conflicting pairs (write vs each read)
        assert report.conflicting_pairs_examined >= 2

    def test_reads_mutually_unordered(self):
        exe = run_program(readers_writers_program(readers=2), 1).to_execution()
        q = OrderingQueries(exe)
        r0 = exe.process_events("reader0")
        r1 = exe.process_events("reader1")
        # the two readers' critical sections can happen in either order
        assert q.chb(r0[-1], r1[0]) and q.chb(r1[-1], r0[0])

    def test_axioms(self):
        exe = run_program(readers_writers_program(), 3).to_execution()
        assert validate_execution(exe) == []


class TestReusableBarrier:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_phases_complete(self, seed):
        trace = run_program(reusable_barrier_program(workers=2, phases=2), seed)
        for k in range(2):
            for ph in range(2):
                assert trace.final_shared[f"out{k}_{ph}"] == ph

    def test_phase_ordering_enforced(self):
        exe = run_program(reusable_barrier_program(workers=2, phases=2), 2).to_execution()
        q = OrderingQueries(exe)
        posts = {
            e.obj: e.eid
            for e in exe.events
            if e.kind is EventKind.POST and e.obj.startswith("go")
        }
        # phase-0 release must complete before the phase-1 release in
        # every feasible execution (workers must re-arrive in between)
        assert q.mcb(posts["go0"], posts["go1"])

    def test_clear_events_present(self):
        exe = run_program(reusable_barrier_program(workers=2, phases=2), 0).to_execution()
        clears = [e for e in exe.events if e.kind is EventKind.CLEAR]
        assert len(clears) == 4  # two workers x two clears at phase 0... per phase

    def test_outputs_after_own_phase_release(self):
        exe = run_program(reusable_barrier_program(workers=2, phases=2), 4).to_execution()
        q = OrderingQueries(exe)
        go0 = [e.eid for e in exe.events if e.kind is EventKind.POST and e.obj == "go0"][0]
        outs0 = [
            e.eid for e in exe.events
            if any(v.endswith("_0") for v in e.writes)
        ]
        assert outs0
        for out in outs0:
            assert q.mhb(go0, out)


class TestWorkQueue:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_items_consumed(self, seed):
        trace = run_program(work_queue_program(items=3, workers=2), seed)
        takes = [s for s in trace.steps if s.kind is EventKind.SEM_P]
        assert len(takes) == 3

    def test_queue_writes_race_with_reads(self):
        """The shared `queue` cell is deliberately racy between the
        master's later publishes and workers' reads -- the feasible
        detector finds it, demonstrating the paper's corollary on a
        realistic pattern."""
        exe = run_program(
            work_queue_program(items=2, workers=2),
            PriorityScheduler(["main", "master", "worker0", "worker1"]),
        ).to_execution()
        report = RaceDetector(exe).feasible_races()
        assert report.races  # publish/consume races exist

    def test_work_conservation_ordering(self):
        exe = run_program(work_queue_program(items=2, workers=1), 0).to_execution()
        q = OrderingQueries(exe)
        vs = [e.eid for e in exe.events if e.kind is EventKind.SEM_V]
        ps = [e.eid for e in exe.events if e.kind is EventKind.SEM_P]
        # the last P needs both signals
        assert all(q.mcb(v, ps[-1]) for v in vs)
