"""Whole-relation computation: :class:`OrderingAnalyzer`.

Computes any of Table 1's six relations as a
:class:`~repro.util.relations.BinaryRelation` over the full event set,
reusing one :class:`~repro.core.queries.OrderingQueries` cache so that
the ``O(|E|^2)`` pair queries share their underlying searches.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Tuple

from repro.budget import Budget
from repro.core.queries import OrderingQueries
from repro.model.execution import ProgramExecution
from repro.util.relations import BinaryRelation


class RelationName(enum.Enum):
    """The six relations of Table 1."""

    MHB = "must-have-happened-before"
    CHB = "could-have-happened-before"
    MCW = "must-have-been-concurrent-with"
    CCW = "could-have-been-concurrent-with"
    MOW = "must-have-been-ordered-with"
    COW = "could-have-been-ordered-with"

    @property
    def is_must_have(self) -> bool:
        return self in (RelationName.MHB, RelationName.MCW, RelationName.MOW)

    @property
    def is_could_have(self) -> bool:
        return not self.is_must_have

    @property
    def is_symmetric(self) -> bool:
        """CW/OW relations are symmetric by definition; HB is not."""
        return self not in (RelationName.MHB, RelationName.CHB)


ALL_RELATIONS: Tuple[RelationName, ...] = tuple(RelationName)


class OrderingAnalyzer:
    """Computes full ordering relations for one execution.

    Example
    -------
    >>> from repro.model import ExecutionBuilder
    >>> b = ExecutionBuilder()
    >>> p1, p2 = b.process("p1"), b.process("p2")
    >>> x = p1.sem_v("s"); y = p2.sem_p("s")
    >>> analyzer = OrderingAnalyzer(b.build())
    >>> analyzer.relation(RelationName.MHB)(x, y)
    True
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
        por: str = "sleep",
    ) -> None:
        self.exe = exe
        self.queries = OrderingQueries(
            exe,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
            max_states=max_states,
            budget=budget,
            por=por,
        )
        self._cache: Dict[RelationName, BinaryRelation] = {}

    # ------------------------------------------------------------------
    def pair(self, name: RelationName, a: int, b: int) -> bool:
        q = self.queries
        return {
            RelationName.MHB: q.mhb,
            RelationName.CHB: q.chb,
            RelationName.MCW: q.mcw,
            RelationName.CCW: q.ccw,
            RelationName.MOW: q.mow,
            RelationName.COW: q.cow,
        }[name](a, b)

    def relation(self, name: RelationName, *, events: Optional[Iterable[int]] = None) -> BinaryRelation:
        """The named relation over all distinct event pairs.

        The diagonal is excluded (the paper's relations are read over
        distinct events; self-pairs have degenerate truth values noted
        in :mod:`repro.core.queries`).
        """
        if events is None and name in self._cache:
            return self._cache[name]
        universe = list(self.exe.eids) if events is None else list(events)
        pairs = [
            (a, b)
            for a in universe
            for b in universe
            if a != b and self.pair(name, a, b)
        ]
        rel = BinaryRelation(universe, pairs)
        if events is None:
            self._cache[name] = rel
        return rel

    def all_relations(self) -> Dict[RelationName, BinaryRelation]:
        return {name: self.relation(name) for name in ALL_RELATIONS}

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Pair counts per relation -- the benchmark harness's row format."""
        return {name.name: len(self.relation(name)) for name in ALL_RELATIONS}

    def mhb_dag(self):
        """The must-have-happened-before order as a transitively reduced
        DAG (:class:`~repro.util.graphs.Digraph`) -- the minimal edge set
        whose closure is MHB, convenient for rendering and for reading
        the "skeleton" of guaranteed orderings."""
        from repro.util.graphs import Digraph, transitive_reduction

        rel = self.relation(RelationName.MHB)
        g = Digraph(range(len(self.exe)), rel.pairs)
        return transitive_reduction(g)

    def matrix(self, name: RelationName) -> str:
        """ASCII adjacency matrix, handy in the examples."""
        n = len(self.exe)
        rel = self.relation(name)
        header = "    " + " ".join(f"{j:>3}" for j in range(n))
        rows = [header]
        for i in range(n):
            cells = " ".join("  X" if (i, j) in rel else "  ." for j in range(n))
            rows.append(f"{i:>3} {cells}")
        return "\n".join(rows)
