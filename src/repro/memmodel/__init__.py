"""Pluggable memory models: the consistency axis of feasibility.

The paper defines its ordering relations over executions of
*sequentially consistent* processors: within one process, every event
completes before its program-order successor begins.  Relaxed
architectures weaken exactly that guarantee.  This package states the
weakening in one place -- a :class:`MemoryModel` names which
same-process event pairs must stay interval-ordered (``end(a) <
begin(b)``) -- and every other layer (the exact engine, the structural
reach, witness replay, the axioms) derives its program-order
constraints from it instead of assuming adjacency.

Two models ship:

``SC``
    Sequential consistency: every program-order pair is ordered.  All
    pre-existing behavior is byte-identical under SC.

``TSO``
    Total store order (the x86 model, after Nataf & Moses, "Time,
    Fences and the Ordering of Events in TSO"): each processor owns a
    FIFO store buffer, so a *store* may still be draining while a
    later *load* of a different variable executes -- the one
    relaxation TSO permits (W -> R).  In interval terms: a write-only
    computation event need not complete before a later read-only
    computation event of the same process begins, unless the two touch
    a common variable (store-to-load forwarding keeps same-variable
    pairs ordered) or a ``fence`` stands between them (a fence is
    ordered with everything, so transitivity restores the edge).
    Store-store, load-load and load-store order are preserved, as is
    every pair involving synchronization (sync operations act as
    implicit fences, matching locked instructions on real hardware).

The derived constraint set is closed under interval transitivity:
``end(a) < begin(b)`` and ``end(b) < begin(c)`` imply ``end(a) <
begin(c)``, so :func:`po_constraint_pairs` keeps only the pairs not
already implied through an intermediate ordered event.  Under SC that
reduction is exactly the adjacent-predecessor chain the engine always
used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.model.events import Event, EventKind


@dataclass(frozen=True)
class MemoryModel:
    """One consistency model, as an interval-ordering predicate.

    ``name`` is the stable identifier used on the wire (serialization,
    CLI, daemon).  :meth:`orders` answers, for two events of the same
    process with ``first`` earlier in program order: must ``first``
    complete before ``second`` begins in every legal schedule?
    """

    name: str

    def orders(self, first: Event, second: Event) -> bool:
        raise NotImplementedError


class _SequentialConsistency(MemoryModel):
    def orders(self, first: Event, second: Event) -> bool:
        return True


class _TotalStoreOrder(MemoryModel):
    def orders(self, first: Event, second: Event) -> bool:
        # the only TSO relaxation: a buffered store (write-only
        # computation) drains while a later load (read-only
        # computation) of a *different* variable runs
        if first.kind is not EventKind.COMPUTATION:
            return True
        if second.kind is not EventKind.COMPUTATION:
            return True
        if not first.accesses or not second.accesses:
            return True  # pure skips carry no memory order to relax
        if any(not a.is_write for a in first.accesses):
            return True  # a load in `first` keeps R->R / R->W order
        if any(a.is_write for a in second.accesses):
            return True  # a store in `second` keeps W->W order
        if first.variables & second.variables:
            return True  # store-to-load forwarding: same variable stays put
        return False


SC = _SequentialConsistency("sc")
TSO = _TotalStoreOrder("tso")

#: every model this build understands, by wire name
MEMORY_MODELS: Dict[str, MemoryModel] = {SC.name: SC, TSO.name: TSO}

#: the default everywhere a model is not named (the paper's setting)
DEFAULT_MEMORY_MODEL = SC.name


def resolve_memory_model(name: str) -> MemoryModel:
    """The model registered under ``name`` (case-insensitive), or a
    one-line ``ValueError`` naming the known models -- the CLI maps
    that to exit status 2."""
    model = MEMORY_MODELS.get(str(name).lower())
    if model is None:
        known = ", ".join(sorted(MEMORY_MODELS))
        raise ValueError(
            f"unknown memory model {name!r} (known models: {known})"
        )
    return model


def po_constraint_pairs(
    events: Sequence[Event], model: MemoryModel
) -> List[Tuple[int, int]]:
    """The program-order interval constraints one process contributes.

    ``events`` is one process's events in program order.  Returns
    ``(i, j)`` position pairs (i < j) such that ``end(events[i]) <
    begin(events[j])`` must hold, pruned of pairs already implied by
    interval transitivity through an intermediate ordered event.
    Under SC this is exactly the adjacent chain ``(i, i+1)``.
    """
    n = len(events)
    if n < 2:
        return []
    ordered = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            ordered[i][j] = model.orders(events[i], events[j])
    pairs: List[Tuple[int, int]] = []
    for j in range(1, n):
        for i in range(j - 1, -1, -1):
            if not ordered[i][j]:
                continue
            if any(
                ordered[i][k] and ordered[k][j] for k in range(i + 1, j)
            ):
                continue  # implied transitively
            pairs.append((i, j))
    return pairs


__all__ = [
    "DEFAULT_MEMORY_MODEL",
    "MEMORY_MODELS",
    "MemoryModel",
    "SC",
    "TSO",
    "po_constraint_pairs",
    "resolve_memory_model",
]
