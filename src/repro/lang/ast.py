"""Abstract syntax of the concurrent mini-language.

Expressions evaluate over integers (booleans are 0/1).  Shared-variable
reads are tracked during evaluation so that every executed statement
instance knows exactly which shared locations it touched -- the raw
material for the shared-data dependence relation ``D``.

The language is deliberately the paper's program class and nothing
more: no pointers, no arrays, no procedure calls.  ``while`` is
included (with an iteration bound in the interpreter as a runaway
guard) because realistic workloads -- producer/consumer loops, barrier
phases -- need it, even though the paper's reductions are loop-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expressions."""

    def evaluate(self, shared: Dict[str, int], local: Dict[str, int], reads: Set[str]) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def evaluate(self, shared, local, reads) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Shared(Expr):
    """A read of a shared variable (recorded in ``reads``)."""

    name: str

    def evaluate(self, shared, local, reads) -> int:
        reads.add(self.name)
        return shared.get(self.name, 0)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Local(Expr):
    """A read of a process-local variable (no shared access)."""

    name: str

    def evaluate(self, shared, local, reads) -> int:
        return local.get(self.name, 0)

    def __repr__(self) -> str:
        return f"${self.name}"


_BINOPS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b != 0 else 0,
    "%": lambda a, b: a % b if b != 0 else 0,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BINOPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def evaluate(self, shared, local, reads) -> int:
        return _BINOPS[self.op](
            self.left.evaluate(shared, local, reads),
            self.right.evaluate(shared, local, reads),
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in ("-", "not"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def evaluate(self, shared, local, reads) -> int:
        v = self.operand.evaluate(shared, local, reads)
        return -v if self.op == "-" else int(not v)

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target := expr`` where ``target`` is a shared variable."""

    target: str
    expr: Expr
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.target} := {self.expr!r}"


@dataclass(frozen=True)
class LocalAssign(Stmt):
    """``$target := expr`` -- a process-local assignment."""

    target: str
    expr: Expr
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"${self.target} := {self.expr!r}"


@dataclass(frozen=True)
class Skip(Stmt):
    """No-op; carries an optional label (the paper's ``a: skip``)."""

    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.label}: skip" if self.label else "skip"


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...] = ()
    label: Optional[str] = None

    def __init__(self, cond: Expr, then: Sequence[Stmt], orelse: Sequence[Stmt] = (),
                 label: Optional[str] = None):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "then", tuple(then))
        object.__setattr__(self, "orelse", tuple(orelse))
        object.__setattr__(self, "label", label)

    def __repr__(self) -> str:
        return f"if {self.cond!r} then [...{len(self.then)}] else [...{len(self.orelse)}]"


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Tuple[Stmt, ...]
    label: Optional[str] = None

    def __init__(self, cond: Expr, body: Sequence[Stmt], label: Optional[str] = None):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "label", label)

    def __repr__(self) -> str:
        return f"while {self.cond!r} do [...{len(self.body)}]"


@dataclass(frozen=True)
class Fence(Stmt):
    """``fence`` -- a memory barrier ordering all earlier accesses of
    this process before all later ones.

    Redundant under sequential consistency; under TSO it forbids the
    one reordering that model allows (a buffered write passing a later
    read of a different variable), so inserting one between a write and
    a read restores SC behaviour for that pair.
    """

    label: Optional[str] = None

    def __repr__(self) -> str:
        return "fence"


@dataclass(frozen=True)
class SemP(Stmt):
    sem: str
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"P({self.sem})"


@dataclass(frozen=True)
class SemV(Stmt):
    sem: str
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"V({self.sem})"


@dataclass(frozen=True)
class Post(Stmt):
    var: str
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"Post({self.var})"


@dataclass(frozen=True)
class Wait(Stmt):
    var: str
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"Wait({self.var})"


@dataclass(frozen=True)
class Clear(Stmt):
    var: str
    label: Optional[str] = None

    def __repr__(self) -> str:
        return f"Clear({self.var})"


@dataclass(frozen=True)
class ProcessDef:
    """A named process body; forked processes are defined inline."""

    name: str
    body: Tuple[Stmt, ...]

    def __init__(self, name: str, body: Sequence[Stmt]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", tuple(body))

    def __repr__(self) -> str:
        return f"ProcessDef({self.name!r}, {len(self.body)} stmts)"


@dataclass(frozen=True)
class Fork(Stmt):
    """Create the listed processes; pair with a later :class:`Join`."""

    children: Tuple[ProcessDef, ...]
    label: Optional[str] = None

    def __init__(self, children: Sequence[ProcessDef], label: Optional[str] = None):
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "label", label)

    def __repr__(self) -> str:
        return f"fork[{', '.join(c.name for c in self.children)}]"


@dataclass(frozen=True)
class Join(Stmt):
    """Wait for the processes created by this process's most recent
    unmatched fork (forks/joins nest like brackets)."""

    label: Optional[str] = None

    def __repr__(self) -> str:
        return "join"


@dataclass
class Program:
    """A whole program: root processes plus initial state declarations."""

    processes: List[ProcessDef]
    sem_initial: Dict[str, int] = field(default_factory=dict)
    var_initial: Set[str] = field(default_factory=set)
    shared_initial: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"Program({[p.name for p in self.processes]}, "
            f"sems={self.sem_initial}, shared={self.shared_initial})"
        )
