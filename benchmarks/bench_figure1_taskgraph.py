"""Experiment F1 -- Figure 1: the EGP task graph misses a dependence-
forced ordering.

Regenerates the paper's example program and task graph and asserts the
exact discrepancy the paper describes:

* the task graph contains no path between the two Post nodes;
* the exact engine proves ``post_left MHB post_right`` (through the
  ``X := 1 -> if X = 1`` shared-data dependence);
* with ``D`` ignored (the EGP feasibility notion), the exact engine
  agrees with the task graph -- so the miss is attributable precisely
  to ignoring shared-data dependences.

The timed body is task-graph construction plus the exact MHB query.
"""

from conftest import report, table

from repro.approx.taskgraph import TaskGraph
from repro.core.queries import OrderingQueries
from repro.workloads.programs import figure1_execution


def analyze():
    exe = figure1_execution()
    pl = exe.by_label("post_left").eid
    pr = exe.by_label("post_right").eid
    tg = TaskGraph(exe)
    q_with = OrderingQueries(exe)
    q_without = OrderingQueries(exe, include_dependences=False)
    return {
        "exe": exe,
        "pl": pl,
        "pr": pr,
        "egp_path": tg.guaranteed_ordering(pl, pr),
        "egp_path_rev": tg.guaranteed_ordering(pr, pl),
        "exact_mhb": q_with.mhb(pl, pr),
        "exact_mhb_ignoring_d": q_without.mhb(pl, pr),
        "overlap_ignoring_d": q_without.ccw(pl, pr),
        "graph": tg,
    }


def test_figure1_discrepancy(benchmark):
    r = benchmark(analyze)

    # the paper's claims, verbatim
    assert r["egp_path"] is False and r["egp_path_rev"] is False
    assert r["exact_mhb"] is True
    assert r["exact_mhb_ignoring_d"] is False
    assert r["overlap_ignoring_d"] is True

    rows = [
        ["EGP task graph: path post_left -> post_right", r["egp_path"]],
        ["EGP task graph: path post_right -> post_left", r["egp_path_rev"]],
        ["exact MHB(post_left, post_right), with D", r["exact_mhb"]],
        ["exact MHB(post_left, post_right), D ignored", r["exact_mhb_ignoring_d"]],
        ["posts can overlap when D ignored", r["overlap_ignoring_d"]],
    ]
    lines = table(["question", "answer"], rows)
    lines.append("")
    lines.append("task graph edges:")
    lines.extend("  " + l for l in r["graph"].describe().splitlines()[1:])
    lines.append("")
    lines.append("reproduces Figure 1: the graph shows the Posts unordered, yet")
    lines.append("the shared-data dependence X:=1 -> if X=1 forces the ordering")
    report("figure1_taskgraph", lines)
