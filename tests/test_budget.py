"""Units for the resource-governance layer (repro.budget + engine)."""

import time

import pytest

from repro.budget import DEADLINE, STATES, Budget, Truth, Verdict
from repro.core.engine import (
    TERMINATED_COMPLETE,
    TERMINATED_DEADLINE,
    TERMINATED_STATES,
    SearchBudgetExceeded,
    SearchStats,
)
from repro.core.queries import OrderingQueries
from repro.reductions import semaphore_reduction
from repro.sat.cnf import CNF

UNSAT_FORMULA = CNF([(1, 1, 1), (-1, -1, -1)])


class TestTruth:
    def test_of_bool(self):
        assert Truth.of(True) is Truth.TRUE
        assert Truth.of(False) is Truth.FALSE

    def test_negate(self):
        assert Truth.TRUE.negate() is Truth.FALSE
        assert Truth.FALSE.negate() is Truth.TRUE
        assert Truth.UNKNOWN.negate() is Truth.UNKNOWN

    def test_is_known(self):
        assert Truth.TRUE.is_known and Truth.FALSE.is_known
        assert not Truth.UNKNOWN.is_known

    def test_str(self):
        assert str(Truth.UNKNOWN) == "UNKNOWN"


class TestBudget:
    def test_unlimited(self):
        assert Budget().unlimited()
        assert not Budget(max_states=10).unlimited()
        assert not Budget.of(timeout=10.0).unlimited()

    def test_of_builds_absolute_deadline(self):
        before = time.monotonic()
        b = Budget.of(timeout=100.0)
        assert b.deadline is not None
        assert b.deadline >= before + 99.0
        assert not b.expired()
        assert 0.0 < b.remaining_seconds() <= 100.0

    def test_expired(self):
        assert Budget.of(timeout=0.0).expired()
        assert not Budget(max_states=3).expired()
        assert Budget(max_states=3).remaining_seconds() is None

    def test_per_query_shares_deadline(self):
        parent = Budget.of(max_states=100, timeout=50.0)
        child = parent.per_query(max_states=7)
        assert child.max_states == 7
        assert child.deadline == parent.deadline

    def test_per_query_tightens_deadline(self):
        parent = Budget.of(timeout=1000.0)
        child = parent.per_query(timeout=0.5)
        assert child.deadline < parent.deadline
        # a tighter parent is never loosened by a longer per-query timeout
        tight = Budget.of(timeout=0.0)
        assert tight.per_query(timeout=1000.0).deadline == tight.deadline

    def test_describe(self):
        assert Budget().describe() == "unlimited"
        assert "max_states=5" in Budget(max_states=5).describe()
        assert "deadline" in Budget.of(timeout=5.0).describe()


class TestVerdict:
    def test_constructors_and_predicates(self):
        assert Verdict.true().is_true
        assert Verdict.false().is_false
        assert Verdict.unknown(resource=STATES).is_unknown
        assert Verdict.of_bool(True).truth is Truth.TRUE

    def test_negate_keeps_unknown(self):
        assert Verdict.true().negate().is_false
        assert Verdict.unknown().negate().is_unknown

    def test_to_bool_raises_on_unknown(self):
        assert Verdict.true().to_bool() is True
        with pytest.raises(ValueError):
            Verdict.unknown(resource=DEADLINE).to_bool()

    def test_truthiness_is_forbidden(self):
        with pytest.raises(TypeError):
            bool(Verdict.true())

    def test_describe(self):
        assert "UNKNOWN" in Verdict.unknown(resource=STATES).describe()
        assert "structural" in Verdict.true("structural").describe()


class TestEngineBudgets:
    def _queries(self, budget):
        red = semaphore_reduction(UNSAT_FORMULA)
        return red, OrderingQueries(red.execution, budget=budget)

    def test_states_exhaustion_records_termination(self):
        red, q = self._queries(Budget(max_states=5))
        with pytest.raises(SearchBudgetExceeded) as exc:
            q.mhb(red.a, red.b)
        assert exc.value.resource == STATES
        assert q.stats.termination == TERMINATED_STATES

    def test_expired_deadline_aborts_before_searching(self):
        red, q = self._queries(Budget.of(timeout=0.0))
        with pytest.raises(SearchBudgetExceeded) as exc:
            q.has_feasible_execution()
        assert exc.value.resource == DEADLINE
        assert q.stats.termination == TERMINATED_DEADLINE
        assert q.stats.states_visited == 0

    def test_deadline_checked_amortized_mid_search(self):
        # a deadline that expires during the search: make the clock
        # check fire on every state so the abort is prompt
        red = semaphore_reduction(UNSAT_FORMULA)
        budget = Budget(
            deadline=time.monotonic() + 0.005, check_interval=1
        )
        q = OrderingQueries(red.execution, budget=budget)
        with pytest.raises(SearchBudgetExceeded) as exc:
            while True:  # burn until the 5ms deadline lapses
                q._chb_cache.clear()
                q.chb(red.b, red.a)
        assert exc.value.resource == DEADLINE
        assert q.stats.termination == TERMINATED_DEADLINE

    def test_memo_cap_degrades_but_stays_exact(self):
        red = semaphore_reduction(UNSAT_FORMULA)
        capped = OrderingQueries(
            red.execution, budget=Budget(max_memo_entries=0)
        )
        exact = OrderingQueries(red.execution)
        assert capped.mhb(red.a, red.b) == exact.mhb(red.a, red.b) is True
        assert capped.stats.memo_suppressed > 0
        assert capped.stats.termination == TERMINATED_COMPLETE

    def test_completed_search_records_elapsed(self):
        red, q = self._queries(None)
        assert q.mhb(red.a, red.b) is True
        assert q.stats.termination == TERMINATED_COMPLETE
        assert q.stats.elapsed >= 0.0
        assert q.stats.found or q.stats.states_visited > 0

    def test_stats_merge_adopts_failure_termination(self):
        a = SearchStats()
        b = SearchStats(termination=TERMINATED_DEADLINE, memo_suppressed=3)
        a.merge(b)
        assert a.termination == TERMINATED_DEADLINE
        assert a.memo_suppressed == 3
