"""Parse/unparse round-trip tests (structural equality)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.parser import parse_expression, parse_program
from repro.lang.unparse import unparse_expr, unparse_program
from repro.workloads.programs import (
    barrier_program,
    data_dependent_branch_program,
    dining_philosophers_program,
    figure1_program,
    pipeline_program,
    producer_consumer_program,
)

# ----------------------------------------------------------------------
# strategies over random ASTs
# ----------------------------------------------------------------------
names = st.sampled_from(["x", "y", "flag", "count", "buf"])
sem_names = st.sampled_from(["s", "lock", "full"])
var_names = st.sampled_from(["ev", "go", "done"])
labels = st.one_of(st.none(), st.sampled_from(["a", "b", "mark"]))


def exprs(depth=2):
    base = st.one_of(
        st.integers(0, 99).map(A.Const),
        names.map(A.Shared),
        names.map(A.Local),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(A.UnOp, st.sampled_from(["-", "not"]), sub),
        st.builds(
            A.BinOp,
            st.sampled_from(["+", "-", "*", "//", "%", "==", "!=", "<", "<=", ">", ">=", "and", "or"]),
            sub,
            sub,
        ),
    )


def simple_stmts():
    return st.one_of(
        st.builds(A.Skip, label=labels),
        st.builds(A.Assign, names, exprs(), label=labels),
        st.builds(A.LocalAssign, names, exprs(), label=labels),
        st.builds(A.SemP, sem_names, label=labels),
        st.builds(A.SemV, sem_names, label=labels),
        st.builds(A.Post, var_names, label=labels),
        st.builds(A.Wait, var_names, label=labels),
        st.builds(A.Clear, var_names, label=labels),
    )


def stmts(depth=1):
    if depth == 0:
        return simple_stmts()
    sub = st.lists(stmts(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        simple_stmts(),
        st.builds(A.If, exprs(1), sub, st.one_of(st.just(()), sub)),
        st.builds(A.While, exprs(1), sub),
    )


def programs():
    body = st.lists(stmts(), min_size=1, max_size=4)
    proc_names = st.sampled_from(["main", "worker", "helper"])
    return st.builds(
        lambda bodies: A.Program(
            [A.ProcessDef(f"p{i}", b) for i, b in enumerate(bodies)]
        ),
        st.lists(body, min_size=1, max_size=3),
    )


class TestExpressionRoundTrip:
    @given(exprs())
    @settings(max_examples=150, deadline=None)
    def test_round_trip_structural(self, expr):
        assert parse_expression(unparse_expr(expr)) == expr

    @given(exprs())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_semantics(self, expr):
        shared = {"x": 3, "y": -1, "flag": 1, "count": 0, "buf": 7}
        local = dict(shared)
        reads: set = set()
        reparsed = parse_expression(unparse_expr(expr))
        assert expr.evaluate(shared, local, set()) == reparsed.evaluate(
            shared, local, reads
        )

    def test_precedence_minimal_parens(self):
        e = A.BinOp("+", A.Const(1), A.BinOp("*", A.Const(2), A.Const(3)))
        assert unparse_expr(e) == "1 + 2 * 3"
        e2 = A.BinOp("*", A.BinOp("+", A.Const(1), A.Const(2)), A.Const(3))
        assert unparse_expr(e2) == "(1 + 2) * 3"

    def test_left_associativity_preserved(self):
        # (1 - 2) - 3 prints without parens; 1 - (2 - 3) needs them
        left = A.BinOp("-", A.BinOp("-", A.Const(1), A.Const(2)), A.Const(3))
        right = A.BinOp("-", A.Const(1), A.BinOp("-", A.Const(2), A.Const(3)))
        assert parse_expression(unparse_expr(left)) == left
        assert parse_expression(unparse_expr(right)) == right
        assert unparse_expr(left) != unparse_expr(right)


class TestProgramRoundTrip:
    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_random_programs(self, program):
        again = parse_program(unparse_program(program))
        assert again.processes == program.processes
        assert again.shared_initial == program.shared_initial
        assert again.sem_initial == program.sem_initial
        assert again.var_initial == program.var_initial

    def test_canned_workloads_round_trip(self):
        for program in (
            figure1_program(),
            producer_consumer_program(2),
            barrier_program(2),
            dining_philosophers_program(3),
            data_dependent_branch_program(),
            pipeline_program(3),
        ):
            again = parse_program(unparse_program(program))
            assert again.processes == program.processes
            assert again.sem_initial == program.sem_initial

    def test_declarations_emitted(self):
        program = A.Program(
            [A.ProcessDef("p", [A.Skip()])],
            sem_initial={"s": 2},
            var_initial={"go"},
            shared_initial={"x": 5},
        )
        text = unparse_program(program)
        assert "shared x = 5" in text
        assert "sem s = 2" in text
        assert "event go posted" in text

    def test_fork_join_nested(self):
        inner = A.ProcessDef("c", [A.Skip(label="inner")])
        program = A.Program(
            [A.ProcessDef("main", [A.Fork([inner]), A.Join()])]
        )
        again = parse_program(unparse_program(program))
        assert again.processes == program.processes
