"""Cross-model theorem validation and search-budget safety."""

import pytest

from repro.core.eager import EagerOrderingQueries
from repro.core.engine import SearchBudgetExceeded
from repro.core.queries import OrderingQueries
from repro.reductions import event_reduction, semaphore_reduction
from repro.sat.cnf import CNF
from repro.sat.dpll import solve

SAT_FORMULA = CNF([(1, 2, 3), (-1, 2, 3), (1, -2, 3)])
UNSAT_FORMULA = CNF([(1, 1, 1), (-1, -1, -1)])


class TestTheoremsUnderEagerModel:
    """DESIGN.md 4.2b: the co-NP-hard equivalence (a MHB b iff UNSAT)
    holds under both timing models.  The NP-hard existential changes
    face under eager begins: marker ``a`` is the first event of a root
    process, so it begins at time zero and *nothing* can eagerly
    happen-before it -- ``b CHB a`` is identically false.  The
    satisfiability witness becomes the overlap ``a CCW b`` instead
    (checked here), which is exactly the MHB complement."""

    @pytest.mark.parametrize("build", [semaphore_reduction, event_reduction])
    def test_sat_formula(self, build):
        red = build(SAT_FORMULA)
        q = EagerOrderingQueries(red.execution)
        assert not q.mhb(red.a, red.b)
        assert q.ccw(red.a, red.b)  # the eager-model SAT witness
        assert not q.chb(red.b, red.a)  # degenerate: a begins at time 0

    @pytest.mark.parametrize("build", [semaphore_reduction, event_reduction])
    def test_unsat_formula(self, build):
        red = build(UNSAT_FORMULA)
        q = EagerOrderingQueries(red.execution)
        assert q.mhb(red.a, red.b)
        assert not q.ccw(red.a, red.b)
        assert not q.chb(red.b, red.a)

    @pytest.mark.parametrize("build", [semaphore_reduction])
    def test_models_agree_on_reduction_answers(self, build):
        for f in (SAT_FORMULA, UNSAT_FORMULA):
            expect_sat = solve(f) is not None
            red = build(f)
            lazy = OrderingQueries(red.execution)
            eager = EagerOrderingQueries(red.execution)
            assert lazy.mhb(red.a, red.b) == eager.mhb(red.a, red.b) == (not expect_sat)


class TestBudgetSafety:
    """A SearchBudgetExceeded abort must propagate -- never be cached
    or silently converted into a (wrong) boolean answer."""

    def _tight_queries(self):
        red = semaphore_reduction(UNSAT_FORMULA)
        return red, OrderingQueries(red.execution, max_states=5)

    def test_exception_propagates(self):
        red, q = self._tight_queries()
        with pytest.raises(SearchBudgetExceeded):
            q.mhb(red.a, red.b)

    def test_no_poisoned_cache_after_abort(self):
        red, q = self._tight_queries()
        with pytest.raises(SearchBudgetExceeded):
            q.mhb(red.a, red.b)
        # raising the budget on the SAME query object must now succeed
        # with the correct answer (nothing wrong was cached)
        q.max_states = None
        assert q.mhb(red.a, red.b) is True

    def test_feasibility_not_poisoned(self):
        red, q = self._tight_queries()
        with pytest.raises(SearchBudgetExceeded):
            q.has_feasible_execution()
        q.max_states = None
        assert q.has_feasible_execution() is True

    def test_eager_budget_propagates(self):
        red = semaphore_reduction(UNSAT_FORMULA)
        q = EagerOrderingQueries(red.execution, max_states=5)
        with pytest.raises(SearchBudgetExceeded):
            q.mhb(red.a, red.b)

    def test_static_shortcuts_bypass_budget(self):
        """Pairs decided structurally never touch the search, so they
        work even under a hopeless budget."""
        from repro.model.builder import ExecutionBuilder

        b = ExecutionBuilder()
        p = b.process("p")
        x, y = p.skip(), p.skip()
        b.process("q").skip()
        q = OrderingQueries(b.build(), max_states=10_000)
        assert q.statically_ordered(x, y)
        assert q.chb(x, y)
