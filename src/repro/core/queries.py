"""The six ordering relations of Table 1 as pairwise queries.

=================  ==============================================  =======================
relation           definition (over feasible executions ``F``)     decision procedure
=================  ==============================================  =======================
``a CHB b``        exists P' in F with ``a ->T' b``                serial search, gate
                                                                   ``end(a) < begin(b)``
``a CCW b``        exists P' in F with ``a || b``                  interval search on
                                                                   ``{a, b}`` with mutual
                                                                   overlap gates
``a COW b``        exists P' in F with ``not (a || b)``            ``CHB(a,b) or CHB(b,a)``
``a MHB b``        for all P' in F, ``a ->T' b``                   ``not CHB(b,a) and
                                                                   not CCW(a,b)``
``a MCW b``        for all P' in F, ``a || b``                     ``not COW(a,b)``
``a MOW b``        for all P' in F, ``not (a || b)``               ``not CCW(a,b)``
=================  ==============================================  =======================

The duality identities on the right follow directly from the paper's
definitions because ``not (a ->T b)`` decomposes into ``b ->T a`` or
``a || b`` (Section 2's footnote notation); they are property-tested
against brute-force enumeration in ``tests/test_core_enumeration.py``.

Empty-``F`` semantics: if the execution cannot complete at all (a
hand-built deadlocking event set), universally quantified relations
hold vacuously and existentials are false.  Real traces always have
``F`` non-empty (the observed schedule is a member).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.budget import Budget, Truth, Verdict
from repro.core.engine import (
    FeasibilityEngine,
    Point,
    SearchBudgetExceeded,
    SearchStats,
    begin_point,
    end_point,
)
from repro.core.witness import Witness
from repro.model.execution import ProgramExecution
from repro.util.graphs import topological_sort


class OrderingQueries:
    """Pairwise exact ordering queries over one execution.

    Results of the two primitive existential searches (CHB and CCW) are
    cached per pair; the other four relations are derived algebraically
    so each pair costs at most three searches.

    Parameters mirror :class:`~repro.core.engine.FeasibilityEngine`;
    ``max_states`` bounds every individual search (raising
    :class:`~repro.core.engine.SearchBudgetExceeded` when exhausted),
    and ``budget`` adds wall-clock/memo limits shared by every search
    this object runs.

    Two API flavors coexist:

    * the boolean methods (``mhb``/``chb``/...) are exact and *raise*
      on budget exhaustion -- nothing wrong is ever cached, so retrying
      with a larger budget on the same object works;
    * the ``*_verdict`` methods never raise: they return a three-valued
      :class:`~repro.budget.Verdict`, degrading to the sound polynomial
      bounds (structural reachability, the observed schedule as a known
      member of ``F``) before conceding ``UNKNOWN``.
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.exe = exe
        self.engine = FeasibilityEngine(
            exe,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
        )
        self.max_states = max_states
        self.budget = budget
        self.stats = SearchStats()
        self._chb_cache: Dict[Tuple[int, int], Optional[Witness]] = {}
        self._ccw_cache: Dict[Tuple[int, int], Optional[Witness]] = {}
        # two strengths of structural reachability (see
        # ProgramExecution.static_order_graph's edge-strength caveat):
        # completion order (join edges in) powers the CHB/CCB shortcuts,
        # interval order (join edges out) the overlap-impossible shortcut
        self._static_reach = self._compute_reach(include_dependences, join_edges=True)
        self._interval_reach = self._compute_reach(include_dependences, join_edges=False)
        self._base: Optional[Witness] = None
        self._base_computed = False

    # ------------------------------------------------------------------
    def _compute_reach(self, include_dependences: bool, *, join_edges: bool):
        g = self.exe.static_order_graph(
            include_dependences=include_dependences, join_edges=join_edges
        )
        order = topological_sort(g)
        reach = {}
        for n in reversed(order):
            mask = 0
            for s in g.successors(n):
                mask |= reach[s] | (1 << s)
            reach[n] = mask
        return reach

    def statically_ordered(self, a: int, b: int) -> bool:
        """``a`` completes before ``b`` by structure alone (program
        order, fork/join, dependences) in *every* schedule.

        Implies ``a`` can happen-before ``b`` in any serial schedule
        and that ``b`` can never happen-before ``a`` -- but NOT that
        the two cannot overlap (a join overlaps children it awaits);
        use :meth:`statically_interval_ordered` for overlap reasoning.
        """
        return bool((self._static_reach[a] >> b) & 1)

    def statically_interval_ordered(self, a: int, b: int) -> bool:
        """``end(a) < begin(b)`` in every schedule, by structure alone
        (program order, fork, dependences -- join edges excluded)."""
        return bool((self._interval_reach[a] >> b) & 1)

    # ------------------------------------------------------------------
    def feasible_witness(self) -> Optional[Witness]:
        """Any member of ``F``, or None when the event set cannot complete."""
        if not self._base_computed:
            pts = self.engine.search(
                max_states=self.max_states, budget=self.budget, stats=self.stats
            )
            self._base = Witness(self.exe, pts) if pts is not None else None
            self._base_computed = True
        return self._base

    def has_feasible_execution(self) -> bool:
        return self.feasible_witness() is not None

    # ------------------------------------------------------------------
    # primitive existentials (with witnesses)
    # ------------------------------------------------------------------
    def chb_witness(self, a: int, b: int) -> Optional[Witness]:
        """A feasible schedule in which ``a`` completes before ``b``
        begins, or None if no such schedule exists."""
        if a == b:
            return None
        key = (a, b)
        if key in self._chb_cache:
            return self._chb_cache[key]
        result: Optional[Witness] = None
        if self.has_feasible_execution():
            if self.statically_ordered(b, a):
                result = None  # b always precedes a; a ->T b impossible
            elif self.statically_ordered(a, b):
                result = self.feasible_witness()  # every schedule qualifies
            else:
                pts = self.engine.search(
                    constraints=[(end_point(a), begin_point(b))],
                    max_states=self.max_states,
                    budget=self.budget,
                    stats=self.stats,
                )
                result = Witness(self.exe, pts) if pts is not None else None
        self._chb_cache[key] = result
        return result

    def ccw_witness(self, a: int, b: int) -> Optional[Witness]:
        """A feasible schedule in which ``a`` and ``b`` overlap."""
        if a > b:
            a, b = b, a
        key = (a, b)
        if key in self._ccw_cache:
            return self._ccw_cache[key]
        result: Optional[Witness] = None
        if self.has_feasible_execution():
            if a == b:
                result = self.feasible_witness()  # an event overlaps itself
            elif self.statically_interval_ordered(a, b) or self.statically_interval_ordered(b, a):
                result = None  # structurally serialized; overlap impossible
            else:
                pts = self.engine.search(
                    interval_events=(a, b),
                    constraints=[
                        (begin_point(a), end_point(b)),
                        (begin_point(b), end_point(a)),
                    ],
                    max_states=self.max_states,
                    budget=self.budget,
                    stats=self.stats,
                )
                result = Witness(self.exe, pts) if pts is not None else None
        self._ccw_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # the six relations
    # ------------------------------------------------------------------
    def chb(self, a: int, b: int) -> bool:
        """Could-have-happened-before."""
        return self.chb_witness(a, b) is not None

    def ccw(self, a: int, b: int) -> bool:
        """Could-have-been-concurrent-with."""
        return self.ccw_witness(a, b) is not None

    def cow(self, a: int, b: int) -> bool:
        """Could-have-been-ordered-with (some feasible execution ran
        them one after the other, in either order)."""
        if a == b:
            return False  # an event always overlaps itself
        return self.chb(a, b) or self.chb(b, a)

    def mhb(self, a: int, b: int) -> bool:
        """Must-have-happened-before: ``a ->T b`` in every feasible
        execution."""
        if a == b:
            return not self.has_feasible_execution()  # vacuous truth only
        return not self.chb(b, a) and not self.ccw(a, b)

    def mcw(self, a: int, b: int) -> bool:
        """Must-have-been-concurrent-with."""
        if a == b:
            return True  # a || a holds in every execution (vacuously if F empty)
        return not self.cow(a, b)

    def mow(self, a: int, b: int) -> bool:
        """Must-have-been-ordered-with (never concurrent)."""
        return not self.ccw(a, b)

    # ------------------------------------------------------------------
    # auxiliary completion-order relations
    # ------------------------------------------------------------------
    # The paper's T orders *intervals*: ``a ->T b`` iff a completes
    # before b begins, so a blocked P overlaps the V that unblocks it
    # (the P has begun -- its first action, inspecting the count, has
    # happened).  The related-work algorithms (Helmbold/McDowell/Wang,
    # Emrath/Ghosh/Padua) reason about the order in which operations
    # *complete*.  These two queries decide that coarser ordering
    # exactly, giving the approximation benchmarks a like-for-like
    # exact baseline: every sound approximation must be a subset of
    # ``mcb``.

    def ccb(self, a: int, b: int) -> bool:
        """Could-complete-before: some feasible execution completes
        ``a`` before ``b``."""
        if a == b:
            return False
        if not self.has_feasible_execution():
            return False
        if self.statically_ordered(a, b):
            return True
        if self.statically_ordered(b, a):
            return False
        pts = self.engine.search(
            constraints=[(end_point(a), end_point(b))],
            max_states=self.max_states,
            budget=self.budget,
            stats=self.stats,
        )
        return pts is not None

    def mcb(self, a: int, b: int) -> bool:
        """Must-complete-before: ``a`` completes before ``b`` in every
        feasible execution.  Completions are totally ordered within a
        schedule, so ``mcb(a, b) == not ccb(b, a)`` (vacuously true
        when no feasible execution exists).  Note ``mhb`` implies
        ``mcb`` but not conversely."""
        if a == b:
            return not self.has_feasible_execution()
        return not self.ccb(b, a)

    # ------------------------------------------------------------------
    # explanation helpers
    # ------------------------------------------------------------------
    def why_not_mhb(self, a: int, b: int) -> Optional[Witness]:
        """A counterexample schedule when ``a MHB b`` fails: either ``b``
        precedes ``a`` or they overlap.  None when ``a MHB b`` holds."""
        w = self.chb_witness(b, a)
        if w is not None:
            return w
        return self.ccw_witness(a, b)

    def relation_values(self, a: int, b: int) -> Dict[str, bool]:
        """All six relation values for one pair (used by examples)."""
        return {
            "MHB": self.mhb(a, b),
            "CHB": self.chb(a, b),
            "MCW": self.mcw(a, b),
            "CCW": self.ccw(a, b),
            "MOW": self.mow(a, b),
            "COW": self.cow(a, b),
        }

    # ------------------------------------------------------------------
    # three-valued (budget-tolerant) verdicts
    # ------------------------------------------------------------------
    # On budget exhaustion these degrade to the sound polynomial bounds
    # instead of raising: structural reachability refutes/confirms what
    # it can, and the observed schedule -- a known member of F -- is a
    # free existential witness (it serializes, so position order in it
    # realizes both ``a ->T b`` and completion order).  UNKNOWN is the
    # honest remainder, never a guess.

    def _observed_pos(self) -> Optional[Dict[int, int]]:
        sched = self.exe.observed_schedule
        if sched is None:
            return None
        return {eid: i for i, eid in enumerate(sched)}

    def _feasibility_truth(self) -> Truth:
        """Is ``F`` non-empty, degrading to the observed schedule."""
        try:
            return Truth.of(self.has_feasible_execution())
        except SearchBudgetExceeded:
            if self.exe.observed_schedule is not None:
                return Truth.TRUE  # the observed run is a member of F
            return Truth.UNKNOWN

    def chb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`chb` -- never raises."""
        try:
            w = self.chb_witness(a, b)
            return Verdict.of_bool(w is not None, witness=w, stats=self.stats)
        except SearchBudgetExceeded as exc:
            pos = self._observed_pos()
            if pos is not None and a != b and pos[a] < pos[b]:
                # the observed member, serialized, runs a to completion
                # before b begins: an existential witness for free
                return Verdict.true("observed", stats=self.stats)
            if self.statically_ordered(b, a):
                # b completes before a in every schedule of any member,
                # so end(a) < begin(b) can never hold (vacuous if F empty)
                return Verdict.false("structural", stats=self.stats)
            return Verdict.unknown(resource=exc.resource, stats=self.stats)

    def ccw_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`ccw` -- never raises."""
        try:
            w = self.ccw_witness(a, b)
            return Verdict.of_bool(w is not None, witness=w, stats=self.stats)
        except SearchBudgetExceeded as exc:
            if a != b and (
                self.statically_interval_ordered(a, b)
                or self.statically_interval_ordered(b, a)
            ):
                return Verdict.false("structural", stats=self.stats)
            if a == b and self.exe.observed_schedule is not None:
                return Verdict.true("observed", stats=self.stats)
            return Verdict.unknown(resource=exc.resource, stats=self.stats)

    def ccb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`ccb` -- never raises."""
        try:
            return Verdict.of_bool(self.ccb(a, b), stats=self.stats)
        except SearchBudgetExceeded as exc:
            pos = self._observed_pos()
            if a != b and pos is not None and pos[a] < pos[b]:
                return Verdict.true("observed", stats=self.stats)
            if self.statically_ordered(b, a):
                return Verdict.false("structural", stats=self.stats)
            return Verdict.unknown(resource=exc.resource, stats=self.stats)

    def cow_verdict(self, a: int, b: int) -> Verdict:
        if a == b:
            return Verdict.false("trivial")
        first = self.chb_verdict(a, b)
        if first.is_true:
            return first
        second = self.chb_verdict(b, a)
        if second.is_true:
            return second
        if first.is_false and second.is_false:
            return Verdict.false(first.provenance, stats=self.stats)
        resource = first.resource or second.resource
        return Verdict.unknown(resource=resource, stats=self.stats)

    def mhb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`mhb` -- never raises.

        Kleene conjunction of ``not chb(b, a)`` and ``not ccw(a, b)``:
        either conjunct failing refutes MHB even when the other blew
        its budget.
        """
        if a == b:
            feasible = self._feasibility_truth()
            if feasible.is_known:
                return Verdict.of_bool(feasible is Truth.FALSE, "trivial")
            return Verdict.unknown(stats=self.stats)
        rev = self.chb_verdict(b, a)
        if rev.is_true:
            return Verdict.false(rev.provenance, witness=rev.witness, stats=self.stats)
        overlap = self.ccw_verdict(a, b)
        if overlap.is_true:
            return Verdict.false(
                overlap.provenance, witness=overlap.witness, stats=self.stats
            )
        if rev.is_false and overlap.is_false:
            provenance = (
                "exact" if rev.provenance == overlap.provenance == "exact"
                else "structural"
            )
            return Verdict.true(provenance, stats=self.stats)
        resource = rev.resource or overlap.resource
        return Verdict.unknown(resource=resource, stats=self.stats)

    def mow_verdict(self, a: int, b: int) -> Verdict:
        return self.ccw_verdict(a, b).negate()

    def mcw_verdict(self, a: int, b: int) -> Verdict:
        if a == b:
            return Verdict.true("trivial")
        return self.cow_verdict(a, b).negate()

    def mcb_verdict(self, a: int, b: int) -> Verdict:
        """Three-valued :meth:`mcb` -- never raises."""
        if a == b:
            feasible = self._feasibility_truth()
            if feasible.is_known:
                return Verdict.of_bool(feasible is Truth.FALSE, "trivial")
            return Verdict.unknown(stats=self.stats)
        return self.ccb_verdict(b, a).negate()

    def relation_verdicts(self, a: int, b: int) -> Dict[str, Verdict]:
        """All six relations as verdicts (budget-tolerant counterpart
        of :meth:`relation_values`)."""
        return {
            "MHB": self.mhb_verdict(a, b),
            "CHB": self.chb_verdict(a, b),
            "MCW": self.mcw_verdict(a, b),
            "CCW": self.ccw_verdict(a, b),
            "MOW": self.mow_verdict(a, b),
            "COW": self.cow_verdict(a, b),
        }
