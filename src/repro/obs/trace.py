"""Structured trace records for long scans (spans and events).

Every interesting query here is NP-hard, so a real scan runs for
minutes to hours under budgets, worker pools and a tiered solver
portfolio -- and "where did the exponential time go" is a question the
final report alone cannot answer.  This module records it as it
happens, as a flat stream of JSON records:

* ``query`` spans -- one per primitive planner query, carrying the
  relation, the pair, the drop-set size, the per-tier escalation
  attempts (states/elapsed, answered or declined) and the final
  verdict.  The per-tier numbers are **exactly** the increments the
  :class:`~repro.solve.planner.PlannerReport` accumulates, so a trace
  re-aggregates into the same per-tier table the report prints
  (``repro trace summarize``);
* ``engine.tick`` events -- amortized progress of the exact search
  (states visited so far), so a stuck scan shows *which* search is
  burning states;
* ``pair`` spans -- one per classified conflicting pair;
* ``scan.start`` / ``scan.end`` -- scan-level bounds and tallies;
* ``worker.*`` events -- the supervised pool's lifecycle (spawn,
  ready, retry, crash, retire, plus ``dispatch``/``result`` bounds
  around every attempt -- the raw material of ``repro trace
  timeline``); supervised workers record their own ``query`` spans
  into a bounded in-memory sink and ship them home over the existing
  result channel, so a parallel scan's trace is as complete as a
  serial one's;
* ``checkpoint.write`` events -- one per journaled pair;
* ``profile`` -- the scan's merged
  :class:`~repro.obs.profile.SearchProfile` snapshot (choice-point
  attribution of engine states), emitted once before ``scan.end`` when
  the scan ran with profiling (``repro trace profile`` reads these);
* ``serve.*`` spans -- the ``repro serve`` daemon's request path,
  keyed by a **request ID** generated at ingress (or honored from the
  client's ``X-Repro-Request-Id`` header): ``serve.request`` bounds one
  whole HTTP request (endpoint, final status, total latency);
  ``serve.admission.wait``, ``serve.dispatch``, ``serve.store.read``,
  ``serve.store.write`` and ``serve.response`` break that latency into
  phases; ``serve.worker.eval`` is recorded *inside* the crash-isolated
  query worker and shipped home with the result (exactly as scan
  workers ship their ``query`` spans), so one request's spans tell the
  admission-vs-evaluation-vs-I/O story end to end (``repro trace
  serve-summary`` aggregates them);
* ``trace.drops`` -- bounded sinks never block or grow without limit;
  when they shed records they say how many.

All timestamps are :func:`time.monotonic` (the same clock budgets,
deadlines and tier tallies use), so spans, budget accounting and the
planner report are directly comparable.

The default sink is :data:`NULL_SINK`, a no-op whose ``enabled`` flag
lets every call site skip building records entirely -- untraced runs
pay nothing.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import faults
from repro.obs.profile import SearchProfile
from repro.solve.planner import PlannerReport

TRACE_FORMAT = "repro-trace"
# version 2 added the profile / worker.dispatch / worker.result kinds;
# version 3 added the daemon's serve.* request spans; older traces
# (which simply lack the newer kinds) are still readable
TRACE_VERSION = 3
SUPPORTED_TRACE_VERSIONS = (1, 2, 3)


class TraceError(ValueError):
    """A trace file or record violates the span schema."""


# ----------------------------------------------------------------------
# span schema: kind -> ((required field, type-tuple), ...)
# ----------------------------------------------------------------------
_NUM = (int, float)
SPAN_SCHEMA: Dict[str, Tuple[Tuple[str, tuple], ...]] = {
    "trace.start": (("format", (str,)), ("version", (int,))),
    "query": (
        ("relation", (str,)),
        ("decided", (bool,)),
        ("tiers", (list,)),
    ),
    "engine.tick": (("states", (int,)),),
    "pair": (("a", (int,)), ("b", (int,)), ("status", (str,))),
    "scan.start": (("pairs", (int,)), ("todo", (int,))),
    "scan.end": (
        ("done", (int,)),
        ("feasible", (int,)),
        ("infeasible", (int,)),
        ("unknown", (int,)),
        ("interrupted", (bool,)),
    ),
    "worker.spawn": (("worker", (int,)),),
    "worker.ready": (("worker", (int,)),),
    "worker.retire": (("worker", (int,)),),
    "worker.crash": (("worker", (int,)), ("resource", (str,))),
    "worker.retry": (("a", (int,)), ("b", (int,)), ("attempt", (int,))),
    "worker.dispatch": (("worker", (int,)), ("a", (int,)), ("b", (int,))),
    "worker.result": (("worker", (int,)), ("a", (int,)), ("b", (int,))),
    "checkpoint.write": (("a", (int,)), ("b", (int,))),
    "profile": (("profile", (dict,)),),
    "trace.drops": (("dropped", (int,)),),
    # -- the serving daemon's request path (trace v3) ------------------
    "serve.request": (
        ("request_id", (str,)),
        ("endpoint", (str,)),
        ("status", (int,)),
        ("elapsed", _NUM),
    ),
    "serve.admission.wait": (("request_id", (str,)), ("elapsed", _NUM)),
    "serve.dispatch": (("request_id", (str,)), ("elapsed", _NUM)),
    "serve.worker.eval": (("request_id", (str,)), ("elapsed", _NUM)),
    "serve.store.read": (("request_id", (str,)), ("elapsed", _NUM)),
    "serve.store.write": (("request_id", (str,)), ("elapsed", _NUM)),
    "serve.response": (("request_id", (str,)), ("elapsed", _NUM)),
}

#: serve phase span kinds, in the order a request passes through them
#: (``serve.worker.eval`` is nested inside ``serve.dispatch``)
SERVE_PHASE_KINDS = (
    "serve.admission.wait",
    "serve.store.read",
    "serve.dispatch",
    "serve.worker.eval",
    "serve.store.write",
    "serve.response",
)

_TIER_FIELDS = (
    ("tier", (str,)),
    ("states", (int,)),
    ("elapsed", _NUM),
    ("answered", (bool,)),
)


def validate_record(rec: Any) -> None:
    """Check one record against the span schema; raise :class:`TraceError`.

    Records may carry extra fields (``worker`` provenance, witnesses'
    pair ids, ...); only the schema-required ones are enforced.
    """
    if not isinstance(rec, dict):
        raise TraceError(f"trace record is not an object: {rec!r}")
    kind = rec.get("kind")
    if kind not in SPAN_SCHEMA:
        raise TraceError(f"unknown trace record kind {kind!r}")
    t = rec.get("t")
    if not isinstance(t, _NUM) or isinstance(t, bool):
        raise TraceError(f"{kind}: missing/non-numeric timestamp {t!r}")
    for name, types in SPAN_SCHEMA[kind]:
        value = rec.get(name)
        if not isinstance(value, types) or (
            bool not in types and isinstance(value, bool)
        ):
            raise TraceError(
                f"{kind}: field {name!r} is {value!r}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if kind == "query":
        for entry in rec["tiers"]:
            if not isinstance(entry, dict):
                raise TraceError(f"query: tier entry is not an object: {entry!r}")
            for name, types in _TIER_FIELDS:
                value = entry.get(name)
                if not isinstance(value, types) or (
                    bool not in types and isinstance(value, bool)
                ):
                    raise TraceError(
                        f"query: tier field {name!r} is {value!r}"
                    )


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TraceSink:
    """Destination for trace records.

    ``enabled`` is the cheap guard call sites check before *building*
    a record, so the untraced hot path never allocates.
    """

    enabled = True

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(TraceSink):
    """The default: drops everything, reports itself disabled."""

    enabled = False

    def emit(self, record: Dict[str, Any]) -> None:
        pass


#: the shared no-op sink -- untraced runs all point here
NULL_SINK = NullSink()


def _stamp(record: Dict[str, Any]) -> Dict[str, Any]:
    if "t" not in record:
        record["t"] = time.monotonic()
    return record


class RecordingSink(TraceSink):
    """Bounded in-memory sink.

    Used by supervised workers (records are shipped home over the
    result channel, so the buffer must not grow with search time) and
    by tests.  Past ``capacity`` records are *dropped, not blocked on*,
    and the drop count is appended as a final ``trace.drops`` record by
    :meth:`drain`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self.records: List[Dict[str, Any]] = []
        self.dropped = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(_stamp(record))

    def drain(self) -> List[Dict[str, Any]]:
        """The buffered records (plus a ``trace.drops`` accounting
        record when any were shed); resets the sink."""
        out = self.records
        if self.dropped:
            out = out + [
                _stamp({"kind": "trace.drops", "dropped": self.dropped})
            ]
        self.records = []
        self.dropped = 0
        return out


class JsonlTraceSink(TraceSink):
    """Records as JSON lines at ``path`` (the ``--trace FILE`` sink).

    * the first line is a ``trace.start`` header (format + version);
    * records are buffered and written every ``buffer_records`` emits,
      so tracing adds one syscall per batch, not per span;
    * ``max_records`` bounds the file: past it, records are dropped
      (counted, reported as a final ``trace.drops`` record on close);
    * ``fsync=True`` additionally fsyncs on every flush for traces
      that must survive the same power cut the checkpoint journal does.
    """

    def __init__(
        self,
        path: str,
        *,
        buffer_records: int = 64,
        max_records: Optional[int] = None,
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.buffer_records = max(1, buffer_records)
        self.max_records = max_records
        self.fsync = fsync
        self.emitted = 0
        self.dropped = 0
        self._buffer: List[str] = []
        self._fh = open(path, "w")
        self.emit(
            {
                "kind": "trace.start",
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
            }
        )

    def emit(self, record: Dict[str, Any]) -> None:
        faults.fire("obs.trace.write")
        if self._fh.closed:
            self.dropped += 1
            return
        if self.max_records is not None and self.emitted >= self.max_records:
            self.dropped += 1
            return
        self.emitted += 1
        self._buffer.append(
            json.dumps(_stamp(record), sort_keys=True, separators=(",", ":"))
        )
        if len(self._buffer) >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer = []
        self._fh.flush()
        if self.fsync:
            import os

            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh.closed:
            return
        if self.dropped:
            # bypass the cap: the accounting record must always land
            self._buffer.append(
                json.dumps(
                    _stamp({"kind": "trace.drops", "dropped": self.dropped}),
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        self.flush()
        self._fh.close()


class FailsafeSink(TraceSink):
    """Serialize and shield another sink: tracing must never fail work.

    The serving daemon's handler threads emit concurrently into one
    sink, and its contract is that tracing is a *pure observer* -- so
    this wrapper (a) takes a lock around every inner call (the JSONL
    sink's buffer is not thread-safe on its own) and (b) converts any
    failure of the destination (disk full, I/O error, a closed file)
    into a counted drop instead of an exception.  A request is never
    lost to its own telemetry; ``dropped`` says what the telemetry
    lost (the ``obs.trace.write`` failpoint tests exactly this).
    """

    def __init__(self, inner: TraceSink) -> None:
        self.inner = inner
        self.dropped = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return self.inner.enabled

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            try:
                self.inner.emit(record)
            except Exception:
                self.dropped += 1

    def total_dropped(self) -> int:
        """Records lost anywhere: sink failures here plus whatever the
        inner sink's own bounds shed."""
        return self.dropped + getattr(self.inner, "dropped", 0)

    def close(self) -> None:
        with self._lock:
            try:
                self.inner.close()
            except Exception:
                pass


# ----------------------------------------------------------------------
# reading traces back
# ----------------------------------------------------------------------
def iter_trace(path: str) -> Iterable[Dict[str, Any]]:
    """Parse and schema-validate a trace file one record at a time.

    A generator: the file is read line by line and each record is
    validated (and the header checked) before it is yielded, so
    multi-GB journals are analyzed in constant memory.  The header
    record is yielded too, like :func:`read_trace` returns it.
    Raises :class:`TraceError` on the first malformed line, a missing
    or foreign header, an unsupported version, or an empty file.
    """
    with open(path) as fh:
        first = True
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                raise TraceError(f"{path}: corrupt trace line {lineno}")
            try:
                validate_record(rec)
            except TraceError as exc:
                raise TraceError(f"{path}: line {lineno}: {exc}")
            if first:
                first = False
                if (
                    rec.get("kind") != "trace.start"
                    or rec.get("format") != TRACE_FORMAT
                ):
                    raise TraceError(f"{path}: not a {TRACE_FORMAT} file")
                if rec.get("version") not in SUPPORTED_TRACE_VERSIONS:
                    raise TraceError(
                        f"{path}: unsupported trace version "
                        f"{rec.get('version')!r} (this library reads "
                        f"versions {SUPPORTED_TRACE_VERSIONS})"
                    )
            yield rec
        if first:
            raise TraceError(f"{path}: empty trace")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Every record of a trace file, validated, as one list.

    Convenience for tests and small traces; anything that may face a
    long scan's journal should stream :func:`iter_trace` instead.
    """
    return list(iter_trace(path))


class TraceSummary:
    """Aggregate view of one trace (see :func:`summarize_trace`)."""

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        self.planner = PlannerReport()
        self.pairs: Dict[str, int] = {}
        self.engine_ticks = 0
        self.worker_events: Dict[str, int] = {}
        self.checkpoint_writes = 0
        self.dropped = 0
        self.interrupted = False
        self.profile = SearchProfile()  # merged from any profile records
        for rec in records:
            kind = rec["kind"]
            if kind == "query":
                self.planner.queries += 1
                if not rec["decided"]:
                    self.planner.unknown += 1
                for entry in rec["tiers"]:
                    if entry["answered"]:
                        self.planner.record_answer(
                            entry["tier"],
                            states=entry["states"],
                            elapsed=entry["elapsed"],
                        )
                    else:
                        self.planner.record_cost(
                            entry["tier"],
                            states=entry["states"],
                            elapsed=entry["elapsed"],
                        )
            elif kind == "pair":
                status = rec["status"]
                self.pairs[status] = self.pairs.get(status, 0) + 1
            elif kind == "engine.tick":
                self.engine_ticks += 1
            elif kind.startswith("worker."):
                event = kind.split(".", 1)[1]
                self.worker_events[event] = self.worker_events.get(event, 0) + 1
            elif kind == "checkpoint.write":
                self.checkpoint_writes += 1
            elif kind == "profile":
                self.profile.merge(rec["profile"])
            elif kind == "trace.drops":
                self.dropped += rec["dropped"]
            elif kind == "scan.end":
                self.interrupted = self.interrupted or rec["interrupted"]

    def describe(self) -> str:
        lines = []
        if self.pairs:
            tally = " ".join(
                f"{status}={n}" for status, n in sorted(self.pairs.items())
            )
            lines.append(f"pairs: {tally}")
        lines.append(self.planner.describe())
        if self.worker_events:
            tally = " ".join(
                f"{event}={n}" for event, n in sorted(self.worker_events.items())
            )
            lines.append(f"workers: {tally}")
        if self.checkpoint_writes:
            lines.append(f"checkpoint writes: {self.checkpoint_writes}")
        if self.engine_ticks:
            lines.append(f"engine progress ticks: {self.engine_ticks}")
        if self.dropped:
            lines.append(f"trace records dropped (bounded sink): {self.dropped}")
        if self.profile.searches:
            lines.append(
                f"profile: {self.profile.searches} search(es), "
                f"{self.profile.total_states} attributed state(s) "
                f"(see `repro trace profile`)"
            )
        if self.interrupted:
            lines.append("scan was interrupted")
        return "\n".join(lines)


def summarize_trace(path: str) -> TraceSummary:
    """Aggregate a trace file back into the per-tier table the live
    :class:`~repro.solve.planner.PlannerReport` prints -- the two agree
    exactly, including spans shipped home by supervised workers.
    Streams :func:`iter_trace`, so journal size doesn't matter."""
    return TraceSummary(iter_trace(path))


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 1)))  # ceil without math
    return sorted_values[min(rank, len(sorted_values)) - 1]


class ServeTraceSummary:
    """Aggregate view of a daemon trace (``repro trace serve-summary``).

    Built from the ``serve.*`` spans (plus the ``query`` spans workers
    ship home): per-endpoint request counts and latency percentiles,
    the phase breakdown of where request time went, planner-tier
    attribution, and the slowest requests *with their request IDs* so
    an operator can go from a p99 number to one concrete request.

    The per-endpoint request counts are, by construction, exactly the
    counts the daemon's ``/status`` document reports under ``"http"``
    for the same run: both tally one unit per completed request on the
    instrumented endpoints.
    """

    def __init__(
        self, records: Iterable[Dict[str, Any]], *, slowest: int = 10
    ) -> None:
        self.requests: Dict[str, int] = {}  # endpoint -> count
        self.statuses: Dict[str, Dict[str, int]] = {}  # endpoint -> code -> n
        self.kinds: Dict[str, int] = {}  # query kind (relation) -> count
        self.latencies: Dict[str, List[float]] = {}  # endpoint -> elapsed
        self.phases: Dict[str, List[float]] = {
            kind: [0, 0.0] for kind in SERVE_PHASE_KINDS
        }  # span kind -> [count, total seconds]
        self.planner = PlannerReport()
        self.dropped = 0
        self._slowest_cap = max(1, slowest)
        heap: List[Tuple[float, str, Dict[str, Any]]] = []
        for rec in records:
            kind = rec["kind"]
            if kind == "serve.request":
                endpoint = rec["endpoint"]
                self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
                by_status = self.statuses.setdefault(endpoint, {})
                code = str(rec["status"])
                by_status[code] = by_status.get(code, 0) + 1
                qkind = str(rec.get("query_kind") or "-")
                self.kinds[qkind] = self.kinds.get(qkind, 0) + 1
                self.latencies.setdefault(endpoint, []).append(rec["elapsed"])
                item = (rec["elapsed"], rec["request_id"], rec)
                if len(heap) < self._slowest_cap:
                    heapq.heappush(heap, item)
                else:
                    heapq.heappushpop(heap, item)
            elif kind in self.phases:
                tally = self.phases[kind]
                tally[0] += 1
                tally[1] += rec["elapsed"]
            elif kind == "query":
                self.planner.queries += 1
                if not rec["decided"]:
                    self.planner.unknown += 1
                for entry in rec["tiers"]:
                    if entry["answered"]:
                        self.planner.record_answer(
                            entry["tier"],
                            states=entry["states"],
                            elapsed=entry["elapsed"],
                        )
                    else:
                        self.planner.record_cost(
                            entry["tier"],
                            states=entry["states"],
                            elapsed=entry["elapsed"],
                        )
            elif kind == "trace.drops":
                self.dropped += rec["dropped"]
        #: the N slowest requests, slowest first
        self.slowest: List[Dict[str, Any]] = [
            rec for _, _, rec in sorted(heap, reverse=True)
        ]

    @property
    def total_requests(self) -> int:
        return sum(self.requests.values())

    def percentiles(self, endpoint: str) -> Tuple[float, float, float]:
        values = sorted(self.latencies.get(endpoint, ()))
        return (
            _percentile(values, 0.50),
            _percentile(values, 0.95),
            _percentile(values, 0.99),
        )

    def describe(self) -> str:
        lines = [
            f"requests: {self.total_requests} across "
            f"{len(self.requests)} endpoint(s)"
        ]
        for endpoint in sorted(self.requests):
            p50, p95, p99 = self.percentiles(endpoint)
            tally = " ".join(
                f"{code}={n}"
                for code, n in sorted(self.statuses[endpoint].items())
            )
            lines.append(
                f"  {endpoint}: count={self.requests[endpoint]} "
                f"p50={p50 * 1e3:.1f}ms p95={p95 * 1e3:.1f}ms "
                f"p99={p99 * 1e3:.1f}ms status[{tally}]"
            )
        kinds = {k: n for k, n in self.kinds.items() if k != "-"}
        if kinds:
            tally = " ".join(
                f"{kind}={n}" for kind, n in sorted(kinds.items())
            )
            lines.append(f"query kinds: {tally}")
        phase_rows = [
            (kind, int(tally[0]), tally[1])
            for kind, tally in self.phases.items()
            if tally[0]
        ]
        if phase_rows:
            lines.append("phase breakdown (summed across requests):")
            for kind, count, total in sorted(
                phase_rows, key=lambda row: -row[2]
            ):
                phase = kind[len("serve."):]
                lines.append(
                    f"  {phase:<15} n={count:<5} total={total * 1e3:.1f}ms"
                )
        if self.planner.queries:
            lines.append(self.planner.describe())
        if self.slowest:
            lines.append(f"slowest {len(self.slowest)} request(s):")
            for rec in self.slowest:
                kind = str(rec.get("query_kind") or "-")
                lines.append(
                    f"  {rec['elapsed'] * 1e3:8.1f}ms  {rec['endpoint']}"
                    f"  kind={kind}  status={rec['status']}"
                    f"  id={rec['request_id']}"
                )
        if self.dropped:
            lines.append(
                f"trace records dropped (bounded/failing sink): {self.dropped}"
            )
        return "\n".join(lines)


def summarize_serve_trace(path: str, *, slowest: int = 10) -> ServeTraceSummary:
    """Aggregate a daemon trace (``repro serve --trace``) into the
    per-endpoint latency/phase/tier view.  Streams :func:`iter_trace`,
    bounding memory by the request count, not the span count."""
    return ServeTraceSummary(iter_trace(path), slowest=slowest)


__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "SUPPORTED_TRACE_VERSIONS",
    "SPAN_SCHEMA",
    "TraceError",
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "JsonlTraceSink",
    "FailsafeSink",
    "SERVE_PHASE_KINDS",
    "validate_record",
    "iter_trace",
    "read_trace",
    "TraceSummary",
    "summarize_trace",
    "ServeTraceSummary",
    "summarize_serve_trace",
]
