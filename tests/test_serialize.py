"""Round-trip tests for execution JSON serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.core.relations import ALL_RELATIONS, OrderingAnalyzer
from repro.model import serialize
from repro.workloads.programs import figure1_execution
from repro.reductions import semaphore_reduction
from repro.sat.cnf import CNF

from tests.strategies import medium_semaphore_executions, small_event_executions


def same_execution(a, b) -> bool:
    return (
        [e.describe() for e in a.events] == [e.describe() for e in b.events]
        and a.processes == b.processes
        and a.fork_children == b.fork_children
        and a.join_targets == b.join_targets
        and a.parent_fork == b.parent_fork
        and a.dependences == b.dependences
        and a.observed_schedule == b.observed_schedule
        and {s: a.sem_initial(s) for s in a.semaphores}
        == {s: b.sem_initial(s) for s in b.semaphores}
    )


class TestRoundTrip:
    def test_figure1(self):
        exe = figure1_execution()
        again = serialize.loads(serialize.dumps(exe))
        assert same_execution(exe, again)

    def test_reduction_execution(self):
        red = semaphore_reduction(CNF([(1, 2, 3)]))
        again = serialize.loads(serialize.dumps(red.execution))
        assert same_execution(red.execution, again)
        assert again.by_label("a").eid == red.a

    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_random_semaphore_executions(self, exe):
        assert same_execution(exe, serialize.loads(serialize.dumps(exe)))

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_random_event_executions(self, exe):
        assert same_execution(exe, serialize.loads(serialize.dumps(exe)))

    def test_relations_survive_round_trip(self):
        exe = figure1_execution()
        again = serialize.loads(serialize.dumps(exe))
        a = OrderingAnalyzer(exe)
        b = OrderingAnalyzer(again)
        for name in ALL_RELATIONS:
            assert a.relation(name) == b.relation(name)

    def test_file_round_trip(self, tmp_path):
        exe = figure1_execution()
        path = tmp_path / "exe.json"
        serialize.save(exe, str(path))
        assert same_execution(exe, serialize.load(str(path)))


class TestReportRoundTrip:
    @pytest.fixture
    def report(self):
        from repro.races.detector import RaceDetector

        return RaceDetector(figure1_execution()).feasible_races()

    def test_witness_round_trip(self, report):
        exe = report.execution
        for race in report.races:
            doc = serialize.witness_to_dict(race.witness)
            again = serialize.witness_from_dict(exe, doc)
            assert serialize.witness_to_dict(again) == doc
            again.validate(include_dependences=False)

    def test_classification_round_trip(self, report):
        exe = report.execution
        for c in report.classifications:
            doc = serialize.classification_to_dict(c)
            again = serialize.classification_from_dict(exe, json.loads(json.dumps(doc)))
            assert (again.a, again.b, again.status) == (c.a, c.b, c.status)
            assert again.variables == c.variables
            assert again.resource == c.resource

    def test_unknown_classification_keeps_resource(self, report):
        from repro.races.detector import PairClassification, UNKNOWN

        exe = report.execution
        c = PairClassification(
            a=0, b=1, status=UNKNOWN, variables=frozenset({"x"}),
            witness=None, resource="crash",
        )
        again = serialize.classification_from_dict(
            exe, serialize.classification_to_dict(c)
        )
        assert again.status == UNKNOWN and again.resource == "crash"

    def test_report_file_round_trip(self, report, tmp_path):
        path = tmp_path / "report.json"
        serialize.save_report(report, str(path))
        again = serialize.load_report(str(path))
        assert same_execution(report.execution, again.execution)
        assert again.summary() == report.summary()
        assert again.pairs() == report.pairs()
        assert again.complete == report.complete
        assert serialize.report_to_dict(again) == serialize.report_to_dict(report)

    def test_wrong_report_format_rejected(self, report):
        doc = serialize.report_to_dict(report)
        doc["format"] = "something-else"
        with pytest.raises(ValueError, match="not a repro-race-report"):
            serialize.report_from_dict(doc)

    def test_wrong_report_version_rejected(self, report):
        doc = serialize.report_to_dict(report)
        doc["version"] = 99
        with pytest.raises(ValueError, match="unsupported race-report version"):
            serialize.report_from_dict(doc)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-execution"):
            serialize.loads(json.dumps({"format": "something-else"}))

    def test_wrong_version_rejected(self):
        doc = serialize.execution_to_dict(figure1_execution())
        doc["version"] = 99
        with pytest.raises(ValueError, match="unsupported format version"):
            serialize.execution_from_dict(doc)

    def test_corrupt_structure_rejected(self):
        doc = serialize.execution_to_dict(figure1_execution())
        doc["processes"]["main"] = [999]
        with pytest.raises(ValueError):
            serialize.execution_from_dict(doc)

    def test_document_is_sorted_stable(self):
        exe = figure1_execution()
        assert serialize.dumps(exe) == serialize.dumps(exe)
