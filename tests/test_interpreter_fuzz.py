"""Interpreter fuzzing with replay determinism as the oracle.

For random full programs:

* runs complete (the generator provisions semaphores);
* the trace converts to a valid execution (axioms hold) and its
  observed schedule replays through the engine's reference semantics;
* **replay determinism**: re-running under a FixedScheduler that plays
  back the observed process sequence reproduces the byte-identical
  trace -- the property that makes observed executions trustworthy
  inputs for the whole analysis stack;
* the parser/unparser round-trips the generated programs, and the
  re-parsed program behaves identically under the same schedule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import FeasibilityEngine, Point
from repro.core.witness import replay_schedule
from repro.lang.interpreter import run_program
from repro.lang.parser import parse_program
from repro.lang.scheduler import FixedScheduler
from repro.lang.unparse import unparse_program
from repro.model.axioms import validate_execution
from repro.workloads.generators import random_full_program

seeds = st.integers(0, 2_000)


def trace_fingerprint(trace):
    return [
        (s.process, s.kind, s.obj, s.text, tuple(s.accesses)) for s in trace.steps
    ]


class TestInterpreterFuzz:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_runs_complete_and_convert(self, seed):
        program = random_full_program(seed=seed)
        trace = run_program(program, seed)
        exe = trace.to_execution()
        assert validate_execution(exe) == []

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_replay_determinism(self, seed):
        program = random_full_program(seed=seed)
        trace = run_program(program, seed)
        schedule = [s.process for s in trace.steps]
        replayed = run_program(program, FixedScheduler(schedule))
        assert trace_fingerprint(replayed) == trace_fingerprint(trace)
        assert replayed.final_shared == trace.final_shared

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_observed_schedule_replays_through_engine_semantics(self, seed):
        program = random_full_program(seed=seed)
        exe = run_program(program, seed).to_execution()
        points = []
        for eid in exe.observed_schedule:
            points.append(Point(eid, False))
            points.append(Point(eid, True))
        replay_schedule(exe, points)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_feasible_set_nonempty(self, seed):
        program = random_full_program(seed=seed)
        exe = run_program(program, seed).to_execution()
        assert FeasibilityEngine(exe).search() is not None

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_parse_unparse_behavioural_equivalence(self, seed):
        program = random_full_program(seed=seed)
        reparsed = parse_program(unparse_program(program))
        a = run_program(program, seed)
        b = run_program(reparsed, seed)
        assert trace_fingerprint(a) == trace_fingerprint(b)
        assert a.final_shared == b.final_shared
