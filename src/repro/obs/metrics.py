"""A small counter/gauge/histogram registry with a Prometheus text view.

The scan-side metrics a long run wants on a dashboard -- pairs
classified by outcome, per-tier answer rates, engine states per
second, worker restarts, checkpoint writes -- rendered in the
Prometheus text exposition format so ``--metrics FILE`` snapshots drop
straight into existing tooling (``promtool check metrics`` parses
them).  Pure stdlib, no client library dependency.

Metrics are identified by ``(name, labels)``; asking for the same pair
twice returns the same instrument, so instrumented code does not need
to thread instrument handles around.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.fileio import atomic_write_text

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
    return tuple(sorted((labels or {}).items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote and newline are the three characters the
    format reserves inside a quoted label value."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        value = int(value)
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go anywhere (rates, in-flight counts)."""

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


#: default histogram buckets: sub-millisecond to minutes (seconds)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0, 300.0
)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * len(self.buckets)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        # per-bucket tallies; render() produces the cumulative view
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break


class MetricsRegistry:
    """All of one run's instruments, rendered as one text snapshot."""

    def __init__(self) -> None:
        # name -> (type, help, {labelkey: instrument}); insertion-ordered
        self._metrics: Dict[str, Tuple[str, str, Dict[_LabelKey, object]]] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, help_text: str, labels, factory):
        entry = self._metrics.get(name)
        if entry is None:
            entry = (kind, help_text, {})
            self._metrics[name] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {entry[0]}"
            )
        series = entry[2]
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            instrument = series[key] = factory()
        return instrument

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition format snapshot."""
        lines: List[str] = []
        for name, (kind, help_text, series) in self._metrics.items():
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key, instrument in series.items():
                if kind == "histogram":
                    h = instrument
                    cumulative = 0
                    for bound, n in zip(h.buckets, h.bucket_counts):
                        cumulative += n
                        bucket_key = key + (("le", _fmt(bound)),)
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_key)} {cumulative}"
                        )
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(inf_key)} {h.count}"
                    )
                    lines.append(f"{name}_sum{_render_labels(key)} {_fmt(h.sum)}")
                    lines.append(f"{name}_count{_render_labels(key)} {h.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} {_fmt(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Atomically replace ``path`` with the rendered snapshot.

        Metrics files are scraped and ``tail``\\ ed while the scan still
        runs, so a torn half-written snapshot must never be observable.
        """
        atomic_write_text(path, self.render())


# ----------------------------------------------------------------------
def planner_metrics(registry: MetricsRegistry, planner) -> MetricsRegistry:
    """Populate ``registry`` from a
    :class:`~repro.solve.planner.PlannerReport` (shared by ``analyze``
    and ``races`` snapshots)."""
    registry.counter(
        "repro_planner_queries_total", "Primitive planner queries posed"
    ).inc(planner.queries)
    registry.counter(
        "repro_planner_unknown_total", "Planner ladder fall-throughs"
    ).inc(planner.unknown)
    for tier, tally in sorted(planner.tiers.items()):
        labels = {"tier": tier}
        registry.counter(
            "repro_tier_answered_total",
            "Queries settled, by planner tier",
            labels=labels,
        ).inc(tally.answered)
        registry.counter(
            "repro_tier_states_total",
            "Search states charged, by planner tier",
            labels=labels,
        ).inc(tally.states)
        registry.counter(
            "repro_tier_elapsed_seconds_total",
            "Time charged, by planner tier",
            labels=labels,
        ).inc(tally.elapsed)
    engine = planner.tiers.get("engine")
    if engine is not None and engine.elapsed > 0:
        registry.gauge(
            "repro_engine_states_per_second",
            "Exact-search throughput over the whole scan",
        ).set(engine.states / engine.elapsed)
    return registry


def scan_metrics(
    registry: MetricsRegistry,
    report,
    *,
    elapsed: Optional[float] = None,
    worker_restarts: int = 0,
    checkpoint_writes: int = 0,
) -> MetricsRegistry:
    """Populate ``registry`` from a finished
    :class:`~repro.races.detector.RaceReport` (plus the scan-level
    counts only the caller knows)."""
    for c in report.classifications:
        registry.counter(
            "repro_pairs_classified_total",
            "Conflicting pairs classified, by outcome",
            labels={"status": c.status},
        ).inc()
    if report.planner is not None:
        planner_metrics(registry, report.planner)
    if elapsed is not None:
        registry.gauge(
            "repro_scan_elapsed_seconds", "Wall-clock duration of the scan"
        ).set(elapsed)
    registry.counter(
        "repro_worker_restarts_total",
        "Supervised workers replaced after dying mid-pair",
    ).inc(worker_restarts)
    registry.counter(
        "repro_checkpoint_writes_total", "Pair records journaled durably"
    ).inc(checkpoint_writes)
    registry.gauge(
        "repro_scan_interrupted", "1 when the scan was cut short by Ctrl-C"
    ).set(1 if report.interrupted else 0)
    return registry


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "planner_metrics",
    "scan_metrics",
]
