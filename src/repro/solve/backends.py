"""The registered backends: one adapter per answering strategy.

Each backend wraps one of the library's existing decision procedures
behind the uniform :class:`~repro.solve.query.Backend` protocol.  The
tiers, cheapest first, and what each may soundly conclude:

=============  =====================================================
``structural``  reachability over the static order graph: refutes
                CHB/CCB/CCW; confirms CHB/CCB once base feasibility
                is known (O(|E|) per query, O(|E|^2) precomputed)
``observed``    the traced schedule, replayed once: confirms
                feasibility and any CHB/CCB it exhibits
``witness``     the cross-query cache: confirms feasibility/CHB/CCB
                by replaying known members of ``F``, and CCW via the
                adjacent-swap widening -- the planner's hot path
``vc``          vector clocks on the observed run: confirms CHB/CCB
                (a sub-relation of ``observed``; registered for
                ``--backends`` experiments)
``hmw``         the Helmbold/McDowell/Wang counting phases
                (semaphore/no-sync styles): refute CHB/CCB, confirm
                CCB, and prove infeasibility
``taskgraph``   the EGP task graph (sync events only; registered
                for experiments, not in the default ladder)
``sat``         the partial-order CNF encoding + budgeted DPLL: an
                exact alternative for feasibility/CHB/CCB
``engine``      the exact interval-search engine: decides everything
                (provenance tag ``"exact"``)
=============  =====================================================

Soundness across ``drop`` variants (the race detector's relaxed
queries) follows two monotonicity facts used throughout: dropping
dependences only enlarges ``F``, so membership witnesses transfer
upward (base members answer relaxed queries) and impossibility proved
without reading ``D`` transfers everywhere (HMW, the task graph).

Soundness across memory models: ``structural``, ``observed``,
``witness`` and ``engine`` consume program order exclusively through
the execution's model-aware caches (``po_begin_predecessors``, the
static order graph, schedule replay), so they are correct for every
registered :mod:`repro.memmodel` model.  ``vc``, ``hmw``, ``taskgraph``
and ``sat`` reason from sequentially consistent program order directly
and declare ``supported_models = {"sc"}``; the planner skips them for
executions under any other model instead of letting them answer wrong.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Optional, Tuple, Type

from repro.budget import Budget, Verdict
from repro.core.engine import SearchBudgetExceeded, begin_point, end_point
from repro.core.witness import Witness
from repro.solve.context import SolveContext
from repro.solve.query import (
    CCB,
    CCW,
    CHB,
    FEASIBLE,
    Backend,
    BackendAnswer,
    RelationQuery,
)


def _timed(backend: "Backend", verdict: Verdict, t0: float, states: int = 0) -> BackendAnswer:
    return BackendAnswer(
        verdict, backend.name, states=states, elapsed=time.monotonic() - t0
    )


class StructuralBackend(Backend):
    """Reachability over the static order graph (drop-aware).

    Refutations are unconditionally sound (they hold vacuously when
    ``F`` is empty); confirmations additionally need ``F`` non-empty,
    which the planner resolves through the ladder before asking --
    base feasibility suffices for every ``drop`` since relaxing only
    enlarges ``F``.
    """

    name = "structural"

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        a, b, drop = query.a, query.b, query.drop
        if query.relation in (CHB, CCB):
            if ctx.statically_ordered(b, a, drop):
                # b completes first in every schedule, so neither
                # end(a) < begin(b) nor end(a) < end(b) can ever hold
                return _timed(self, Verdict.false(self.name, stats=ctx.stats), t0)
            if ctx.feasible is True and ctx.statically_ordered(a, b, drop):
                witness = self._serial_member(ctx, drop)
                return _timed(
                    self,
                    Verdict.true(self.name, witness=witness, stats=ctx.stats),
                    t0,
                )
        elif query.relation == CCW:
            if ctx.statically_interval_ordered(a, b, drop) or ctx.statically_interval_ordered(b, a, drop):
                return _timed(self, Verdict.false(self.name, stats=ctx.stats), t0)
        return None

    @staticmethod
    def _serial_member(ctx: SolveContext, drop) -> Optional[Witness]:
        """A serialized cached member of ``F(drop)``: in serial form the
        completion order *is* the interval order, so a structurally
        ordered pair is exhibited, not just implied."""
        from repro.core.engine import Point

        member = ctx.witnesses.any_member(drop)
        if member is None:
            return None
        points = []
        for eid in member.serial_order():
            points.append(Point(eid, False))
            points.append(Point(eid, True))
        entry = ctx.witnesses.add(points)
        if entry is not None and entry.valid_for(drop):
            return entry.witness
        return None


class ObservedBackend(Backend):
    """The traced schedule as a free member of ``F``.

    Serial by construction, so position order simultaneously realizes
    interval order and completion order; it confirms (never refutes)
    and is valid for every ``drop``.
    """

    name = "observed"

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        w = ctx.observed_witness()
        if w is None:
            return None
        if query.relation == FEASIBLE:
            return _timed(self, Verdict.true(self.name, witness=w, stats=ctx.stats), t0)
        if query.relation == CHB and w.happened_before(query.a, query.b):
            return _timed(self, Verdict.true(self.name, witness=w, stats=ctx.stats), t0)
        if query.relation == CCB and w.end_position(query.a) < w.end_position(query.b):
            return _timed(self, Verdict.true(self.name, witness=w, stats=ctx.stats), t0)
        return None


class WitnessBackend(Backend):
    """Replay against every known member of ``F`` before searching.

    Confirms feasibility/CHB/CCB by lookup and CCW by lookup or the
    adjacent-swap widening; never refutes (absence from the cache
    proves nothing).
    """

    name = "witness"

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        cache = ctx.witnesses
        w: Optional[Witness] = None
        if query.relation == FEASIBLE:
            w = cache.any_member(query.drop)
        elif query.relation == CHB:
            w = cache.find_chb(query.a, query.b, query.drop)
        elif query.relation == CCB:
            w = cache.find_ccb(query.a, query.b, query.drop)
        elif query.relation == CCW:
            w = cache.widen_overlap(query.a, query.b, query.drop)
        if w is None:
            return None
        return _timed(self, Verdict.true(self.name, witness=w, stats=ctx.stats), t0)


class VectorClockBackend(Backend):
    """Vector clocks over the observed run (confirmation only).

    Clock order is a sub-relation of the observed schedule's temporal
    order, so everything it confirms the ``observed`` tier confirms
    too; it is registered so ``--backends`` experiments can measure
    exactly that containment.
    """

    name = "vc"
    # clock increments follow adjacent SC program order
    supported_models: FrozenSet[str] = frozenset({"sc"})

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        vc = ctx.vector_clocks()
        if vc is None or ctx.observed_witness() is None:
            return None
        if query.relation in (CHB, CCB) and vc.happened_before(query.a, query.b):
            return _timed(
                self,
                Verdict.true(self.name, witness=ctx.observed_witness(), stats=ctx.stats),
                t0,
            )
        return None


class HMWBackend(Backend):
    """The Helmbold/McDowell/Wang counting phases (semaphore styles).

    Phase 3 yields ``R``: pairs ordered by completion in *every*
    schedule, derived from program order, fork/join and semaphore
    counts -- never from ``D`` -- so every conclusion transfers to
    every ``drop`` variant.  ``(b, a) in R`` refutes both CHB and CCB
    of ``(a, b)``; ``(a, b) in R`` plus a non-empty ``F`` confirms
    CCB; an infeasibility proof from the counting rules settles
    feasibility (and with it every existential) negatively.
    """

    name = "hmw"
    # the counting phases propagate orderings along adjacent SC
    # program order; a refutation derived that way is wrong under TSO
    supported_models: FrozenSet[str] = frozenset({"sc"})

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        if ctx.hmw_infeasible():
            # no schedule completes, even ignoring D: every existential
            # primitive is false for every drop variant
            return _timed(self, Verdict.false(self.name, stats=ctx.stats), t0)
        relation = ctx.hmw_relation()
        if relation is None:
            return None
        a, b = query.a, query.b
        if query.relation in (CHB, CCB) and (b, a) in relation:
            return _timed(self, Verdict.false(self.name, stats=ctx.stats), t0)
        if query.relation == CCB and ctx.feasible is True and (a, b) in relation:
            witness = ctx.witnesses.find_ccb(a, b, query.drop)
            return _timed(
                self, Verdict.true(self.name, witness=witness, stats=ctx.stats), t0
            )
        return None


class TaskGraphBackend(Backend):
    """The EGP task graph (synchronization events only).

    Path existence claims a guaranteed completion ordering; the graph
    never reads ``D``, so conclusions transfer to every ``drop``.
    Registered for ``--backends`` experiments (the benchmarks measure
    its blind spots against the exact baseline); not in any default
    ladder.
    """

    name = "taskgraph"
    # graph construction threads SC program order between sync events
    supported_models: FrozenSet[str] = frozenset({"sc"})

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        if query.relation not in (CHB, CCB):
            return None
        tg = ctx.taskgraph()
        if tg is None:
            return None
        a, b = query.a, query.b
        if not (
            ctx.exe.event(a).kind.is_synchronization
            and ctx.exe.event(b).kind.is_synchronization
        ):
            return None
        if tg.guaranteed_ordering(b, a):
            return _timed(self, Verdict.false(self.name, stats=ctx.stats), t0)
        if query.relation == CCB and ctx.feasible is True and tg.guaranteed_ordering(a, b):
            witness = ctx.witnesses.find_ccb(a, b, query.drop)
            return _timed(
                self, Verdict.true(self.name, witness=witness, stats=ctx.stats), t0
            )
        return None


class SatBackend(Backend):
    """The partial-order CNF encoding solved by budgeted DPLL.

    Exact for feasibility/CHB/CCB via the serialization lemma (each is
    "does a legal *serial* schedule exist, optionally with ``a``
    ordered before ``b``"); declines CCW, which is not expressible as
    a serial-order constraint.  Satisfying models decode to serial
    schedules that are cached like any other witness.  Counting
    semantics only (the encoding has no binary-semaphore clamping).
    """

    name = "sat"
    # the CNF encodes the adjacent SC program-order chain as hard
    # clauses, so its refutations do not hold under relaxed models
    supported_models: FrozenSet[str] = frozenset({"sc"})

    def __init__(self) -> None:
        self._encoders: Dict[Tuple, object] = {}

    def _encoder(self, ctx: SolveContext, drop, budget: Optional[Budget]):
        from repro.encoding.order_sat import OrderSatEncoder

        key = drop
        enc = self._encoders.get(key)
        if enc is None or budget is not None:
            # budgets are per-call, so budgeted encoders are not cached
            enc = OrderSatEncoder(
                ctx.execution_for(drop),
                include_dependences=ctx.include_dependences,
                budget=budget,
            )
            if budget is None:
                self._encoders[key] = enc
        return enc

    def answer(self, query, ctx, *, budget=None, max_states=None):
        from repro.sat.dpll import SolveBudgetExceeded

        t0 = time.monotonic()
        if ctx.binary_semaphores or query.relation == CCW:
            return None
        if budget is None and max_states is not None:
            budget = Budget(max_states=max_states)
        try:
            enc = self._encoder(ctx, query.drop, budget)
            extra = [] if query.relation == FEASIBLE else [(query.a, query.b)]
            order = enc.solve(extra)
        except SolveBudgetExceeded as exc:
            return _timed(
                self, Verdict.unknown(resource=exc.resource, stats=ctx.stats), t0
            )
        if order is None:
            return _timed(self, Verdict.false(self.name, stats=ctx.stats), t0)
        from repro.core.engine import Point

        points = []
        for eid in order:
            points.append(Point(eid, False))
            points.append(Point(eid, True))
        entry = ctx.witnesses.add(points)
        witness = entry.witness if entry is not None else None
        return _timed(
            self, Verdict.true(self.name, witness=witness, stats=ctx.stats), t0
        )


class EngineBackend(Backend):
    """The exact interval-search engine: the ladder's last rung.

    Decides every primitive, with witnesses, under the caller's budget;
    exhaustion yields ``UNKNOWN`` with the spent resource named.  Keeps
    one engine (with its failure memo) per ``drop`` variant via the
    context, and feeds every schedule it finds to the witness cache.
    Provenance tag is ``"exact"``, matching the pre-planner verdicts.
    """

    name = "engine"
    provenance = "exact"

    def answer(self, query, ctx, *, budget=None, max_states=None):
        t0 = time.monotonic()
        s0 = ctx.stats.states_visited
        engine = ctx.engine_for(query.drop)
        a, b = query.a, query.b
        kwargs = dict(
            max_states=max_states,
            budget=budget,
            stats=ctx.stats,
            on_progress=ctx.on_progress,
            profile=ctx.profile,
        )
        try:
            if query.relation == FEASIBLE:
                pts = engine.search(**kwargs)
            elif query.relation == CHB:
                pts = engine.search(
                    constraints=[(end_point(a), begin_point(b))], **kwargs
                )
            elif query.relation == CCB:
                pts = engine.search(
                    constraints=[(end_point(a), end_point(b))], **kwargs
                )
            else:  # CCW
                pts = engine.search(
                    interval_events=(a, b),
                    constraints=[
                        (begin_point(a), end_point(b)),
                        (begin_point(b), end_point(a)),
                    ],
                    **kwargs,
                )
        except SearchBudgetExceeded as exc:
            return _timed(
                self,
                Verdict.unknown(resource=exc.resource, stats=ctx.stats),
                t0,
                states=ctx.stats.states_visited - s0,
            )
        states = ctx.stats.states_visited - s0
        if pts is None:
            return _timed(
                self, Verdict.false(self.provenance, stats=ctx.stats), t0, states=states
            )
        entry = ctx.witnesses.add(pts)
        witness = entry.witness if entry is not None else Witness(ctx.exe, pts)
        return _timed(
            self,
            Verdict.true(self.provenance, witness=witness, stats=ctx.stats),
            t0,
            states=states,
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
BACKENDS: Dict[str, Type[Backend]] = {
    cls.name: cls
    for cls in (
        StructuralBackend,
        ObservedBackend,
        WitnessBackend,
        VectorClockBackend,
        HMWBackend,
        TaskGraphBackend,
        SatBackend,
        EngineBackend,
    )
}

#: the sound cheapest-first ladder used by default everywhere
DEFAULT_PLAN: Tuple[str, ...] = ("structural", "observed", "witness", "hmw", "engine")

#: the plan mirroring BestEffortOrdering's historical four layers
#: (no witness tier: its mcb answers are attributed to the layer that
#: found the schedule, keeping provenance accounting stable)
BEST_EFFORT_PLAN: Tuple[str, ...] = ("structural", "observed", "hmw", "engine")


def resolve_plan(names) -> Tuple[Backend, ...]:
    """Instantiate a plan from backend names, validating eagerly."""
    backends = []
    for name in names:
        cls = BACKENDS.get(name)
        if cls is None:
            raise ValueError(
                f"unknown backend {name!r} (available: {', '.join(sorted(BACKENDS))})"
            )
        backends.append(cls())
    return tuple(backends)


__all__ = [
    "BACKENDS",
    "DEFAULT_PLAN",
    "BEST_EFFORT_PLAN",
    "resolve_plan",
    "StructuralBackend",
    "ObservedBackend",
    "WitnessBackend",
    "VectorClockBackend",
    "HMWBackend",
    "TaskGraphBackend",
    "SatBackend",
    "EngineBackend",
]
