"""Pytest fixtures (strategies live in tests.strategies)."""

from tests.strategies import (  # noqa: F401  (re-exported fixtures)
    deadlocked_execution,
    fork_join_execution,
    independent_pair,
    vp_execution,
)
