"""Experiment X5 -- Section 4's third strand: program-level orderings
(Callahan & Subhlok).

C&S ask for orderings "guaranteed to occur in all executions of a given
program" (and prove the static version co-NP-hard).  The library
answers the dynamic version exactly by exhausting the schedule tree;
this bench regenerates the comparison the paper's discussion implies:

* program-level guaranteed orderings are a *subset* of any single
  observed execution's must-orderings (more executions -> fewer
  guarantees) -- asserted on the Figure 1 program;
* the schedule tree grows combinatorially with program size while each
  single-execution analysis does not -- the reason C&S resort to an
  approximate dataflow framework.
"""

import time

from conftest import report, table

from repro.analysis.explore import ProgramAnalysis
from repro.core.queries import OrderingQueries
from repro.lang.ast import ProcessDef, Program, SemP, SemV, Skip
from repro.lang.interpreter import run_program
from repro.lang.scheduler import PriorityScheduler
from repro.workloads.programs import figure1_program


def width_program(width: int, depth: int) -> Program:
    procs = [
        ProcessDef(f"p{k}", [Skip(label=f"e{k}_{i}") for i in range(depth)])
        for k in range(width)
    ]
    return Program(procs)


def run_study():
    out = {}

    # Figure 1: program-level vs execution-level guarantees ------------
    t0 = time.perf_counter()
    ana = ProgramAnalysis(figure1_program())
    t_explore = time.perf_counter() - t0
    program_guarantees = ana.guaranteed_orderings()

    exe = run_program(figure1_program(), PriorityScheduler(["main", "t1", "t2", "t3"]))
    exe = exe.to_execution()
    q = OrderingQueries(exe)
    execution_guarantees = set()
    labels = {l: eid for l, eid in exe.labels.items()}
    for la, ea in labels.items():
        for lb, eb in labels.items():
            if la != lb and q.mcb(ea, eb):
                execution_guarantees.add((la, lb))
    out["figure1"] = dict(
        runs=len(ana.result.runs),
        signatures=len(ana.event_signatures()),
        program_guarantees=program_guarantees,
        execution_guarantees=execution_guarantees,
        t_explore=t_explore,
    )

    # schedule-tree growth ---------------------------------------------
    growth = []
    for width, depth in [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)]:
        t0 = time.perf_counter()
        res = ProgramAnalysis(width_program(width, depth), max_runs=200_000)
        growth.append(
            dict(width=width, depth=depth, runs=len(res.result.runs),
                 seconds=time.perf_counter() - t0)
        )
    out["growth"] = growth
    return out


def test_program_level_orderings(benchmark):
    out = benchmark(run_study)

    fig = out["figure1"]
    # restricted to labels common to every run, program-level guarantees
    # must be a subset of the observed execution's must-orderings
    common_pairs = {
        (a, b) for (a, b) in fig["program_guarantees"]
    }
    assert common_pairs <= fig["execution_guarantees"]
    # and strictly fewer guarantees exist at program level: the observed
    # execution pinned down orderings other runs do not share
    assert len(fig["execution_guarantees"]) > len(common_pairs)

    lines = [
        f"figure 1: {fig['runs']} runs, {fig['signatures']} event signatures",
        f"  program-level guaranteed label orderings : {len(fig['program_guarantees'])}",
        f"  observed-execution must-orderings (labels): {len(fig['execution_guarantees'])}",
        "  (program-level is a strict subset -- asserted)",
        "",
        "schedule-tree growth (independent processes):",
    ]
    body = [
        [g["width"], g["depth"], g["runs"], f"{g['seconds'] * 1e3:.1f}ms"]
        for g in out["growth"]
    ]
    lines += table(["processes", "events each", "runs", "time"], body)
    # multinomial growth: 3x3 explodes past 4x2
    runs_by_shape = {(g["width"], g["depth"]): g["runs"] for g in out["growth"]}
    assert runs_by_shape[(3, 3)] == 1680  # 9!/(3!3!3!)
    assert runs_by_shape[(2, 2)] == 6
    report("exploration", lines)
