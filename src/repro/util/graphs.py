"""Directed-graph utilities used throughout the reproduction.

The graphs handled here are small (hundreds of nodes), so the
implementations favour clarity and predictable asymptotics over raw
constant-factor speed.  Reachability-heavy helpers use Python integers
as bitsets, which keeps transitive closure at ``O(V * E / wordsize)``
word operations -- easily fast enough for every workload in the paper's
reproduction while remaining dependency free.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple


class CycleError(ValueError):
    """Raised when an operation that requires a DAG meets a cycle."""

    def __init__(self, message: str, cycle: Sequence[Hashable] = ()):  # pragma: no cover - trivial
        super().__init__(message)
        self.cycle = tuple(cycle)


class Digraph:
    """A minimal directed graph over hashable node labels.

    Nodes are kept in insertion order, which makes every derived
    ordering (topological sorts, closures) deterministic -- important
    for reproducible benchmark output and for replayable witnesses.
    """

    def __init__(self, nodes: Iterable[Hashable] = (), edges: Iterable[Tuple[Hashable, Hashable]] = ()):
        self._succ: Dict[Hashable, List[Hashable]] = {}
        self._pred: Dict[Hashable, List[Hashable]] = {}
        self._edge_set: Set[Tuple[Hashable, Hashable]] = set()
        for n in nodes:
            self.add_node(n)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, n: Hashable) -> None:
        """Add ``n`` if not already present (idempotent)."""
        if n not in self._succ:
            self._succ[n] = []
            self._pred[n] = []

    def add_edge(self, u: Hashable, v: Hashable) -> bool:
        """Add edge ``u -> v``; returns True if the edge was new."""
        self.add_node(u)
        self.add_node(v)
        if (u, v) in self._edge_set:
            return False
        self._edge_set.add((u, v))
        self._succ[u].append(v)
        self._pred[v].append(u)
        return True

    def copy(self) -> "Digraph":
        g = Digraph()
        for n in self._succ:
            g.add_node(n)
        for u, v in self._edge_set:
            g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        return tuple(self._succ.keys())

    @property
    def edges(self) -> FrozenSet[Tuple[Hashable, Hashable]]:
        return frozenset(self._edge_set)

    def successors(self, n: Hashable) -> Tuple[Hashable, ...]:
        return tuple(self._succ[n])

    def predecessors(self, n: Hashable) -> Tuple[Hashable, ...]:
        return tuple(self._pred[n])

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return (u, v) in self._edge_set

    def has_node(self, n: Hashable) -> bool:
        return n in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, n: Hashable) -> bool:
        return n in self._succ

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    def out_degree(self, n: Hashable) -> int:
        return len(self._succ[n])

    def in_degree(self, n: Hashable) -> int:
        return len(self._pred[n])


def topological_sort(g: Digraph) -> List[Hashable]:
    """Kahn's algorithm; deterministic given insertion order.

    Raises :class:`CycleError` when ``g`` contains a cycle.
    """
    indeg = {n: g.in_degree(n) for n in g.nodes}
    queue: deque = deque(n for n in g.nodes if indeg[n] == 0)
    order: List[Hashable] = []
    while queue:
        n = queue.popleft()
        order.append(n)
        for m in g.successors(n):
            indeg[m] -= 1
            if indeg[m] == 0:
                queue.append(m)
    if len(order) != len(g):
        remaining = [n for n in g.nodes if indeg[n] > 0]
        raise CycleError("graph contains a cycle", remaining)
    return order


def is_acyclic(g: Digraph) -> bool:
    try:
        topological_sort(g)
        return True
    except CycleError:
        return False


def _index_map(g: Digraph) -> Dict[Hashable, int]:
    return {n: i for i, n in enumerate(g.nodes)}


def transitive_closure(g: Digraph) -> Digraph:
    """Return the transitive closure of a DAG as a new graph.

    Uses per-node reachability bitsets computed in reverse topological
    order: ``reach(n) = union(reach(s) | {s} for s in succ(n))``.
    """
    order = topological_sort(g)
    idx = _index_map(g)
    reach: Dict[Hashable, int] = {}
    for n in reversed(order):
        mask = 0
        for s in g.successors(n):
            mask |= reach[s] | (1 << idx[s])
        reach[n] = mask
    nodes = g.nodes
    closed = Digraph(nodes)
    for n in nodes:
        mask = reach[n]
        while mask:
            low = mask & -mask
            closed.add_edge(n, nodes[low.bit_length() - 1])
            mask ^= low
    return closed


def transitive_reduction(g: Digraph) -> Digraph:
    """Return the unique transitive reduction of a DAG.

    Edge ``u -> v`` is kept iff there is no other path from ``u`` to
    ``v`` (i.e. no successor ``w != v`` of ``u`` that reaches ``v``).
    """
    order = topological_sort(g)
    idx = _index_map(g)
    reach: Dict[Hashable, int] = {}
    for n in reversed(order):
        mask = 0
        for s in g.successors(n):
            mask |= reach[s] | (1 << idx[s])
        reach[n] = mask
    reduced = Digraph(g.nodes)
    for u in g.nodes:
        for v in g.successors(u):
            indirect = False
            for w in g.successors(u):
                if w is not v and w != v and (reach[w] >> idx[v]) & 1:
                    indirect = True
                    break
            if not indirect:
                reduced.add_edge(u, v)
    return reduced


def reachable_from(g: Digraph, src: Hashable) -> Set[Hashable]:
    """All nodes reachable from ``src`` (excluding ``src`` itself unless on a cycle)."""
    seen: Set[Hashable] = set()
    stack = list(g.successors(src))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(g.successors(n))
    return seen


def ancestors_of(g: Digraph, dst: Hashable) -> Set[Hashable]:
    """All nodes with a (non-empty) path to ``dst``."""
    seen: Set[Hashable] = set()
    stack = list(g.predecessors(dst))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(g.predecessors(n))
    return seen


def maximal_elements(g: Digraph, subset: Iterable[Hashable]) -> List[Hashable]:
    """Elements of ``subset`` from which no *other* subset element is reachable."""
    sub = list(dict.fromkeys(subset))
    result = []
    for n in sub:
        below = reachable_from(g, n)
        if not any(m in below for m in sub if m != n):
            result.append(n)
    return result


def minimal_elements(g: Digraph, subset: Iterable[Hashable]) -> List[Hashable]:
    """Elements of ``subset`` not reachable from any *other* subset element."""
    sub = list(dict.fromkeys(subset))
    result = []
    for n in sub:
        above = ancestors_of(g, n)
        if not any(m in above for m in sub if m != n):
            result.append(n)
    return result


def common_ancestors(g: Digraph, targets: Sequence[Hashable]) -> Set[Hashable]:
    """Nodes that reach every node in ``targets``.

    A target is considered an ancestor of itself for this purpose, so a
    single-element target set yields that element plus its proper
    ancestors (matching the Emrath/Ghosh/Padua usage where a sole
    candidate Post is its own "closest common ancestor").
    """
    if not targets:
        return set()
    sets = []
    for t in targets:
        s = ancestors_of(g, t)
        s.add(t)
        sets.append(s)
    result = set.intersection(*sets)
    return result


def closest_common_ancestors(g: Digraph, targets: Sequence[Hashable]) -> List[Hashable]:
    """The maximal (deepest) common ancestors of ``targets`` in a DAG."""
    commons = common_ancestors(g, targets)
    return maximal_elements(g, commons)
