"""Brute-force enumeration of feasible schedules (ground truth).

The engine in :mod:`repro.core.engine` answers targeted reachability
questions; this module instead *enumerates* every legal schedule, which
is only tractable for very small executions but gives a
definition-level computation of Table 1: build ``F`` explicitly, then
read each relation straight off its quantifier.  The property-based
tests compare the engine against this reference on random small
executions, and ``benchmarks/bench_table1_relations.py`` uses it to
regenerate Table 1 three independent ways.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.engine import Point
from repro.core.relations import RelationName
from repro.model.events import EventKind
from repro.model.execution import ProgramExecution
from repro.util.relations import BinaryRelation


def _engine_tables(exe: ProgramExecution, include_dependences: bool):
    """Shared precomputation (mirrors FeasibilityEngine's packing)."""
    n = len(exe)
    pre = [0] * n
    for eid in range(n):
        # program-order begin prerequisites come from the execution's
        # memory model (the adjacent predecessor under SC), mirroring
        # the engine's _begin_pre exactly
        for p in exe.po_begin_predecessors(eid):
            pre[eid] |= 1 << p
    for feid, children in exe.fork_children.items():
        for c in children:
            evs = exe.process_events(c)
            if evs:
                pre[evs[0]] |= 1 << feid
    if include_dependences:
        for a, b in exe.dependences:
            pre[b] |= 1 << a
    sem_index = {s: i for i, s in enumerate(exe.semaphores)}
    var_index = {v: i for i, v in enumerate(exe.event_variables)}
    var_init = 0
    for v in exe.event_variables:
        if exe.var_initially_posted(v):
            var_init |= 1 << var_index[v]
    sem_init = tuple(exe.sem_initial(s) for s in exe.semaphores)
    join_need = [0] * n
    for e in exe.events:
        if e.kind is EventKind.JOIN:
            need = 0
            for t in exe.join_targets[e.eid]:
                for x in exe.process_events(t):
                    need |= 1 << x
            join_need[e.eid] = need
    return pre, sem_index, var_index, var_init, sem_init, join_need


def _end_legal(exe, eid, ended, varmask, counts, sem_index, var_index, join_need) -> bool:
    e = exe.event(eid)
    k = e.kind
    if k is EventKind.SEM_P:
        return counts[sem_index[e.obj]] > 0
    if k is EventKind.WAIT:
        return bool((varmask >> var_index[e.obj]) & 1)
    if k is EventKind.JOIN:
        return not (join_need[eid] & ~ended)
    return True


def _apply_end(exe, eid, varmask, counts, sem_index, var_index):
    e = exe.event(eid)
    k = e.kind
    if k is EventKind.SEM_P:
        si = sem_index[e.obj]
        counts = counts[:si] + (counts[si] - 1,) + counts[si + 1 :]
    elif k is EventKind.SEM_V:
        si = sem_index[e.obj]
        counts = counts[:si] + (counts[si] + 1,) + counts[si + 1 :]
    elif k is EventKind.POST:
        varmask |= 1 << var_index[e.obj]
    elif k is EventKind.CLEAR:
        varmask &= ~(1 << var_index[e.obj])
    return varmask, counts


def enumerate_serial_schedules(
    exe: ProgramExecution,
    *,
    include_dependences: bool = True,
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield every legal *serial* schedule (each event atomic).

    These are the collapsed members of ``F``; by the serialization
    lemma they decide every could-have-happened-before question.
    """
    n = len(exe)
    full = (1 << n) - 1
    pre, sem_index, var_index, var_init, sem_init, join_need = _engine_tables(
        exe, include_dependences
    )
    count = 0

    def rec(ended: int, varmask: int, counts, prefix: List[int]):
        nonlocal count
        if limit is not None and count >= limit:
            return
        if ended == full:
            count += 1
            yield tuple(prefix)
            return
        for eid in range(n):
            bit = 1 << eid
            if ended & bit or (pre[eid] & ~ended):
                continue
            if not _end_legal(exe, eid, ended, varmask, counts, sem_index, var_index, join_need):
                continue
            vm2, c2 = _apply_end(exe, eid, varmask, counts, sem_index, var_index)
            prefix.append(eid)
            yield from rec(ended | bit, vm2, c2, prefix)
            prefix.pop()

    yield from rec(0, var_init, sem_init, [])


def enumerate_point_schedules(
    exe: ProgramExecution,
    *,
    include_dependences: bool = True,
    limit: Optional[int] = None,
) -> Iterator[Tuple[Point, ...]]:
    """Yield every legal complete *point* schedule (all events treated
    as intervals).  Exponential in ``2|E|`` -- tiny inputs only."""
    n = len(exe)
    full = (1 << n) - 1
    pre, sem_index, var_index, var_init, sem_init, join_need = _engine_tables(
        exe, include_dependences
    )
    count = 0

    def rec(begun: int, ended: int, varmask: int, counts, prefix: List[Point]):
        nonlocal count
        if limit is not None and count >= limit:
            return
        if ended == full:
            count += 1
            yield tuple(prefix)
            return
        for eid in range(n):
            bit = 1 << eid
            if not (begun & bit) and not (pre[eid] & ~ended):
                prefix.append(Point(eid, False))
                yield from rec(begun | bit, ended, varmask, counts, prefix)
                prefix.pop()
            if (begun & bit) and not (ended & bit):
                if _end_legal(exe, eid, ended, varmask, counts, sem_index, var_index, join_need):
                    vm2, c2 = _apply_end(exe, eid, varmask, counts, sem_index, var_index)
                    prefix.append(Point(eid, True))
                    yield from rec(begun, ended | bit, vm2, c2, prefix)
                    prefix.pop()

    yield from rec(0, 0, var_init, sem_init, [])


def count_serial_schedules(
    exe: ProgramExecution,
    *,
    include_dependences: bool = True,
) -> int:
    """The number of legal serial schedules -- the size of the
    collapsed feasible set.

    Counting with memoization on (ended, varstate, counts) is far
    cheaper than enumeration: states are shared across the
    exponentially many schedules, so this scales to executions whose
    schedule count is astronomically large (the count is exact -- it is
    the number of *paths*, computed per state).
    """
    n = len(exe)
    full = (1 << n) - 1
    pre, sem_index, var_index, var_init, sem_init, join_need = _engine_tables(
        exe, include_dependences
    )
    memo: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}

    def rec(ended: int, varmask: int, counts) -> int:
        if ended == full:
            return 1
        key = (ended, varmask, counts)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 0
        for eid in range(n):
            bit = 1 << eid
            if ended & bit or (pre[eid] & ~ended):
                continue
            if not _end_legal(exe, eid, ended, varmask, counts, sem_index, var_index, join_need):
                continue
            vm2, c2 = _apply_end(exe, eid, varmask, counts, sem_index, var_index)
            total += rec(ended | bit, vm2, c2)
        memo[key] = total
        return total

    return rec(0, var_init, sem_init)


def relations_by_enumeration(
    exe: ProgramExecution,
    *,
    include_dependences: bool = True,
    limit: Optional[int] = None,
) -> Dict[RelationName, BinaryRelation]:
    """Compute all six relations straight from their definitions.

    Builds ``F`` explicitly (every legal point schedule), derives each
    schedule's ``T``, and evaluates Table 1's quantifiers.  With an
    empty ``F``, must-have relations hold vacuously for all pairs and
    could-have relations are empty -- mirroring the query layer.
    """
    n = len(exe)
    pairs = [(a, b) for a in range(n) for b in range(n) if a != b]
    # accumulate per-pair evidence
    any_schedule = False
    ex_hb = set()  # exists schedule with a ->T b
    ex_cw = set()  # exists schedule with a || b
    all_hb = set(pairs)
    all_cw = set(pairs)
    for sched in enumerate_point_schedules(
        exe, include_dependences=include_dependences, limit=limit
    ):
        any_schedule = True
        pos = {p: i for i, p in enumerate(sched)}
        for a, b in pairs:
            hb = pos[Point(a, True)] < pos[Point(b, False)]
            hb_rev = pos[Point(b, True)] < pos[Point(a, False)]
            cw = not hb and not hb_rev
            if hb:
                ex_hb.add((a, b))
            else:
                all_hb.discard((a, b))
            if cw:
                ex_cw.add((a, b))
            else:
                all_cw.discard((a, b))
    if not any_schedule:
        all_hb = set(pairs)
        all_cw = set(pairs)
    ex_ow = {(a, b) for (a, b) in pairs if (a, b) in ex_hb or (b, a) in ex_hb}
    all_ow = {(a, b) for (a, b) in pairs if (a, b) not in ex_cw}
    universe = range(n)
    return {
        RelationName.MHB: BinaryRelation(universe, all_hb),
        RelationName.CHB: BinaryRelation(universe, ex_hb),
        RelationName.MCW: BinaryRelation(universe, all_cw),
        RelationName.CCW: BinaryRelation(universe, ex_cw),
        RelationName.MOW: BinaryRelation(universe, all_ow),
        RelationName.COW: BinaryRelation(universe, ex_ow),
    }
