"""Experiment X3 -- the single-counting-semaphore remark.

"The above results can be shown to hold for a program execution that
uses a single counting semaphore by a reduction from the problem of
sequencing to minimize maximum cumulative cost" (Garey & Johnson SS7).

Regenerated as: random SS7 instances (forest precedence, the fragment
fork/join can encode) are solved exactly, then mapped to one-semaphore
executions; instance schedulability must coincide with the execution's
``a CHB b`` answer on every instance.  The timed body covers both
directions; a size sweep shows the ordering query tracking the SS7
search.
"""

import time

from conftest import report, table

from repro.core.queries import OrderingQueries
from repro.reductions.seqmaxcost import greedy_seqmaxcost, random_instance, solve_seqmaxcost
from repro.reductions.single_semaphore import single_semaphore_reduction

SIZES = [4, 6, 8]
SEEDS = range(6)


def run_study():
    rows = []
    for n in SIZES:
        for seed in SEEDS:
            inst = random_instance(n, seed=seed, max_cost=2, threshold=1)
            t0 = time.perf_counter()
            exact = solve_seqmaxcost(inst) is not None
            t_ss7 = time.perf_counter() - t0
            greedy = greedy_seqmaxcost(inst) is not None
            exe, a, b = single_semaphore_reduction(inst)
            q = OrderingQueries(exe)
            t0 = time.perf_counter()
            chb = q.chb(a, b)
            t_ord = time.perf_counter() - t0
            rows.append(
                dict(
                    n=n, seed=seed, events=len(exe), exact=exact, greedy=greedy,
                    chb=chb, t_ss7=t_ss7, t_ord=t_ord,
                    states=q.stats.states_visited,
                )
            )
    return rows


def test_single_semaphore_equivalence(benchmark):
    rows = benchmark(run_study)

    greedy_misses = 0
    for r in rows:
        assert r["chb"] == r["exact"]  # the reduction's equivalence
        if r["exact"] and not r["greedy"]:
            greedy_misses += 1

    body = [
        [
            r["n"], r["seed"], r["events"],
            "yes" if r["exact"] else "no",
            "yes" if r["greedy"] else "no",
            r["chb"], r["states"],
            f"{r['t_ss7'] * 1e3:.1f}ms", f"{r['t_ord'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["jobs", "seed", "|E|", "SS7 exact", "greedy", "a CHB b", "states",
         "SS7 time", "ordering time"],
        body,
    )
    lines.append("")
    lines.append("a CHB b == SS7 schedulability on every instance (asserted);")
    lines.append(f"the incomplete greedy heuristic missed {greedy_misses} feasible instance(s)")
    report("single_semaphore", lines)
