"""A DPLL SAT solver.

Unit propagation, pure-literal elimination, and a most-occurrences
branching heuristic.  Intentionally classic: the point is an
*independent* decision procedure to validate the theorem reductions
against, not a competitive solver; formulas in the benchmarks are tens
of variables at most.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sat.cnf import CNF, Assignment


@dataclass
class SolveStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


class SolveBudgetExceeded(RuntimeError):
    """The solver ran out of decisions or wall-clock before deciding.

    Mirrors :class:`~repro.core.engine.SearchBudgetExceeded` so budgeted
    callers can treat both exact procedures uniformly; ``resource``
    names what ran out (``"decisions"``, ``"deadline"`` or
    ``"clauses"`` for an encoding-size cap).
    """

    def __init__(self, message: str = "solve budget exceeded", *, resource: str = "decisions"):
        super().__init__(message)
        self.resource = resource


class DPLLSolver:
    """Decides satisfiability and produces a model when one exists.

    ``max_decisions`` caps branching decisions and ``deadline`` is an
    absolute :func:`time.monotonic` instant (matching
    :class:`~repro.budget.Budget` semantics); exceeding either raises
    :class:`SolveBudgetExceeded` -- never a wrong answer.
    """

    def __init__(
        self,
        cnf: CNF,
        *,
        max_decisions: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        self.cnf = cnf
        self.stats = SolveStats()
        self.max_decisions = max_decisions
        self.deadline = deadline

    # ------------------------------------------------------------------
    def solve(self) -> Optional[Assignment]:
        """A satisfying assignment (totalized over all variables), or None."""
        clauses = [frozenset(c.literals) for c in self.cnf.clauses]
        if any(len(c) == 0 for c in clauses):
            return None
        result = self._dpll(clauses, {})
        if result is None:
            return None
        # totalize: unconstrained variables default to False
        for v in self.cnf.variables:
            result.setdefault(v, False)
        return result

    def is_satisfiable(self) -> bool:
        return self.solve() is not None

    # ------------------------------------------------------------------
    def _simplify(
        self, clauses: List[FrozenSet[int]], lit: int
    ) -> Optional[List[FrozenSet[int]]]:
        """Assign ``lit`` true: drop satisfied clauses, shrink the rest.
        Returns None on an empty-clause conflict."""
        out: List[FrozenSet[int]] = []
        for c in clauses:
            if lit in c:
                continue
            if -lit in c:
                reduced = c - {-lit}
                if not reduced:
                    self.stats.conflicts += 1
                    return None
                out.append(reduced)
            else:
                out.append(c)
        return out

    def _dpll(
        self, clauses: List[FrozenSet[int]], assignment: Assignment
    ) -> Optional[Assignment]:
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise SolveBudgetExceeded(
                f"solve deadline expired after {self.stats.decisions} decisions",
                resource="deadline",
            )
        # unit propagation ------------------------------------------------
        while True:
            unit = next((c for c in clauses if len(c) == 1), None)
            if unit is None:
                break
            lit = next(iter(unit))
            self.stats.propagations += 1
            assignment = {**assignment, abs(lit): lit > 0}
            simplified = self._simplify(clauses, lit)
            if simplified is None:
                return None
            clauses = simplified

        if not clauses:
            return dict(assignment)

        # pure literal elimination ---------------------------------------
        polarity: Dict[int, Set[bool]] = {}
        for c in clauses:
            for lit in c:
                polarity.setdefault(abs(lit), set()).add(lit > 0)
        pure = [v if pol == {True} else -v for v, pol in polarity.items() if len(pol) == 1]
        if pure:
            for lit in pure:
                assignment = {**assignment, abs(lit): lit > 0}
                simplified = self._simplify(clauses, lit)
                if simplified is None:  # pragma: no cover - pure literals cannot conflict
                    return None
                clauses = simplified
            return self._dpll(clauses, assignment)

        # branch on the most frequent literal -----------------------------
        counts: Dict[int, int] = {}
        for c in clauses:
            for lit in c:
                counts[lit] = counts.get(lit, 0) + 1
        branch = max(counts, key=lambda l: (counts[l], -abs(l), l > 0))
        self.stats.decisions += 1
        if self.max_decisions is not None and self.stats.decisions > self.max_decisions:
            raise SolveBudgetExceeded(
                f"decision cap {self.max_decisions} exceeded", resource="decisions"
            )
        for lit in (branch, -branch):
            simplified = self._simplify(clauses, lit)
            if simplified is None:
                continue
            result = self._dpll(simplified, {**assignment, abs(lit): lit > 0})
            if result is not None:
                return result
        return None


def solve(cnf: CNF) -> Optional[Assignment]:
    """Module-level convenience: model or None."""
    return DPLLSolver(cnf).solve()
