"""Small self-contained graph and ordering utilities.

Everything in this package is implemented from scratch (no networkx
dependency in the core library) so that the reproduction is
self-contained.  The benchmark harness may still use numpy for
aggregate statistics.
"""

from repro.util.graphs import (
    Digraph,
    CycleError,
    topological_sort,
    transitive_closure,
    transitive_reduction,
    reachable_from,
    ancestors_of,
    is_acyclic,
    maximal_elements,
    minimal_elements,
    common_ancestors,
    closest_common_ancestors,
)
from repro.util.relations import (
    BinaryRelation,
    relation_from_pairs,
    is_transitive,
    is_irreflexive,
    is_symmetric,
    is_antisymmetric,
    is_strict_partial_order,
)

__all__ = [
    "Digraph",
    "CycleError",
    "topological_sort",
    "transitive_closure",
    "transitive_reduction",
    "reachable_from",
    "ancestors_of",
    "is_acyclic",
    "maximal_elements",
    "minimal_elements",
    "common_ancestors",
    "closest_common_ancestors",
    "BinaryRelation",
    "relation_from_pairs",
    "is_transitive",
    "is_irreflexive",
    "is_symmetric",
    "is_antisymmetric",
    "is_strict_partial_order",
]
