"""Seeded random execution generators.

Executions are generated *schedule-first*: a random legal serial
schedule of synchronization operations is grown step by step (only
operations that can complete in the current synchronization state are
eligible), then the operations are attributed to processes and the
schedule becomes the execution's observed schedule.  Feasibility is
therefore guaranteed by construction -- every generated execution has a
non-empty ``F`` -- which the soundness benchmarks rely on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.builder import ExecutionBuilder
from repro.model.execution import ProgramExecution


def _build_from_plan(
    plan: Dict[str, List[Tuple[str, Optional[str]]]],
    schedule_names: List[Tuple[str, int]],
    *,
    sem_initial: Dict[str, int],
    posted_vars: Sequence[str] = (),
    dependences: Sequence[Tuple[Tuple[str, int], Tuple[str, int]]] = (),
) -> ProgramExecution:
    """Assemble an execution from per-process op lists plus a schedule.

    ``plan[proc]`` is a list of ``(op, obj)`` pairs where op is one of
    ``P V post wait clear skip read:<var> write:<var>``;
    ``schedule_names`` lists ``(proc, index)`` in completion order.
    """
    b = ExecutionBuilder()
    for sem, init in sem_initial.items():
        b.semaphore(sem, init)
    for v in posted_vars:
        b.event_variable(v, posted=True)
    eids: Dict[Tuple[str, int], int] = {}
    for proc, ops in plan.items():
        pb = b.process(proc)
        for i, (op, obj) in enumerate(ops):
            if op == "P":
                eid = pb.sem_p(obj)
            elif op == "V":
                eid = pb.sem_v(obj)
            elif op == "post":
                eid = pb.post(obj)
            elif op == "wait":
                eid = pb.wait(obj)
            elif op == "clear":
                eid = pb.clear(obj)
            elif op == "skip":
                eid = pb.skip()
            elif op.startswith("read:"):
                eid = pb.read(op.split(":", 1)[1])
            elif op.startswith("write:"):
                eid = pb.write(op.split(":", 1)[1])
            else:  # pragma: no cover - generator internal
                raise AssertionError(op)
            eids[(proc, i)] = eid
    for (pa, ia), (pb_, ib) in dependences:
        b.dependence(eids[(pa, ia)], eids[(pb_, ib)])
    observed = [eids[key] for key in schedule_names]
    return b.build(observed_schedule=observed)


def random_semaphore_execution(
    *,
    processes: int = 3,
    events_per_process: int = 4,
    semaphores: int = 2,
    seed: int = 0,
    p_fraction: float = 0.45,
    initial_counts: Optional[Dict[str, int]] = None,
) -> ProgramExecution:
    """A random feasible semaphore execution (schedule-first).

    At each step a process is chosen and performs either a ``V`` or --
    when some semaphore currently has a token -- a ``P`` on a random
    non-empty semaphore.  The resulting serial schedule is legal by
    construction.
    """
    rng = random.Random(seed)
    sems = [f"s{k}" for k in range(semaphores)]
    counts = {s: 0 for s in sems}
    if initial_counts:
        counts.update(initial_counts)
    sem_initial = dict(counts)
    remaining = {f"p{i}": events_per_process for i in range(processes)}
    plan: Dict[str, List[Tuple[str, Optional[str]]]] = {p: [] for p in remaining}
    schedule: List[Tuple[str, int]] = []
    while any(remaining.values()):
        proc = rng.choice([p for p, r in remaining.items() if r > 0])
        nonempty = [s for s in sems if counts[s] > 0]
        if nonempty and rng.random() < p_fraction:
            s = rng.choice(nonempty)
            counts[s] -= 1
            op = ("P", s)
        else:
            s = rng.choice(sems)
            counts[s] += 1
            op = ("V", s)
        idx = len(plan[proc])
        plan[proc].append(op)
        schedule.append((proc, idx))
        remaining[proc] -= 1
    return _build_from_plan(plan, schedule, sem_initial=sem_initial)


def random_event_execution(
    *,
    processes: int = 3,
    events_per_process: int = 4,
    variables: int = 2,
    seed: int = 0,
    clear_fraction: float = 0.2,
) -> ProgramExecution:
    """A random feasible Post/Wait/Clear execution (schedule-first)."""
    rng = random.Random(seed)
    evars = [f"v{k}" for k in range(variables)]
    posted = {v: False for v in evars}
    remaining = {f"p{i}": events_per_process for i in range(processes)}
    plan: Dict[str, List[Tuple[str, Optional[str]]]] = {p: [] for p in remaining}
    schedule: List[Tuple[str, int]] = []
    while any(remaining.values()):
        proc = rng.choice([p for p, r in remaining.items() if r > 0])
        roll = rng.random()
        posted_vars = [v for v in evars if posted[v]]
        if posted_vars and roll < 0.4:
            op = ("wait", rng.choice(posted_vars))
        elif roll < 0.4 + clear_fraction:
            v = rng.choice(evars)
            posted[v] = False
            op = ("clear", v)
        else:
            v = rng.choice(evars)
            posted[v] = True
            op = ("post", v)
        idx = len(plan[proc])
        plan[proc].append(op)
        schedule.append((proc, idx))
        remaining[proc] -= 1
    return _build_from_plan(plan, schedule, sem_initial={})


def random_computation_overlay(
    *,
    processes: int = 3,
    events_per_process: int = 4,
    semaphores: int = 1,
    shared_vars: int = 2,
    seed: int = 0,
    access_fraction: float = 0.5,
) -> ProgramExecution:
    """A mixed workload: semaphore sync plus shared reads/writes.

    Computation events carry accesses to random shared variables, and
    ``D`` is derived from the generated schedule's access order --
    producing executions where ordering answers genuinely differ with
    ``include_dependences`` on/off (the Section 5.3 benchmark's input).
    """
    rng = random.Random(seed)
    sems = [f"s{k}" for k in range(semaphores)]
    counts = {s: 0 for s in sems}
    svars = [f"x{k}" for k in range(shared_vars)]
    remaining = {f"p{i}": events_per_process for i in range(processes)}
    plan: Dict[str, List[Tuple[str, Optional[str]]]] = {p: [] for p in remaining}
    schedule: List[Tuple[str, int]] = []
    accesses: List[Tuple[str, int, str, bool]] = []  # (proc, idx, var, is_write)
    while any(remaining.values()):
        proc = rng.choice([p for p, r in remaining.items() if r > 0])
        roll = rng.random()
        idx = len(plan[proc])
        if roll < access_fraction:
            var = rng.choice(svars)
            is_write = rng.random() < 0.5
            plan[proc].append((f"{'write' if is_write else 'read'}:{var}", None))
            accesses.append((proc, idx, var, is_write))
        else:
            nonempty = [s for s in sems if counts[s] > 0]
            if nonempty and rng.random() < 0.5:
                s = rng.choice(nonempty)
                counts[s] -= 1
                plan[proc].append(("P", s))
            else:
                s = rng.choice(sems)
                counts[s] += 1
                plan[proc].append(("V", s))
        schedule.append((proc, idx))
        remaining[proc] -= 1
    # derive D from schedule order of conflicting accesses
    pos = {key: i for i, key in enumerate(schedule)}
    deps = []
    for i, (pa, ia, va, wa) in enumerate(accesses):
        for pb_, ib, vb, wb in accesses[i + 1 :]:
            if va == vb and (wa or wb):
                first, second = ((pa, ia), (pb_, ib))
                if pos[first] > pos[second]:
                    first, second = second, first
                deps.append((first, second))
    return _build_from_plan(
        plan, schedule, sem_initial={s: 0 for s in sems}, dependences=deps
    )


def random_forkjoin_program(
    *,
    depth: int = 2,
    max_children: int = 2,
    ops_per_process: int = 2,
    semaphores: int = 1,
    seed: int = 0,
):
    """A random program with nested fork/join plus semaphore traffic.

    Returns a :class:`~repro.lang.ast.Program`.  Every ``P`` is paired
    with an earlier-declared supply: the root seeds each semaphore with
    enough initial tokens to cover all consumers, so every run
    completes (deadlock-free by construction) -- run it through the
    interpreter to obtain feasible executions with genuine fork/join
    nesting, which the flat schedule-first generators cannot produce.
    """
    from repro.lang.ast import Fork, Join, ProcessDef, Program, SemP, SemV, Skip

    rng = random.Random(seed)
    sems = [f"s{k}" for k in range(semaphores)]
    p_count = {s: 0 for s in sems}
    counter = [0]

    def make_body(level: int):
        body = []
        for _ in range(ops_per_process):
            roll = rng.random()
            s = rng.choice(sems)
            if roll < 0.3:
                body.append(SemV(s))
            elif roll < 0.6:
                body.append(SemP(s))
                p_count[s] += 1
            else:
                body.append(Skip())
        if level < depth and rng.random() < 0.7:
            children = []
            for _ in range(rng.randint(1, max_children)):
                counter[0] += 1
                children.append(ProcessDef(f"t{counter[0]}", make_body(level + 1)))
            body.append(Fork(children))
            body.append(Join())
        return body

    root = ProcessDef("root", make_body(0))
    # seed enough tokens for every P: V supply inside the tree may be
    # unreachable before a given P, so over-provision initial counts
    return Program([root], sem_initial={s: p_count[s] for s in sems})


def random_full_program(
    *,
    seed: int = 0,
    processes: int = 3,
    statements_per_process: int = 4,
    shared_vars: int = 2,
    semaphores: int = 1,
):
    """A random program exercising the whole statement grammar.

    Used for interpreter fuzzing: assignments, conditionals over shared
    state, bounded whiles, semaphore traffic (deadlock-free: every
    semaphore is seeded with enough tokens for all its ``P``\\ s) and
    local variables.  Returns a :class:`~repro.lang.ast.Program`.
    """
    from repro.lang.ast import (
        Assign, BinOp, Const, If, LocalAssign, Local, ProcessDef, Program,
        SemP, SemV, Shared, Skip, While,
    )

    rng = random.Random(seed)
    svars = [f"x{k}" for k in range(shared_vars)]
    sems = [f"s{k}" for k in range(semaphores)]
    p_needed = {s: 0 for s in sems}

    def expr(depth=1):
        roll = rng.random()
        if depth == 0 or roll < 0.4:
            return rng.choice(
                [Const(rng.randint(0, 3)), Shared(rng.choice(svars)), Local("t")]
            )
        op = rng.choice(["+", "-", "*", "==", "<", ">="])
        return BinOp(op, expr(depth - 1), expr(depth - 1))

    def stmt(depth=1):
        roll = rng.random()
        if roll < 0.30:
            return Assign(rng.choice(svars), expr())
        if roll < 0.40:
            return LocalAssign("t", expr())
        if roll < 0.50:
            return Skip()
        if roll < 0.62:
            s = rng.choice(sems)
            return SemV(s)
        if roll < 0.74:
            s = rng.choice(sems)
            p_needed[s] += 1
            return SemP(s)
        if roll < 0.90 and depth > 0:
            return If(expr(), [stmt(depth - 1)], [stmt(depth - 1)])
        if depth > 0:
            # a bounded countdown loop over a local variable
            return While(
                BinOp("<", Local("i"), Const(0)),  # never entered; shape only
                [stmt(depth - 1)],
            )
        return Skip()

    defs = [
        ProcessDef(f"p{i}", [stmt() for _ in range(statements_per_process)])
        for i in range(processes)
    ]
    return Program(defs, sem_initial={s: p_needed[s] for s in sems})


def random_forkjoin_execution(*, seed: int = 0, **kw):
    """A feasible execution with nested fork/join (simulator-produced)."""
    from repro.lang.interpreter import run_program

    program = random_forkjoin_program(seed=seed, **kw)
    return run_program(program, seed).to_execution()


def independent_processes_execution(
    *, processes: int = 4, events_per_process: int = 3
) -> ProgramExecution:
    """No synchronization at all: the engine's easy case (used by the
    scaling benchmark as the polynomial-behaviour contrast)."""
    b = ExecutionBuilder()
    eids = []
    for i in range(processes):
        pb = b.process(f"p{i}")
        for _ in range(events_per_process):
            eids.append(pb.skip())
    return b.build(observed_schedule=sorted(eids))
