"""DPLL solver vs exhaustive ground truth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.bruteforce import all_models, brute_force_satisfiable, count_models
from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver, solve
from repro.sat.generators import (
    all_assignment_formula,
    chain_formula,
    pigeonhole,
    random_ksat,
)


class TestKnownFormulas:
    def test_trivially_sat(self):
        model = solve(CNF([(1, 2, 3)]))
        assert model is not None
        assert CNF([(1, 2, 3)]).evaluate(model)

    def test_contradiction(self):
        assert solve(CNF([(1,), (-1,)])) is None

    def test_empty_clause_unsat(self):
        assert solve(CNF([[]], num_vars=1)) is None

    def test_empty_formula_sat(self):
        assert solve(CNF([], num_vars=3)) is not None

    def test_model_totalized(self):
        model = solve(CNF([(1,)], num_vars=5))
        assert set(model) == {1, 2, 3, 4, 5}

    def test_unit_propagation_chain(self):
        f = chain_formula(8)
        model = solve(f)
        assert model is not None and all(model[v] for v in range(1, 9))

    def test_unsat_chain(self):
        assert solve(chain_formula(6, satisfiable=False)) is None

    def test_pigeonhole_unsat(self):
        assert solve(pigeonhole(2)) is None
        assert solve(pigeonhole(3)) is None

    def test_all_assignment_formula(self):
        f = all_assignment_formula(3)
        assert count_models(f) == 8

    def test_stats_recorded(self):
        s = DPLLSolver(pigeonhole(2))
        s.solve()
        assert s.stats.decisions + s.stats.propagations > 0


class TestAgainstBruteForce:
    @given(
        st.integers(1, 4),
        st.integers(1, 8),
        st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_formulas(self, n, m, seed):
        f = random_ksat(max(n, 3), m, seed=seed)
        dpll = solve(f)
        brute = brute_force_satisfiable(f)
        assert (dpll is not None) == (brute is not None)
        if dpll is not None:
            assert f.evaluate(dpll)

    @given(st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_duplicate_variable_clauses(self, seed):
        f = random_ksat(2, 5, seed=seed, allow_duplicate_vars=True)
        assert (solve(f) is not None) == (brute_force_satisfiable(f) is not None)


class TestBruteForce:
    def test_all_models_are_models(self):
        f = random_ksat(3, 4, seed=7)
        models = list(all_models(f))
        for m in models:
            assert f.evaluate(m)

    def test_model_count_matches_truth_table(self):
        f = CNF([(1, 2)], num_vars=2)
        assert count_models(f) == 3

    def test_empty_clause_no_models(self):
        assert list(all_models(CNF([[]], num_vars=2))) == []


class TestGenerators:
    def test_random_ksat_reproducible(self):
        assert random_ksat(4, 6, seed=5) == random_ksat(4, 6, seed=5)

    def test_random_ksat_distinct_vars(self):
        f = random_ksat(5, 20, seed=1)
        for c in f.clauses:
            assert len(c.variables) == 3

    def test_random_ksat_too_few_vars_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            random_ksat(2, 3)

    def test_pigeonhole_structure(self):
        f = pigeonhole(3)
        assert f.num_vars == 12
        assert len(f) == 4 + 3 * 6  # per-pigeon + per-hole pairs

    def test_chain_sat_flag(self):
        assert solve(chain_formula(4, satisfiable=True)) is not None
        assert solve(chain_formula(4, satisfiable=False)) is None
