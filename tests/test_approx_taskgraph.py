"""Tests for the Emrath/Ghosh/Padua task graph."""

import pytest
from hypothesis import given, settings

from repro.approx.taskgraph import TaskGraph, TaskGraphEdge
from repro.core.queries import OrderingQueries
from repro.model.builder import ExecutionBuilder
from repro.workloads.programs import figure1_execution

from tests.strategies import small_event_executions


def fork_two_posters_one_waiter():
    b = ExecutionBuilder()
    main = b.process("main")
    f = main.fork()
    p1 = b.process("t1", parent=f).post("ev")
    p2 = b.process("t2", parent=f).post("ev")
    w = b.process("t3", parent=f).wait("ev")
    j = main.join(f)
    return b.build(), f.eid, p1, p2, w, j


class TestStructuralEdges:
    def test_machine_edges(self):
        b = ExecutionBuilder()
        p = b.process("p")
        a, c = p.post("v"), p.wait("v")
        tg = TaskGraph(b.build())
        assert (a, c) in tg.edge_kinds
        assert tg.edge_kinds[(a, c)] is TaskGraphEdge.MACHINE

    def test_machine_edges_skip_computation(self):
        b = ExecutionBuilder()
        p = b.process("p")
        a = p.post("v")
        p.skip()  # not a task-graph node
        c = p.clear("v")
        tg = TaskGraph(b.build())
        assert tg.edge_kinds[(a, c)] is TaskGraphEdge.MACHINE
        assert len(tg.nodes) == 2

    def test_task_start_and_end_edges(self):
        exe, f, p1, p2, w, j = fork_two_posters_one_waiter()
        tg = TaskGraph(exe)
        assert tg.edge_kinds[(f, p1)] is TaskGraphEdge.TASK_START
        assert tg.edge_kinds[(p1, j)] is TaskGraphEdge.TASK_END

    def test_task_with_no_sync_events_bridged(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        b.process("c", parent=f).skip()
        j = main.join(f)
        tg = TaskGraph(b.build())
        assert tg.guaranteed_ordering(f.eid, j)


class TestSynchronizationEdges:
    def test_single_candidate_post_direct_edge(self):
        b = ExecutionBuilder()
        post = b.process("A").post("v")
        wait = b.process("B").wait("v")
        tg = TaskGraph(b.build())
        assert tg.guaranteed_ordering(post, wait)
        assert tg.edge_kinds[(post, wait)] is TaskGraphEdge.SYNCHRONIZATION

    def test_two_candidates_edge_from_common_ancestor(self):
        exe, f, p1, p2, w, j = fork_two_posters_one_waiter()
        tg = TaskGraph(exe)
        # neither post individually guaranteed before the wait
        assert not tg.guaranteed_ordering(p1, w)
        assert not tg.guaranteed_ordering(p2, w)
        # but their closest common ancestor (the fork) is
        assert (f, w) in tg.edge_kinds

    def test_cleared_post_not_candidate(self):
        # EGP's exclusion: a Post whose (only) path to the Wait passes a
        # Clear of the same variable cannot have triggered the Wait.
        # A: post(v); clear(v); post(w) -- B: wait(w); wait(v) -- C: post2(v)
        # Every path post(v) -> wait(v) goes post(v) -> clear(v) ->
        # post(w) -> wait(w) -> wait(v), through the Clear, so only C's
        # post2 is a candidate and gets the direct sync edge.
        b = ExecutionBuilder()
        a = b.process("A")
        post = a.post("v")
        clear = a.clear("v")
        post_w = a.post("w")
        proc_b = b.process("B")
        wait_w = proc_b.wait("w")
        wait_v = proc_b.wait("v")
        post2 = b.process("C").post("v")
        tg = TaskGraph(b.build())
        assert tg.edge_kinds.get((post2, wait_v)) is TaskGraphEdge.SYNCHRONIZATION
        assert (post, wait_v) not in tg.edge_kinds
        # sanity: the path through the clear exists
        assert tg.guaranteed_ordering(post, wait_w)

    def test_wait_preceding_post_excluded(self):
        # wait before post in the same process: the post cannot trigger it
        b = ExecutionBuilder()
        p = b.process("p")
        w = p.wait("v")
        post = p.post("v")
        other = b.process("q").post("v")
        tg = TaskGraph(b.build())
        # candidate set is {other} only -> direct sync edge
        assert tg.edge_kinds.get((other, w)) is TaskGraphEdge.SYNCHRONIZATION

    def test_non_sync_query_rejected(self):
        b = ExecutionBuilder()
        p = b.process("p")
        s = p.skip()
        post = p.post("v")
        tg = TaskGraph(b.build())
        with pytest.raises(ValueError):
            tg.guaranteed_ordering(s, post)


class TestFigure1:
    def test_posts_unordered_in_graph_but_must_ordered(self):
        """The paper's counterexample, end to end."""
        exe = figure1_execution()
        pl = exe.by_label("post_left").eid
        pr = exe.by_label("post_right").eid
        tg = TaskGraph(exe)
        assert not tg.guaranteed_ordering(pl, pr)
        assert not tg.guaranteed_ordering(pr, pl)
        q = OrderingQueries(exe)
        assert q.mhb(pl, pr)  # the dependence chain orders them

    def test_graph_edge_inventory(self):
        exe = figure1_execution()
        tg = TaskGraph(exe)
        kinds = {k for k in tg.edge_kinds.values()}
        assert TaskGraphEdge.TASK_START in kinds
        assert TaskGraphEdge.TASK_END in kinds

    def test_describe_renders(self):
        out = TaskGraph(figure1_execution()).describe()
        assert "task graph" in out and "->" in out


class TestSoundnessOnDependenceFreeWorkloads:
    @given(small_event_executions())
    @settings(max_examples=15, deadline=None)
    def test_graph_orderings_hold_without_dependences(self, exe):
        """On executions with no shared data, EGP's claimed orderings
        should be genuine completion orderings (we verify against the
        exact engine).  With dependences the method can *miss*
        orderings (Figure 1) -- missing is measured in the benchmark,
        soundness is asserted here."""
        tg = TaskGraph(exe)
        q = OrderingQueries(exe)
        if not q.has_feasible_execution():
            return
        for a, b in tg.ordering_relation().pairs:
            assert q.mcb(a, b), (a, b)
