"""Public API surface tests: everything the README promises imports
from the top-level package and works end to end."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestEndToEnd:
    def test_quickstart_docstring_flow(self):
        b = repro.ExecutionBuilder()
        p1, p2 = b.process("p1"), b.process("p2")
        v = p1.sem_v("s")
        p = p2.sem_p("s")
        q = repro.OrderingQueries(b.build())
        assert q.chb(v, p)
        assert not q.chb(p, v)
        assert q.ccw(v, p)

    def test_program_to_relations_pipeline(self):
        from repro.lang.ast import Assign, Const, ProcessDef, SemP, SemV

        prog = repro.Program(
            [
                ProcessDef("w", [Assign("x", Const(1)), SemV("done")]),
                ProcessDef("r", [SemP("done"), Assign("y", Const(2))]),
            ]
        )
        trace = repro.run_program(prog, 0)
        exe = trace.to_execution()
        repro.validate_execution(exe)
        ana = repro.OrderingAnalyzer(exe)
        summary = ana.summary()
        assert set(summary) == {r.name for r in repro.ALL_RELATIONS}

    def test_sat_reduction_round_trip(self):
        f = repro.CNF([(1, 2, 3)])
        red = repro.semaphore_reduction(f)
        assert repro.decide_sat_via_ordering(red) == (repro.sat_solve(f) is not None)

    def test_race_detector_runs(self):
        from repro.workloads import figure1_execution

        detector = repro.RaceDetector(figure1_execution())
        assert detector.apparent_races().races

    def test_matrix_rendering(self):
        b = repro.ExecutionBuilder()
        b.process("p").skip()
        b.process("q").skip()
        ana = repro.OrderingAnalyzer(b.build())
        out = ana.matrix(repro.RelationName.CHB)
        assert "X" in out
