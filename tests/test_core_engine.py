"""Unit + property tests for the feasibility engine."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget import Budget
from repro.core.engine import (
    TERMINATED_COMPLETE,
    TERMINATED_DEADLINE,
    TERMINATED_STATES,
    FeasibilityEngine,
    Point,
    SearchBudgetExceeded,
    SearchStats,
    begin_point,
    end_point,
)
from repro.core.witness import replay_schedule
from repro.model.builder import ExecutionBuilder
from repro.workloads.generators import (
    random_event_execution,
    random_semaphore_execution,
)

from tests.strategies import medium_semaphore_executions, small_event_executions


class TestBasicSearch:
    def test_single_event(self):
        b = ExecutionBuilder()
        b.process("p").skip()
        pts = FeasibilityEngine(b.build()).search()
        assert pts == [Point(0, False), Point(0, True)]

    def test_program_order_respected(self):
        b = ExecutionBuilder()
        p = b.process("p")
        p.skip(), p.skip()
        pts = FeasibilityEngine(b.build()).search()
        assert pts.index(Point(0, True)) < pts.index(Point(1, False))

    def test_deadlock_returns_none(self):
        b = ExecutionBuilder()
        b.process("p").sem_p("nothing")
        assert FeasibilityEngine(b.build()).search() is None

    def test_cross_deadlock_returns_none(self):
        # each process waits on a variable only the other would post later
        b = ExecutionBuilder()
        p1, p2 = b.process("p1"), b.process("p2")
        p1.wait("v1"), p1.post("v2")
        p2.wait("v2"), p2.post("v1")
        assert FeasibilityEngine(b.build()).search() is None

    def test_semaphore_ordering_enforced(self):
        b = ExecutionBuilder()
        v = b.process("p1").sem_v("s")
        p = b.process("p2").sem_p("s")
        pts = FeasibilityEngine(b.build()).search()
        assert pts.index(Point(v, True)) < pts.index(Point(p, True))

    def test_fork_join_ordering(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        c = b.process("c", parent=f).skip()
        j = main.join(f)
        pts = FeasibilityEngine(b.build()).search()
        assert pts.index(Point(f.eid, True)) < pts.index(Point(c, False))
        assert pts.index(Point(c, True)) < pts.index(Point(j, True))

    def test_dependence_ordering(self):
        b = ExecutionBuilder()
        w = b.process("p1").write("x")
        r = b.process("p2").read("x")
        b.dependence(w, r)
        pts = FeasibilityEngine(b.build()).search()
        assert pts.index(Point(w, True)) < pts.index(Point(r, False))

    def test_dependences_can_be_ignored(self):
        b = ExecutionBuilder()
        w = b.process("p1").write("x")
        r = b.process("p2").read("x")
        b.dependence(w, r)
        exe = b.build()
        # with D: r cannot precede w
        with_d = FeasibilityEngine(exe).search(
            constraints=[(end_point(r), begin_point(w))]
        )
        assert with_d is None
        # ignoring D (Section 5.3): it can
        without_d = FeasibilityEngine(exe, include_dependences=False).search(
            constraints=[(end_point(r), begin_point(w))]
        )
        assert without_d is not None


class TestConstraints:
    def test_unsatisfiable_self_constraint(self):
        b = ExecutionBuilder()
        x = b.process("p").skip()
        pts = FeasibilityEngine(b.build()).search(
            constraints=[(end_point(x), begin_point(x))]
        )
        assert pts is None

    def test_ordering_constraint_respected(self):
        b = ExecutionBuilder()
        x = b.process("A").skip()
        y = b.process("B").skip()
        pts = FeasibilityEngine(b.build()).search(
            constraints=[(end_point(y), begin_point(x))]
        )
        assert pts.index(Point(y, True)) < pts.index(Point(x, False))

    def test_conflicting_constraints_unsat(self):
        b = ExecutionBuilder()
        x = b.process("A").skip()
        y = b.process("B").skip()
        pts = FeasibilityEngine(b.build()).search(
            constraints=[
                (end_point(y), begin_point(x)),
                (end_point(x), begin_point(y)),
            ]
        )
        assert pts is None

    def test_overlap_constraints_with_intervals(self):
        b = ExecutionBuilder()
        x = b.process("A").skip()
        y = b.process("B").skip()
        pts = FeasibilityEngine(b.build()).search(
            interval_events=(x, y),
            constraints=[
                (begin_point(x), end_point(y)),
                (begin_point(y), end_point(x)),
            ],
        )
        pos = {p: i for i, p in enumerate(pts)}
        assert pos[Point(x, False)] < pos[Point(y, True)]
        assert pos[Point(y, False)] < pos[Point(x, True)]

    def test_end_end_constraint(self):
        b = ExecutionBuilder()
        x = b.process("A").skip()
        y = b.process("B").skip()
        pts = FeasibilityEngine(b.build()).search(
            constraints=[(end_point(y), end_point(x))]
        )
        assert pts.index(Point(y, True)) < pts.index(Point(x, True))


class TestBudgetAndStats:
    def test_budget_exceeded_raises(self):
        exe = random_semaphore_execution(processes=3, events_per_process=4, seed=1)
        with pytest.raises(SearchBudgetExceeded):
            FeasibilityEngine(exe).search(max_states=1)

    def test_stats_populated(self):
        exe = random_semaphore_execution(seed=2)
        stats = SearchStats()
        FeasibilityEngine(exe).search(stats=stats)
        assert stats.states_visited > 0
        assert stats.found

    def test_stats_merge(self):
        a = SearchStats(states_visited=1, actions_tried=2, memo_hits=3, dead_ends=4, hoisted=5)
        b = SearchStats(states_visited=10, actions_tried=20, memo_hits=30, dead_ends=40, hoisted=50)
        a.merge(b)
        assert (a.states_visited, a.actions_tried, a.memo_hits, a.dead_ends, a.hoisted) == (
            11, 22, 33, 44, 55,
        )

    def test_stats_merge_is_commutative(self):
        # jobs=N reports merge in worker arrival order; the result must
        # not depend on it -- field for field
        a = SearchStats(
            states_visited=1, actions_tried=2, memo_hits=3, dead_ends=4,
            hoisted=5, memo_suppressed=6, found=True,
            termination=TERMINATED_STATES, elapsed=0.5,
        )
        b = SearchStats(
            states_visited=10, actions_tried=20, memo_hits=30, dead_ends=40,
            hoisted=50, memo_suppressed=60, found=False,
            termination=TERMINATED_DEADLINE, elapsed=0.25,
        )
        ab = dataclasses.replace(a)
        ab.merge(dataclasses.replace(b))
        ba = dataclasses.replace(b)
        ba.merge(dataclasses.replace(a))
        assert dataclasses.asdict(ab) == dataclasses.asdict(ba)
        # found OR-merges; termination takes the worst abort
        assert ab.found is True
        assert ab.termination == TERMINATED_DEADLINE

    def test_stats_merge_termination_precedence(self):
        # deadline > states > completed, in any merge order
        import itertools

        kinds = (TERMINATED_COMPLETE, TERMINATED_STATES, TERMINATED_DEADLINE)
        for perm in itertools.permutations(kinds):
            acc = SearchStats(termination=perm[0])
            for t in perm[1:]:
                acc.merge(SearchStats(termination=t))
            assert acc.termination == TERMINATED_DEADLINE
        acc = SearchStats(termination=TERMINATED_STATES)
        acc.merge(SearchStats(termination=TERMINATED_COMPLETE))
        assert acc.termination == TERMINATED_STATES

    def test_on_progress_fires_at_least_once(self):
        # searches shorter than one check_interval must still tick
        b = ExecutionBuilder()
        b.process("p").skip()
        ticks = []
        FeasibilityEngine(b.build()).search(
            budget=Budget.of(check_interval=10_000),
            on_progress=lambda stats: ticks.append(stats.states_visited),
        )
        assert len(ticks) == 1 and ticks[0] >= 1

    def test_on_progress_fires_on_failed_and_aborted_searches(self):
        b = ExecutionBuilder()
        b.process("p").sem_p("nothing")  # deadlocks: search returns None
        ticks = []
        FeasibilityEngine(b.build()).search(on_progress=ticks.append)
        assert len(ticks) >= 1
        exe = random_semaphore_execution(processes=3, events_per_process=4, seed=1)
        ticks = []
        with pytest.raises(SearchBudgetExceeded):
            FeasibilityEngine(exe).search(
                max_states=1, on_progress=ticks.append
            )
        assert len(ticks) >= 1  # budget aborts tick on the way out

    def test_memoization_can_be_disabled(self):
        exe = random_semaphore_execution(processes=2, events_per_process=3, seed=3)
        on, off = SearchStats(), SearchStats()
        eng = FeasibilityEngine(exe)
        assert (eng.search(stats=on) is None) == (eng.search(stats=off, memoize=False) is None)


class TestBinarySemaphores:
    def test_clamped_v_loses_token(self):
        # V V P P on a binary semaphore: consecutive Vs clamp, so both
        # Ps can only complete when consumption interleaves -- and the
        # engine must find that interleaving
        b = ExecutionBuilder()
        p1 = b.process("p1")
        p1.sem_v("s"), p1.sem_v("s")
        p2 = b.process("p2")
        p2.sem_p("s"), p2.sem_p("s")
        exe = b.build()
        assert FeasibilityEngine(exe, binary_semaphores=True).search() is not None

    def test_forced_clamp_deadlocks(self):
        # program order forces both Vs before the P: second V is lost
        b = ExecutionBuilder()
        p1 = b.process("p1")
        v1, v2 = p1.sem_v("s"), p1.sem_v("s")
        p2 = b.process("p2")
        pa = p2.sem_p("s")
        pb = p2.sem_p("s")
        exe = b.build()
        # force v2 to complete before pa begins
        pts = FeasibilityEngine(exe, binary_semaphores=True).search(
            constraints=[(end_point(v2), begin_point(pa))]
        )
        assert pts is None
        # counting mode has no trouble
        assert (
            FeasibilityEngine(exe, binary_semaphores=False).search(
                constraints=[(end_point(v2), begin_point(pa))]
            )
            is not None
        )


class TestPartialOrderReductionModes:
    def test_unknown_mode_rejected(self):
        b = ExecutionBuilder()
        b.process("p").skip()
        with pytest.raises(ValueError):
            FeasibilityEngine(b.build(), por="persistent")

    @pytest.mark.parametrize("por", ["sleep", "hoist", "off"])
    def test_verdicts_and_witnesses_agree(self, por):
        for seed in range(6):
            exe = random_semaphore_execution(
                processes=3, events_per_process=3, seed=seed
            )
            pts = FeasibilityEngine(exe, por=por).search()
            assert pts is not None
            replay_schedule(exe, pts)  # any returned path must be legal

    def test_sleep_never_beats_off_on_exhaustive_search(self):
        # force an exhaustive (infeasible) search: chain every event
        # through semaphores, then ask for the reverse order
        b = ExecutionBuilder()
        v = b.process("p1").sem_v("s")
        p = b.process("p2").sem_p("s")
        others = [b.process(f"q{k}").skip() for k in range(3)]
        exe = b.build()
        cons = [(end_point(p), begin_point(v))]  # contradicts the P/V order
        visits = {}
        for por in ("sleep", "hoist", "off"):
            stats = SearchStats()
            assert (
                FeasibilityEngine(exe, por=por).search(
                    constraints=cons, stats=stats
                )
                is None
            )
            visits[por] = stats.states_visited
        assert visits["sleep"] <= visits["off"]
        assert visits["hoist"] <= visits["off"]


class TestWitnessReplay:
    @given(medium_semaphore_executions())
    @settings(max_examples=40, deadline=None)
    def test_semaphore_witnesses_replay(self, exe):
        pts = FeasibilityEngine(exe).search()
        assert pts is not None  # generated executions are feasible
        replay_schedule(exe, pts)  # raises on any violation

    @given(small_event_executions())
    @settings(max_examples=40, deadline=None)
    def test_event_witnesses_replay(self, exe):
        pts = FeasibilityEngine(exe).search()
        assert pts is not None
        replay_schedule(exe, pts)

    def test_observed_schedule_replays(self):
        # generated executions carry their generating schedule; replaying
        # it through the reference semantics must succeed
        for seed in range(5):
            exe = random_event_execution(seed=seed)
            points = []
            for eid in exe.observed_schedule:
                points.append(Point(eid, False))
                points.append(Point(eid, True))
            replay_schedule(exe, points)
