"""Tests for witness schedules and the independent replay validator."""

import pytest

from repro.core.engine import FeasibilityEngine, Point
from repro.core.witness import IllegalScheduleError, Witness, replay_schedule
from repro.model.builder import ExecutionBuilder


def vp_exe():
    b = ExecutionBuilder()
    v = b.process("p1").sem_v("s")
    p = b.process("p2").sem_p("s")
    return b.build(), v, p


class TestWitness:
    def test_positions_and_serial_order(self):
        exe, v, p = vp_exe()
        pts = FeasibilityEngine(exe).search()
        w = Witness(exe, pts)
        assert w.serial_order().index(v) < w.serial_order().index(p)
        assert w.begin_position(v) < w.end_position(v)

    def test_happened_before_and_concurrent(self):
        exe, v, p = vp_exe()
        # hand-build an overlapping schedule: both begin, then V ends, P ends
        pts = [Point(v, False), Point(p, False), Point(v, True), Point(p, True)]
        w = Witness(exe, pts)
        assert w.concurrent(v, p)
        assert not w.happened_before(v, p)
        w.validate()

    def test_temporal_relation_matches_positions(self):
        exe, v, p = vp_exe()
        pts = [Point(v, False), Point(v, True), Point(p, False), Point(p, True)]
        w = Witness(exe, pts)
        assert (v, p) in w.temporal_relation()
        assert (p, v) not in w.temporal_relation()

    def test_pretty_mentions_overlaps(self):
        exe, v, p = vp_exe()
        pts = [Point(v, False), Point(p, False), Point(v, True), Point(p, True)]
        out = Witness(exe, pts).pretty()
        assert "overlaps" in out


class TestReplayValidator:
    def test_rejects_end_before_begin(self):
        exe, v, p = vp_exe()
        with pytest.raises(IllegalScheduleError, match="before beginning"):
            replay_schedule(exe, [Point(v, True)])

    def test_rejects_double_begin(self):
        exe, v, p = vp_exe()
        with pytest.raises(IllegalScheduleError, match="begins twice"):
            replay_schedule(exe, [Point(v, False), Point(v, False)])

    def test_rejects_blocked_p(self):
        exe, v, p = vp_exe()
        with pytest.raises(IllegalScheduleError, match="blocked"):
            replay_schedule(exe, [Point(p, False), Point(p, True)])

    def test_rejects_incomplete(self):
        exe, v, p = vp_exe()
        with pytest.raises(IllegalScheduleError, match="incomplete"):
            replay_schedule(exe, [Point(v, False), Point(v, True)])

    def test_rejects_program_order_violation(self):
        b = ExecutionBuilder()
        proc = b.process("p")
        x, y = proc.skip(), proc.skip()
        exe = b.build()
        with pytest.raises(IllegalScheduleError, match="program-order"):
            replay_schedule(exe, [Point(y, False)])

    def test_rejects_fork_violation(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        c = b.process("c", parent=f).skip()
        main.join(f)
        exe = b.build()
        with pytest.raises(IllegalScheduleError, match="creating fork"):
            replay_schedule(exe, [Point(c, False)])

    def test_rejects_dependence_violation(self):
        b = ExecutionBuilder()
        w = b.process("p1").write("x")
        r = b.process("p2").read("x")
        b.dependence(w, r)
        exe = b.build()
        bad = [Point(r, False), Point(r, True), Point(w, False), Point(w, True)]
        with pytest.raises(IllegalScheduleError, match="dependence"):
            replay_schedule(exe, bad)
        # the same schedule is fine when D is not enforced (Section 5.3)
        replay_schedule(exe, bad, include_dependences=False)

    def test_accepts_legal_schedule_and_returns_state(self):
        exe, v, p = vp_exe()
        pts = [Point(v, False), Point(v, True), Point(p, False), Point(p, True)]
        state = replay_schedule(exe, pts)
        assert state.semaphores["s"].count == 0

    def test_double_end_rejected(self):
        exe, v, p = vp_exe()
        with pytest.raises(IllegalScheduleError, match="ends twice"):
            replay_schedule(
                exe, [Point(v, False), Point(v, True), Point(v, True)]
            )
