"""Binary-relation helpers.

The paper's six ordering relations (Table 1) are all binary relations
over the event set of an execution.  :class:`BinaryRelation` is a thin,
set-backed value type with the algebra needed by the analysis layer:
union, intersection, complement (over an explicit universe), converse,
and the order-theoretic predicates used by the property-based tests.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

Pair = Tuple[Hashable, Hashable]


class BinaryRelation:
    """An immutable binary relation over a fixed universe of elements."""

    __slots__ = ("_universe", "_pairs")

    def __init__(self, universe: Iterable[Hashable], pairs: Iterable[Pair] = ()):
        self._universe: Tuple[Hashable, ...] = tuple(dict.fromkeys(universe))
        uset = set(self._universe)
        ps = set()
        for a, b in pairs:
            if a not in uset or b not in uset:
                raise ValueError(f"pair ({a!r}, {b!r}) not within universe")
            ps.add((a, b))
        self._pairs: FrozenSet[Pair] = frozenset(ps)

    # ------------------------------------------------------------------
    @property
    def universe(self) -> Tuple[Hashable, ...]:
        return self._universe

    @property
    def pairs(self) -> FrozenSet[Pair]:
        return self._pairs

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __call__(self, a: Hashable, b: Hashable) -> bool:
        return (a, b) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(sorted(self._pairs, key=repr))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryRelation):
            return NotImplemented
        return set(self._universe) == set(other._universe) and self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash((frozenset(self._universe), self._pairs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryRelation({len(self._universe)} elems, {len(self._pairs)} pairs)"

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def _check_same_universe(self, other: "BinaryRelation") -> None:
        if set(self._universe) != set(other._universe):
            raise ValueError("relations defined over different universes")

    def union(self, other: "BinaryRelation") -> "BinaryRelation":
        self._check_same_universe(other)
        return BinaryRelation(self._universe, self._pairs | other._pairs)

    def intersection(self, other: "BinaryRelation") -> "BinaryRelation":
        self._check_same_universe(other)
        return BinaryRelation(self._universe, self._pairs & other._pairs)

    def difference(self, other: "BinaryRelation") -> "BinaryRelation":
        self._check_same_universe(other)
        return BinaryRelation(self._universe, self._pairs - other._pairs)

    def complement(self, *, reflexive: bool = False) -> "BinaryRelation":
        """All pairs not in the relation.

        By default the diagonal is excluded, because every relation in
        the paper is over *distinct* event pairs (an event is never
        ordered with or concurrent with itself in a meaningful way).
        """
        pairs = set()
        for a in self._universe:
            for b in self._universe:
                if a == b and not reflexive:
                    continue
                if (a, b) not in self._pairs:
                    pairs.add((a, b))
        return BinaryRelation(self._universe, pairs)

    def converse(self) -> "BinaryRelation":
        return BinaryRelation(self._universe, {(b, a) for (a, b) in self._pairs})

    def issubset(self, other: "BinaryRelation") -> bool:
        self._check_same_universe(other)
        return self._pairs <= other._pairs

    def restricted(self, elems: Iterable[Hashable]) -> "BinaryRelation":
        keep = set(elems)
        return BinaryRelation(
            [e for e in self._universe if e in keep],
            {(a, b) for (a, b) in self._pairs if a in keep and b in keep},
        )

    def transitive_closure(self) -> "BinaryRelation":
        succ = {a: set() for a in self._universe}
        for a, b in self._pairs:
            succ[a].add(b)
        closed: Set[Pair] = set()
        for a in self._universe:
            seen: Set[Hashable] = set()
            stack = list(succ[a])
            while stack:
                n = stack.pop()
                if n in seen:
                    continue
                seen.add(n)
                stack.extend(succ[n])
            closed.update((a, b) for b in seen)
        return BinaryRelation(self._universe, closed)


def relation_from_pairs(universe: Iterable[Hashable], pairs: Iterable[Pair]) -> BinaryRelation:
    return BinaryRelation(universe, pairs)


def is_irreflexive(r: BinaryRelation) -> bool:
    return all((a, a) not in r for a in r.universe)


def is_symmetric(r: BinaryRelation) -> bool:
    return all((b, a) in r for (a, b) in r.pairs)


def is_antisymmetric(r: BinaryRelation) -> bool:
    return all(not ((b, a) in r and a != b) for (a, b) in r.pairs)


def is_transitive(r: BinaryRelation) -> bool:
    succ = {}
    for a, b in r.pairs:
        succ.setdefault(a, set()).add(b)
    for a, b in r.pairs:
        for c in succ.get(b, ()):  # a->b->c requires a->c
            if (a, c) not in r:
                return False
    return True


def is_strict_partial_order(r: BinaryRelation) -> bool:
    return is_irreflexive(r) and is_transitive(r) and is_antisymmetric(r)
