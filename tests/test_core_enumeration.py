"""The engine against definition-level enumeration (ground truth).

These are the most important tests in the suite: every Table 1
relation computed by the targeted search engine must coincide with the
relation read directly off the explicitly enumerated feasible set.
"""

from hypothesis import given, settings

from repro.core.enumerate import (
    enumerate_point_schedules,
    enumerate_serial_schedules,
    relations_by_enumeration,
)
from repro.core.relations import ALL_RELATIONS, OrderingAnalyzer, RelationName
from repro.core.witness import replay_schedule
from repro.model.builder import ExecutionBuilder

from tests.strategies import small_event_executions, small_semaphore_executions


class TestEnumerationBasics:
    def test_two_independent_events(self):
        b = ExecutionBuilder()
        b.process("A").skip()
        b.process("B").skip()
        exe = b.build()
        serial = list(enumerate_serial_schedules(exe))
        assert sorted(serial) == [(0, 1), (1, 0)]
        # point schedules: all interleavings of B0 E0 B1 E1 with B<E
        points = list(enumerate_point_schedules(exe))
        assert len(points) == 6  # 4!/(2!2!) = 6 interleavings

    def test_program_order_restricts(self):
        b = ExecutionBuilder()
        p = b.process("p")
        p.skip(), p.skip()
        exe = b.build()
        assert list(enumerate_serial_schedules(exe)) == [(0, 1)]
        assert len(list(enumerate_point_schedules(exe))) == 1

    def test_semaphore_restricts(self):
        b = ExecutionBuilder()
        v = b.process("p1").sem_v("s")
        p = b.process("p2").sem_p("s")
        exe = b.build()
        serial = list(enumerate_serial_schedules(exe))
        assert serial == [(v, p)]
        # point schedules allow the P to *begin* first
        assert len(list(enumerate_point_schedules(exe))) > 1

    def test_deadlocked_set_has_no_schedules(self):
        b = ExecutionBuilder()
        b.process("p").sem_p("never")
        exe = b.build()
        assert list(enumerate_serial_schedules(exe)) == []
        assert list(enumerate_point_schedules(exe)) == []

    def test_limit_caps_output(self):
        b = ExecutionBuilder()
        for name in "ABC":
            b.process(name).skip()
        exe = b.build()
        assert len(list(enumerate_serial_schedules(exe, limit=2))) == 2

    def test_every_point_schedule_replays(self):
        b = ExecutionBuilder()
        v = b.process("p1").sem_v("s")
        b.process("p2").sem_p("s")
        exe = b.build()
        for sched in enumerate_point_schedules(exe):
            replay_schedule(exe, sched)


class TestVacuousRelations:
    def test_empty_feasible_set_semantics(self):
        b = ExecutionBuilder()
        b.process("p").sem_p("never")
        b.process("q").skip()
        exe = b.build()
        rels = relations_by_enumeration(exe)
        n_pairs = len(exe) * (len(exe) - 1)
        assert len(rels[RelationName.MHB]) == n_pairs
        assert len(rels[RelationName.MCW]) == n_pairs
        assert len(rels[RelationName.MOW]) == n_pairs
        assert len(rels[RelationName.CHB]) == 0
        assert len(rels[RelationName.CCW]) == 0
        assert len(rels[RelationName.COW]) == 0


class TestEngineMatchesEnumeration:
    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_semaphore_executions(self, exe):
        ref = relations_by_enumeration(exe)
        ana = OrderingAnalyzer(exe)
        for name in ALL_RELATIONS:
            assert ana.relation(name) == ref[name], name

    @given(small_event_executions())
    @settings(max_examples=15, deadline=None)
    def test_event_executions(self, exe):
        ref = relations_by_enumeration(exe)
        ana = OrderingAnalyzer(exe)
        for name in ALL_RELATIONS:
            assert ana.relation(name) == ref[name], name

    @given(small_semaphore_executions())
    @settings(max_examples=12, deadline=None)
    def test_ignoring_dependences_agrees_too(self, exe):
        ref = relations_by_enumeration(exe, include_dependences=False)
        ana = OrderingAnalyzer(exe, include_dependences=False)
        for name in ALL_RELATIONS:
            assert ana.relation(name) == ref[name], name
