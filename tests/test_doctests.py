"""Run the executable examples embedded in key docstrings.

The package docstring's quickstart and the builder/parser examples are
part of the documented API surface; this keeps them honest.
"""

import doctest

import repro
import repro.lang.parser
import repro.model.builder


def _run(module) -> None:
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"


def test_package_quickstart_doctest():
    _run(repro)


def test_builder_doctest():
    _run(repro.model.builder)


def test_parser_doctest():
    _run(repro.lang.parser)
