"""JSON (de)serialization of program executions.

Executions are plain data, so traces captured once (from the simulator
or constructed by a reduction) can be saved, shared and re-analyzed --
the CLI's ``analyze`` command consumes this format.  The schema is
versioned and deliberately explicit; loading validates through the
normal :class:`~repro.model.execution.ProgramExecution` constructor, so
a corrupt document fails loudly rather than producing a bad model.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.model.events import Access, Event, EventKind
from repro.model.execution import ProgramExecution

FORMAT_VERSION = 1


def execution_to_dict(exe: ProgramExecution) -> Dict[str, Any]:
    """A JSON-ready dict describing the execution."""
    return {
        "format": "repro-execution",
        "version": FORMAT_VERSION,
        "events": [
            {
                "eid": e.eid,
                "process": e.process,
                "index": e.index,
                "kind": e.kind.name,
                "obj": e.obj,
                "accesses": [
                    {"variable": a.variable, "write": a.is_write} for a in e.accesses
                ],
                "label": e.label,
            }
            for e in exe.events
        ],
        "processes": {p: list(exe.process_events(p)) for p in exe.process_names},
        "fork_children": {str(k): list(v) for k, v in exe.fork_children.items()},
        "join_targets": {str(k): list(v) for k, v in exe.join_targets.items()},
        "parent_fork": dict(exe.parent_fork),
        "sem_initial": {s: exe.sem_initial(s) for s in exe.semaphores},
        "var_initial": [v for v in exe.event_variables if exe.var_initially_posted(v)],
        "dependences": sorted(list(pair) for pair in exe.dependences),
        "observed_schedule": list(exe.observed_schedule)
        if exe.observed_schedule is not None
        else None,
    }


def execution_from_dict(data: Dict[str, Any]) -> ProgramExecution:
    """Inverse of :func:`execution_to_dict` (validating)."""
    if data.get("format") != "repro-execution":
        raise ValueError("not a repro-execution document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    events = []
    for rec in data["events"]:
        events.append(
            Event(
                eid=int(rec["eid"]),
                process=rec["process"],
                index=int(rec["index"]),
                kind=EventKind[rec["kind"]],
                obj=rec.get("obj"),
                accesses=tuple(
                    Access(a["variable"], bool(a["write"]))
                    for a in rec.get("accesses", ())
                ),
                label=rec.get("label"),
            )
        )
    return ProgramExecution(
        events,
        {p: list(eids) for p, eids in data["processes"].items()},
        fork_children={int(k): list(v) for k, v in data.get("fork_children", {}).items()},
        join_targets={int(k): list(v) for k, v in data.get("join_targets", {}).items()},
        parent_fork=dict(data.get("parent_fork", {})),
        sem_initial=dict(data.get("sem_initial", {})),
        var_initial=list(data.get("var_initial", ())),
        dependences=[tuple(pair) for pair in data.get("dependences", ())],
        observed_schedule=data.get("observed_schedule"),
    )


def dumps(exe: ProgramExecution, *, indent: int = 2) -> str:
    return json.dumps(execution_to_dict(exe), indent=indent, sort_keys=True)


def loads(text: str) -> ProgramExecution:
    return execution_from_dict(json.loads(text))


def save(exe: ProgramExecution, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps(exe) + "\n")


def load(path: str) -> ProgramExecution:
    with open(path) as fh:
        return loads(fh.read())
