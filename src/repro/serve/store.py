"""Persistent on-disk witness store, keyed by execution fingerprint.

The cross-query :class:`~repro.solve.witnesses.WitnessCache` makes a
*scan* cheap; the daemon makes it *durable*: witnesses found for one
client's query answer the next client's, across daemon restarts.  The
layout is one directory per stored execution::

    <root>/<fingerprint>/execution.json   -- the source trace
    <root>/<fingerprint>/witnesses.json   -- validated schedules

Robustness rules, in order of importance:

* **Never trust the disk.**  Every loaded schedule replays through the
  reference semantics before it is served (the in-memory cache is the
  single soundness gate); a schedule that does not replay is dropped
  and the file marked for rewrite.
* **Never serve a corrupt entry, never delete evidence.**  A directory
  whose ``execution.json`` is unreadable -- or whose content hashes to
  a different fingerprint than its name -- is *quarantined* (renamed
  ``<name>.corrupt-N``) and skipped with a logged warning.  A corrupt
  ``witnesses.json`` is quarantined the same way and then **rebuilt
  from the source trace**: the execution's own observed schedule is
  re-validated into a fresh witness file, so the entry keeps answering
  (degraded to one witness) instead of disappearing.
* **Atomic, durable writes.**  Files are written via
  :func:`~repro.util.fileio.atomic_write_text` with ``durable=True``
  (tmp + fsync + rename + directory fsync), so a crash or a full disk
  mid-flush leaves the previous complete version in place, never a
  torn one.  A failed flush logs, counts, and leaves the entry dirty
  for the next flush -- the daemon keeps serving from memory.

Capacity: each entry's cache holds the most recent ``capacity``
schedules (FIFO, like the scan cache); the store persists what is
resident at flush time.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import re
import threading
from typing import Any, Dict, List, Optional

from repro.core.engine import Point
from repro.model import serialize
from repro.model.execution import ProgramExecution
from repro.solve.witnesses import WitnessCache
from repro.util.fileio import atomic_write_text

log = logging.getLogger("repro.serve")

STORE_FORMAT = "repro-witness-store"
STORE_VERSION = 1

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")


def _quarantine(path: str) -> str:
    """Move a corrupt file or directory aside (never delete evidence)."""
    for n in itertools.count(1):
        target = f"{path}.corrupt-{n}"
        if not os.path.exists(target):
            os.replace(path, target)
            return target
    raise AssertionError("unreachable")  # pragma: no cover


class _StoreEntry:
    """One stored execution: its model plus the validating cache."""

    def __init__(self, exe: ProgramExecution, *, capacity: int) -> None:
        self.exe = exe
        self.cache = WitnessCache(exe, capacity=capacity)
        self.dirty = False

    def add_observed(self) -> None:
        """Re-derive the base witness from the source trace itself (the
        observed schedule is a member of ``F`` whenever it replays)."""
        sched = self.exe.observed_schedule
        if sched is None:
            return
        points = []
        for eid in sched:
            points.append(Point(eid, False))
            points.append(Point(eid, True))
        self.cache.add(points)

    def schedules(self) -> List[List[List[int]]]:
        return self.cache.points_since(0)  # every resident entry


class WitnessStore:
    """Fingerprint-keyed persistent executions + validated witnesses.

    Thread-safe (one re-entrant lock): HTTP handler threads store
    executions and fetch/persist witnesses while the drain path
    flushes.  All mutations are in-memory first; :meth:`flush` makes
    them durable (and is called after every mutation by the daemon,
    plus once more on drain).
    """

    def __init__(self, root: str, *, capacity: int = 256) -> None:
        self.root = root
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: Dict[str, _StoreEntry] = {}
        self.quarantined = 0
        self.flush_failures = 0
        os.makedirs(root, exist_ok=True)
        self._load_all()

    # -- loading (constructor only) ------------------------------------
    def _load_all(self) -> None:
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if not os.path.isdir(path) or not _FINGERPRINT_RE.match(name):
                continue  # quarantined remnants, tmp files, strangers
            self._load_entry(name, path)

    def _load_entry(self, fp: str, path: str) -> None:
        exe_path = os.path.join(path, "execution.json")
        try:
            with open(exe_path) as fh:
                exe = serialize.execution_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            where = _quarantine(path)
            self.quarantined += 1
            log.warning(
                "witness store: unreadable execution %s (%s); quarantined "
                "to %s", fp, exc, where,
            )
            return
        if serialize.execution_fingerprint(exe) != fp:
            where = _quarantine(path)
            self.quarantined += 1
            log.warning(
                "witness store: execution under %s hashes differently "
                "(renamed or tampered directory); quarantined to %s",
                fp, where,
            )
            return
        entry = _StoreEntry(exe, capacity=self.capacity)
        wit_path = os.path.join(path, "witnesses.json")
        schedules: List[Any] = []
        if os.path.exists(wit_path):
            try:
                with open(wit_path) as fh:
                    doc = json.load(fh)
                if (
                    not isinstance(doc, dict)
                    or doc.get("format") != STORE_FORMAT
                    or doc.get("version") != STORE_VERSION
                    or doc.get("fingerprint") != fp
                ):
                    raise ValueError("wrong format/version/fingerprint")
                schedules = [w["points"] for w in doc["witnesses"]]
            except (OSError, ValueError, KeyError, TypeError) as exc:
                where = _quarantine(wit_path)
                self.quarantined += 1
                entry.dirty = True  # rebuild from the source trace
                log.warning(
                    "witness store: corrupt witnesses for %s (%s); "
                    "quarantined to %s, rebuilding from source trace",
                    fp, exc, where,
                )
        else:
            # e.g. a crash between storing the execution and the first
            # flush: not corruption, just rebuild
            entry.dirty = True
            log.info(
                "witness store: no witness file for %s; rebuilding from "
                "source trace", fp,
            )
        rejected_before = entry.cache.rejected
        entry.cache.seed(schedules)
        if entry.cache.rejected > rejected_before:
            bad = entry.cache.rejected - rejected_before
            entry.dirty = True  # rewrite without the invalid schedules
            log.warning(
                "witness store: %d invalid schedule(s) for %s dropped on "
                "load (failed replay validation)", bad, fp,
            )
        entry.add_observed()
        self._entries[fp] = entry

    # -- client surface -------------------------------------------------
    def put_execution(self, exe: ProgramExecution) -> str:
        """Store an execution (idempotent); returns its fingerprint."""
        fp = serialize.execution_fingerprint(exe)
        with self._lock:
            if fp not in self._entries:
                entry = _StoreEntry(exe, capacity=self.capacity)
                entry.add_observed()
                entry.dirty = True
                path = os.path.join(self.root, fp)
                os.makedirs(path, exist_ok=True)
                atomic_write_text(
                    os.path.join(path, "execution.json"),
                    serialize.dumps(exe) + "\n",
                    durable=True,
                )
                self._entries[fp] = entry
        return fp

    def __contains__(self, fp: str) -> bool:
        with self._lock:
            return fp in self._entries

    def execution(self, fp: str) -> ProgramExecution:
        with self._lock:
            return self._entries[fp].exe

    def execution_doc(self, fp: str) -> Dict[str, Any]:
        with self._lock:
            return serialize.execution_to_dict(self._entries[fp].exe)

    def fingerprints(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def points_for(self, fp: str) -> List[List[List[int]]]:
        """Every stored schedule for ``fp`` (JSON-ready points), for
        seeding a query worker's cache."""
        with self._lock:
            entry = self._entries.get(fp)
            return entry.schedules() if entry is not None else []

    def add_points(self, fp: str, schedules) -> int:
        """Fold newly discovered schedules in (each re-validated by the
        entry's cache); returns how many were genuinely new."""
        if not schedules:
            return 0
        with self._lock:
            entry = self._entries.get(fp)
            if entry is None:
                return 0
            before = len(entry.cache)
            entry.cache.seed(schedules)
            added = len(entry.cache) - before
            if added:
                entry.dirty = True
            return added

    # -- durability ------------------------------------------------------
    def flush(self) -> int:
        """Write every dirty entry durably; returns entries written.

        A failed write (disk full, permissions) logs a warning, counts
        in :attr:`flush_failures` and leaves the entry dirty -- the
        in-memory copy keeps serving and the next flush retries.
        """
        written = 0
        with self._lock:
            for fp, entry in self._entries.items():
                if not entry.dirty:
                    continue
                doc = {
                    "format": STORE_FORMAT,
                    "version": STORE_VERSION,
                    "fingerprint": fp,
                    "witnesses": [
                        {"points": sched} for sched in entry.schedules()
                    ],
                }
                path = os.path.join(self.root, fp, "witnesses.json")
                try:
                    atomic_write_text(
                        path,
                        json.dumps(doc, sort_keys=True) + "\n",
                        durable=True,
                    )
                except OSError as exc:
                    self.flush_failures += 1
                    log.warning(
                        "witness store: flush of %s failed (%s); keeping "
                        "entry dirty, serving from memory", fp, exc,
                    )
                else:
                    entry.dirty = False
                    written += 1
        return written

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "executions": len(self._entries),
                "witnesses": sum(
                    len(e.cache) for e in self._entries.values()
                ),
                "dirty": sum(1 for e in self._entries.values() if e.dirty),
                "quarantined": self.quarantined,
                "flush_failures": self.flush_failures,
            }


__all__ = ["WitnessStore", "STORE_FORMAT", "STORE_VERSION"]
