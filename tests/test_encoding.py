"""Tests for the ordering -> SAT encoder (the converse reduction)."""

from hypothesis import given, settings

from repro.core.queries import OrderingQueries
from repro.core.engine import Point
from repro.core.witness import replay_schedule
from repro.encoding import OrderSatEncoder, sat_chb, sat_is_feasible
from repro.model.builder import ExecutionBuilder

from tests.strategies import small_event_executions, small_semaphore_executions


class TestBasics:
    def test_single_event(self):
        b = ExecutionBuilder()
        b.process("p").skip()
        assert sat_is_feasible(b.build())

    def test_deadlock_unsat(self):
        b = ExecutionBuilder()
        b.process("p").sem_p("never")
        assert not sat_is_feasible(b.build())

    def test_program_order_forced(self):
        b = ExecutionBuilder()
        p = b.process("p")
        x, y = p.skip(), p.skip()
        exe = b.build()
        assert sat_chb(exe, x, y)
        assert not sat_chb(exe, y, x)

    def test_semaphore_ordering(self):
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        exe = b.build()
        assert sat_chb(exe, v, p)
        assert not sat_chb(exe, p, v)

    def test_initial_tokens_matched(self):
        b = ExecutionBuilder()
        b.semaphore("s", 2)
        proc = b.process("p")
        proc.sem_p("s"), proc.sem_p("s")
        assert sat_is_feasible(b.build())

    def test_insufficient_supply_unsat(self):
        b = ExecutionBuilder()
        b.process("A").sem_v("s")
        proc = b.process("B")
        proc.sem_p("s"), proc.sem_p("s")
        assert not sat_is_feasible(b.build())

    def test_clear_blocks_wait(self):
        b = ExecutionBuilder()
        a = b.process("A")
        a.post("v"), a.clear("v")
        b.process("B").wait("v")
        # the wait CAN be scheduled between post and clear
        assert sat_is_feasible(b.build())
        # ... but a wait ordered after the only post's clear cannot
        b2 = ExecutionBuilder()
        a2 = b2.process("A")
        post, clear = a2.post("v"), a2.clear("v")
        w = a2.wait("v")  # po-after the clear, same process
        assert not sat_is_feasible(b2.build())

    def test_initially_posted_variable(self):
        b = ExecutionBuilder()
        b.event_variable("v", posted=True)
        w = b.process("A").wait("v")
        c = b.process("B").clear("v")
        exe = b.build()
        assert sat_is_feasible(exe)
        # forcing the clear first starves the wait
        assert not sat_chb(exe, c, w)

    def test_decoded_schedule_replays(self):
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        w = b.process("C").post("x")
        exe = b.build()
        order = OrderSatEncoder(exe).solve()
        points = [pt for e in order for pt in (Point(e, False), Point(e, True))]
        replay_schedule(exe, points)

    def test_ignore_dependences_mode(self):
        b = ExecutionBuilder()
        x = b.process("p1").write("v")
        y = b.process("p2").read("v")
        b.dependence(x, y)
        exe = b.build()
        assert not sat_chb(exe, y, x)
        assert sat_chb(exe, y, x, include_dependences=False)


class TestAgainstEngine:
    """Two decision procedures with zero shared code must agree."""

    @given(small_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_chb_agreement_semaphores(self, exe):
        q = OrderingQueries(exe)
        assert sat_is_feasible(exe) == q.has_feasible_execution()
        enc = OrderSatEncoder(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b:
                    assert (enc.solve([(a, b)]) is not None) == q.chb(a, b), (a, b)

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_chb_agreement_events(self, exe):
        q = OrderingQueries(exe)
        enc = OrderSatEncoder(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b:
                    assert (enc.solve([(a, b)]) is not None) == q.chb(a, b), (a, b)


class TestFullCircle:
    def test_sat_to_ordering_to_sat(self):
        """Compose the paper's reduction with the converse encoder:
        formula -> Theorem 1 execution -> ordering query -> CNF ->
        DPLL.  The satisfiable direction round-trips on the smallest
        instance (18 events, ~2.5k clauses).  The unsatisfiable
        direction would need the plain DPLL to *refute* a
        multi-thousand-clause encoding -- beyond the teaching solver's
        reach, and exactly the co-NP-side asymmetry the paper's
        theorems describe; the engine-vs-encoder agreement tests above
        cover refutation on small executions instead."""
        from repro.reductions import semaphore_reduction
        from repro.sat.cnf import CNF
        from repro.sat.dpll import solve

        formula = CNF([(1, 1, 1)])
        assert solve(formula) is not None
        red = semaphore_reduction(formula)
        # Theorem 2: b CHB a <=> satisfiable; decided via the converse
        # encoding this time
        assert sat_chb(red.execution, red.b, red.a)
