#!/usr/bin/env python3
"""Analyzing simulator traces: exact orderings vs the HMW approximation.

A bounded-buffer producer/consumer runs under several random schedules;
each trace converts to an execution ``<E, T, D>`` whose must-orderings
we compute exactly, then compare with the polynomial
Helmbold/McDowell/Wang safe-ordering phases the paper discusses in
Section 4:

* phase 1 (trace pairing) over-claims -- some of its edges are refuted;
* phases 2/3 are sound but miss orderings the exact engine proves;
* the gap is the paper's whole point: Theorem 1 says no polynomial
  algorithm closes it.

Run:  python examples/trace_analysis.py
"""

from repro import HMWAnalysis, OrderingQueries, run_program
from repro.workloads.programs import producer_consumer_program


def exact_mcb_relation(exe):
    """All exact must-complete-before pairs (the HMW-comparable view)."""
    q = OrderingQueries(exe)
    pairs = set()
    n = len(exe)
    for a in range(n):
        for c in range(n):
            if a != c and q.mcb(a, c):
                pairs.add((a, c))
    return pairs


def competing_suppliers_execution():
    """Two independent signalers, one double-consumer: the pairing of
    Vs to Ps is accidental, which is exactly where HMW phase 1 over-
    claims and where deadlock-avoidance orderings appear."""
    from repro.lang.ast import ProcessDef, Program, SemP, SemV

    prog = Program(
        [
            ProcessDef("sig1", [SemV("s")]),
            ProcessDef("sig2", [SemV("s"), SemV("t")]),
            ProcessDef("cons", [SemP("s"), SemP("t"), SemP("s")]),
        ]
    )
    return run_program(prog, 0).to_execution()


def main() -> None:
    runs = [
        ("producer/consumer, buffer 2, seed 0",
         run_program(producer_consumer_program(items=3, buffer_size=2), 0).to_execution()),
        ("producer/consumer, buffer 2, seed 7",
         run_program(producer_consumer_program(items=3, buffer_size=2), 7).to_execution()),
        ("competing suppliers", competing_suppliers_execution()),
    ]
    for name, exe in runs:
        print(f"== {name}: {exe}")

        hmw = HMWAnalysis(exe)
        phase1 = set(hmw.phase1().pairs)
        phase2 = set(hmw.phase2().pairs)
        phase3 = set(hmw.phase3().pairs)
        exact = exact_mcb_relation(exe)

        over = phase1 - exact     # phase 1 claims refuted by the engine
        missed = exact - phase3   # exact orderings invisible to HMW

        print(f"   exact must-complete-before pairs : {len(exact)}")
        print(f"   HMW phase 1 (trace pairing)      : {len(phase1)}"
              f"  -> {len(over)} unsound claim(s)")
        print(f"   HMW phase 2 (conservative safe)  : {len(phase2)}  (sound)")
        print(f"   HMW phase 3 (sharpened)          : {len(phase3)}  (sound)")
        print(f"   exact orderings HMW cannot see   : {len(missed)}")
        if over:
            a, b = sorted(over)[0]
            print(f"   e.g. phase 1 wrongly claims "
                  f"{exe.event(a).describe()} -> {exe.event(b).describe()}")
        if missed:
            a, b = sorted(missed)[0]
            print(f"   e.g. only the exact engine proves "
                  f"{exe.event(a).describe()} -> {exe.event(b).describe()}")
        print()

    print("Soundness of phases 2/3 and unsoundness of phase 1 are also")
    print("property-tested in tests/test_approx_hmw.py; the precision gap")
    print("is measured across many workloads by benchmarks/bench_hmw_precision.py.")


if __name__ == "__main__":
    main()
