"""Canned programs and random workload generators.

:mod:`repro.workloads.programs` contains the paper's Figure 1 fragment
and a set of realistic small concurrent programs (producer/consumer,
barrier phases, dining philosophers, data-dependent synchronization)
used by the examples, tests and benchmarks.
:mod:`repro.workloads.generators` produces seeded random executions --
built directly as event sets with a feasible schedule by construction
-- for the soundness/precision benchmarks, where hundreds of varied
executions are needed.
"""

from repro.workloads.programs import (
    figure1_program,
    figure1_execution,
    producer_consumer_program,
    barrier_program,
    dining_philosophers_program,
    data_dependent_branch_program,
    pipeline_program,
    readers_writers_program,
    reusable_barrier_program,
    work_queue_program,
)
from repro.workloads.generators import (
    random_semaphore_execution,
    random_event_execution,
    random_computation_overlay,
    independent_processes_execution,
)

__all__ = [
    "figure1_program",
    "figure1_execution",
    "producer_consumer_program",
    "barrier_program",
    "dining_philosophers_program",
    "data_dependent_branch_program",
    "pipeline_program",
    "readers_writers_program",
    "reusable_barrier_program",
    "work_queue_program",
    "random_semaphore_execution",
    "random_event_execution",
    "random_computation_overlay",
    "independent_processes_execution",
]
