"""Experiment TH1 -- Theorem 1: must-have-happened-before for semaphore
synchronization is co-NP-hard.

The reduction's claimed equivalence -- a MHB b <=> UNSAT(B) -- is
checked over a seeded grid of random 3CNF formulas against the
library's own DPLL solver; agreement must be 100%.  The reported
states/seconds columns exhibit the exponential growth the theorem
predicts for the exact decision procedure.
"""

from conftest import report, table
from _theorem_common import rows_to_table, sweep

from repro.reductions import semaphore_reduction


def test_theorem1_mhb_equivalence(benchmark):
    rows = benchmark(sweep, semaphore_reduction, "mhb")
    assert all(r["agree"] for r in rows)
    headers, body = rows_to_table(rows)
    lines = table(headers, body)
    lines.append("")
    lines.append("claim: a MHB b <=> UNSAT(B) -- agreement 100%")
    report("theorem1_mhb", lines)
