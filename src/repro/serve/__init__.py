"""The ``repro serve`` daemon: long-lived, crash-isolated query answering.

A scan answers one batch of queries and exits; the daemon stays up,
accepts executions over HTTP, and answers MHB/CHB/CCW/race queries
against them -- engineered so that *nothing a client or a worker does
can take it down or make it lie*:

* :mod:`repro.serve.store` -- the persistent on-disk witness store,
  keyed by execution fingerprint, atomic writes, corruption quarantined
  and rebuilt from source traces;
* :mod:`repro.serve.admission` -- the bounded admission queue: beyond
  capacity clients get a structured 429 with ``Retry-After``, never an
  unbounded queue;
* :mod:`repro.serve.app` -- the HTTP surface and lifecycle (readiness
  vs liveness, clean drain on SIGTERM/SIGINT), on top of the
  crash-isolated :class:`~repro.supervise.pool.QueryWorkerPool`.
"""

from repro.serve.admission import AdmissionQueue, Draining, Overloaded
from repro.serve.app import QueryDaemon
from repro.serve.store import WitnessStore

__all__ = [
    "AdmissionQueue",
    "Draining",
    "Overloaded",
    "QueryDaemon",
    "WitnessStore",
]
