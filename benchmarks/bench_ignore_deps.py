"""Experiment S5.3 -- Section 5.3: ordering relations ignoring
shared-data dependences.

Two claims are regenerated:

1. On the theorem constructions (which contain no shared data), the
   hardness equivalences are *unchanged* when ``D`` is ignored -- "the
   proofs suffice to show that even when the original shared-data
   dependences are ignored ... computing the ordering relations is
   still an intractable problem."
2. On workloads *with* shared data, ignoring ``D`` enlarges the
   feasible set: must-relations shrink, could-relations grow
   (monotonicity measured and asserted).
"""

from conftest import report, table

from repro.core.relations import OrderingAnalyzer, RelationName
from repro.reductions import event_reduction, semaphore_reduction
from repro.sat.dpll import solve
from repro.sat.generators import random_ksat
from repro.workloads.generators import random_computation_overlay


def run_study():
    results = {"reductions": [], "overlays": []}

    for n, m, seed in [(3, 6, 0), (3, 10, 1), (4, 8, 2)]:
        f = random_ksat(n, m, seed=seed)
        is_sat = solve(f) is not None
        for build, style in ((semaphore_reduction, "sem"), (event_reduction, "evt")):
            red = build(f)
            with_d = red.queries(include_dependences=True).mhb(red.a, red.b)
            without_d = red.queries(include_dependences=False).mhb(red.a, red.b)
            results["reductions"].append(
                dict(n=n, m=m, seed=seed, style=style, sat=is_sat,
                     mhb_with=with_d, mhb_without=without_d)
            )

    for seed in range(5):
        exe = random_computation_overlay(
            processes=3, events_per_process=3, semaphores=1, shared_vars=2, seed=seed
        )
        with_d = OrderingAnalyzer(exe, include_dependences=True)
        without_d = OrderingAnalyzer(exe, include_dependences=False)
        results["overlays"].append(
            dict(
                seed=seed,
                exe=exe,
                deps=len(exe.dependences),
                mhb_with=len(with_d.relation(RelationName.MHB)),
                mhb_without=len(without_d.relation(RelationName.MHB)),
                ccw_with=len(with_d.relation(RelationName.CCW)),
                ccw_without=len(without_d.relation(RelationName.CCW)),
                mhb_with_rel=with_d.relation(RelationName.MHB),
                mhb_without_rel=without_d.relation(RelationName.MHB),
                ccw_with_rel=with_d.relation(RelationName.CCW),
                ccw_without_rel=without_d.relation(RelationName.CCW),
            )
        )
    return results


def test_ignore_dependences(benchmark):
    results = benchmark(run_study)

    lines = []
    rows = []
    for r in results["reductions"]:
        # D is empty in the constructions: identical answers either way
        assert r["mhb_with"] == r["mhb_without"] == (not r["sat"])
        rows.append([r["style"], r["n"], r["m"], r["seed"],
                     "SAT" if r["sat"] else "UNSAT", r["mhb_with"], r["mhb_without"]])
    lines += ["-- reductions (no shared data): hardness unchanged --"]
    lines += table(["style", "n", "m", "seed", "DPLL", "MHB with D", "MHB w/o D"], rows)
    lines.append("")

    rows = []
    for r in results["overlays"]:
        assert r["mhb_without_rel"].issubset(r["mhb_with_rel"])
        assert r["ccw_with_rel"].issubset(r["ccw_without_rel"])
        rows.append([r["seed"], len(r["exe"]), r["deps"],
                     r["mhb_with"], r["mhb_without"], r["ccw_with"], r["ccw_without"]])
    lines += ["-- shared-data workloads: F grows when D is ignored --"]
    lines += table(
        ["seed", "|E|", "|D|", "MHB with D", "MHB w/o D", "CCW with D", "CCW w/o D"],
        rows,
    )
    lines.append("")
    lines.append("monotonicity asserted: MHB(w/o D) subset of MHB(with D);")
    lines.append("CCW(with D) subset of CCW(w/o D)")
    report("ignore_deps", lines)
