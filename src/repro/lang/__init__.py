"""A shared-memory concurrent mini-language and its simulator.

The paper studies *executions* of shared-memory parallel programs on
sequentially consistent processors.  To produce such executions we
implement the program class itself: a small structured language with

* shared integer variables and local variables,
* assignments, ``if``/``while`` control flow (conditions read shared
  state, which is how data-dependent synchronization arises -- the
  crux of the paper's Figure 1),
* ``fork``/``join`` tasking,
* counting-semaphore ``P``/``V`` and event-style ``Post``/``Wait``/
  ``Clear`` synchronization,

plus an interpreter that executes one atomic operation per step under a
pluggable scheduler.  Interleaving semantics of atomic steps *is*
sequential consistency, so every trace the simulator produces is a
legal execution of the modelled machine.  The simulator also speaks
TSO (``memory_model="tso"``): per-process store buffers with
scheduler-chosen drain points, store-to-load forwarding, and a
``fence`` statement that waits the issuing buffer empty.  Traces
convert to
:class:`~repro.model.execution.ProgramExecution` values via
:meth:`~repro.lang.trace.Trace.to_execution`, grouping maximal
uninterrupted runs of non-synchronization steps into computation events
exactly as the paper defines them.
"""

from repro.lang.ast import (
    Expr, Const, Shared, Local, BinOp, UnOp,
    Stmt, Assign, LocalAssign, If, While, Skip,
    SemP, SemV, Post, Wait, Clear, Fence, Fork, Join,
    ProcessDef, Program,
)
from repro.lang.scheduler import (
    Scheduler, RandomScheduler, RoundRobinScheduler, FixedScheduler, PriorityScheduler,
)
from repro.lang.interpreter import Interpreter, DeadlockError, StepLimitExceeded, run_program
from repro.lang.trace import Step, Trace

__all__ = [
    "Expr", "Const", "Shared", "Local", "BinOp", "UnOp",
    "Stmt", "Assign", "LocalAssign", "If", "While", "Skip",
    "SemP", "SemV", "Post", "Wait", "Clear", "Fence", "Fork", "Join",
    "ProcessDef", "Program",
    "Scheduler", "RandomScheduler", "RoundRobinScheduler", "FixedScheduler", "PriorityScheduler",
    "Interpreter", "DeadlockError", "StepLimitExceeded", "run_program",
    "Step", "Trace",
]
