"""Race detectors: apparent (vector clock) and feasible (exact CCW).

The feasible detector is where the paper's hardness bites in practice:
each conflicting pair is an NP-hard CCW query, so the scan degrades
gracefully instead of crashing.  Every pair is classified
``feasible`` / ``infeasible`` / ``unknown`` under a per-pair
:class:`~repro.budget.Budget` (sharing one wall-clock deadline across
the scan), and a single pathological pair can neither raise away the
results already computed nor starve the remaining pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.approx.vectorclock import VectorClockAnalysis
from repro.budget import Budget, DEADLINE
from repro.core.queries import OrderingQueries
from repro.core.witness import Witness
from repro.model.execution import ProgramExecution

FEASIBLE = "feasible"
INFEASIBLE = "infeasible"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Race:
    """A pair of conflicting events that may run concurrently.

    ``witness`` (feasible races only) is a schedule in which the two
    events' intervals overlap; ``variables`` lists the shared locations
    both sides touch conflictingly.
    """

    a: int
    b: int
    variables: FrozenSet[str]
    kind: str  # "apparent" or "feasible"
    witness: Optional[Witness] = None

    def describe(self, exe: ProgramExecution) -> str:
        ea, eb = exe.event(self.a), exe.event(self.b)
        vs = ",".join(sorted(self.variables))
        return f"[{self.kind}] {ea.describe()} <-> {eb.describe()} on {{{vs}}}"


@dataclass(frozen=True)
class PairClassification:
    """One conflicting pair's outcome under a budgeted scan."""

    a: int
    b: int
    status: str  # FEASIBLE / INFEASIBLE / UNKNOWN
    variables: FrozenSet[str]
    witness: Optional[Witness] = None
    resource: Optional[str] = None  # exhausted resource when UNKNOWN

    def describe(self, exe: ProgramExecution) -> str:
        ea, eb = exe.event(self.a), exe.event(self.b)
        note = f" (exhausted {self.resource})" if self.resource else ""
        return f"[{self.status}] {ea.describe()} <-> {eb.describe()}{note}"


@dataclass
class RaceReport:
    """The result of one detection run.

    ``classifications`` (feasible scans only) records every conflicting
    pair's three-valued outcome; ``races`` keeps only the confirmed
    ones, so pre-budget callers read the report unchanged.
    """

    execution: ProgramExecution
    races: List[Race]
    kind: str
    conflicting_pairs_examined: int
    classifications: List[PairClassification] = field(default_factory=list)

    def pairs(self) -> List[Tuple[int, int]]:
        return [(r.a, r.b) for r in self.races]

    @property
    def unknown_pairs(self) -> List[PairClassification]:
        return [c for c in self.classifications if c.status == UNKNOWN]

    @property
    def complete(self) -> bool:
        """True when no pair was left undecided by a budget."""
        return not self.unknown_pairs

    def summary(self) -> str:
        base = (
            f"{self.kind} races: {len(self.races)} / "
            f"{self.conflicting_pairs_examined} conflicting pairs"
        )
        unknown = len(self.unknown_pairs)
        if unknown:
            base += f" ({unknown} unknown: budget exhausted)"
        return base

    def pretty(self) -> str:
        lines = [self.summary()]
        for r in self.races:
            lines.append("  " + r.describe(self.execution))
        for c in self.unknown_pairs:
            lines.append("  " + c.describe(self.execution))
        return "\n".join(lines)


def _conflict_variables(exe: ProgramExecution, a: int, b: int) -> FrozenSet[str]:
    ea, eb = exe.event(a), exe.event(b)
    out = set()
    for x in ea.accesses:
        for y in eb.accesses:
            if x.conflicts_with(y):
                out.add(x.variable)
    return frozenset(out)


class RaceDetector:
    """Detects apparent and feasible races of one execution.

    ``max_states`` / ``budget`` bound each pair's exact search; the
    feasible scan never raises on exhaustion -- undecided pairs are
    reported as ``unknown``.
    """

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.exe = exe
        self.max_states = max_states
        self.budget = budget

    # ------------------------------------------------------------------
    def apparent_races(self, schedule: Optional[Sequence[int]] = None) -> RaceReport:
        """Conflicting pairs unordered by the observed vector clocks.

        Fast (polynomial) but tied to the observed pairing: it can both
        miss races (a sync edge in this run masked an overlap another
        run allows) and, relative to feasibility, report pairs that
        shared-data dependences actually order.
        """
        vc = VectorClockAnalysis(self.exe, schedule)
        races: List[Race] = []
        pairs = self.exe.conflicting_pairs()
        for a, b in pairs:
            if vc.concurrent(a, b):
                races.append(Race(a, b, _conflict_variables(self.exe, a, b), "apparent"))
        return RaceReport(self.exe, races, "apparent", len(pairs))

    # ------------------------------------------------------------------
    def _effective_budget(self, budget: Optional[Budget]) -> Optional[Budget]:
        if budget is not None:
            return budget
        if self.budget is not None:
            return self.budget
        if self.max_states is not None:
            return Budget(max_states=self.max_states)
        return None

    def feasible_races(
        self,
        *,
        drop_racing_dependences: bool = True,
        budget: Optional[Budget] = None,
        per_pair_max_states: Optional[int] = None,
        per_pair_timeout: Optional[float] = None,
    ) -> RaceReport:
        """Conflicting pairs with ``a CCW b`` -- the paper's notion.

        ``drop_racing_dependences``: a conflicting pair is itself a
        shared-data dependence of the observed execution, and condition
        F3 would freeze its order, masking the very race under test.
        Following the companion race-detection paper [10], the
        dependence between the two *tested* events is dropped while all
        other dependences are kept, so the query asks "could these two
        have overlapped while the rest of the data flow stayed intact".
        Set it False to keep strict F3 semantics.

        Budgeting: each pair runs under its own child budget derived
        from ``budget`` (or the detector's), optionally tightened by
        ``per_pair_max_states`` / ``per_pair_timeout`` so one hard pair
        cannot starve the scan.  Exhaustion marks *that pair* unknown
        and the scan continues; once the shared deadline expires, the
        remaining pairs are classified unknown without searching.  The
        returned report is therefore always complete over the pair set
        -- partial only in the sense that some entries are ``unknown``.
        """
        budget = self._effective_budget(budget)
        races: List[Race] = []
        classifications: List[PairClassification] = []
        pairs = self.exe.conflicting_pairs()
        for a, b in pairs:
            variables = _conflict_variables(self.exe, a, b)
            if budget is not None and budget.expired():
                classifications.append(
                    PairClassification(a, b, UNKNOWN, variables, resource=DEADLINE)
                )
                continue
            if drop_racing_dependences:
                deps = {
                    (x, y)
                    for (x, y) in self.exe.dependences
                    if {x, y} != {a, b}
                }
                exe = self.exe.with_dependences(deps)
            else:
                exe = self.exe
            pair_budget = None
            if budget is not None:
                pair_budget = budget.per_query(
                    max_states=per_pair_max_states, timeout=per_pair_timeout
                )
            queries = OrderingQueries(exe, budget=pair_budget)
            verdict = queries.ccw_verdict(a, b)
            if verdict.is_true:
                w = verdict.witness
                races.append(Race(a, b, variables, "feasible", witness=w))
                classifications.append(
                    PairClassification(a, b, FEASIBLE, variables, witness=w)
                )
            elif verdict.is_false:
                classifications.append(
                    PairClassification(a, b, INFEASIBLE, variables)
                )
            else:
                classifications.append(
                    PairClassification(
                        a, b, UNKNOWN, variables, resource=verdict.resource
                    )
                )
        return RaceReport(self.exe, races, "feasible", len(pairs), classifications)
