"""Round-trip tests for execution JSON serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.core.relations import ALL_RELATIONS, OrderingAnalyzer
from repro.model import serialize
from repro.workloads.programs import figure1_execution
from repro.reductions import semaphore_reduction
from repro.sat.cnf import CNF

from tests.strategies import medium_semaphore_executions, small_event_executions


def same_execution(a, b) -> bool:
    return (
        [e.describe() for e in a.events] == [e.describe() for e in b.events]
        and a.processes == b.processes
        and a.fork_children == b.fork_children
        and a.join_targets == b.join_targets
        and a.parent_fork == b.parent_fork
        and a.dependences == b.dependences
        and a.observed_schedule == b.observed_schedule
        and {s: a.sem_initial(s) for s in a.semaphores}
        == {s: b.sem_initial(s) for s in b.semaphores}
    )


class TestRoundTrip:
    def test_figure1(self):
        exe = figure1_execution()
        again = serialize.loads(serialize.dumps(exe))
        assert same_execution(exe, again)

    def test_reduction_execution(self):
        red = semaphore_reduction(CNF([(1, 2, 3)]))
        again = serialize.loads(serialize.dumps(red.execution))
        assert same_execution(red.execution, again)
        assert again.by_label("a").eid == red.a

    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_random_semaphore_executions(self, exe):
        assert same_execution(exe, serialize.loads(serialize.dumps(exe)))

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_random_event_executions(self, exe):
        assert same_execution(exe, serialize.loads(serialize.dumps(exe)))

    def test_relations_survive_round_trip(self):
        exe = figure1_execution()
        again = serialize.loads(serialize.dumps(exe))
        a = OrderingAnalyzer(exe)
        b = OrderingAnalyzer(again)
        for name in ALL_RELATIONS:
            assert a.relation(name) == b.relation(name)

    def test_file_round_trip(self, tmp_path):
        exe = figure1_execution()
        path = tmp_path / "exe.json"
        serialize.save(exe, str(path))
        assert same_execution(exe, serialize.load(str(path)))


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-execution"):
            serialize.loads(json.dumps({"format": "something-else"}))

    def test_wrong_version_rejected(self):
        doc = serialize.execution_to_dict(figure1_execution())
        doc["version"] = 99
        with pytest.raises(ValueError, match="unsupported format version"):
            serialize.execution_from_dict(doc)

    def test_corrupt_structure_rejected(self):
        doc = serialize.execution_to_dict(figure1_execution())
        doc["processes"]["main"] = [999]
        with pytest.raises(ValueError):
            serialize.execution_from_dict(doc)

    def test_document_is_sorted_stable(self):
        exe = figure1_execution()
        assert serialize.dumps(exe) == serialize.dumps(exe)
