"""Synchronization-object semantics (the paper's program class).

The paper considers fork/join plus either counting semaphores or
event-style synchronization on a sequentially consistent machine:

* a counting semaphore ``s`` holds a non-negative count; ``V(s)``
  increments it, ``P(s)`` blocks until the count is positive and then
  decrements it (the paper's reductions initialize all semaphores to
  zero);
* an event variable ``v`` is either *posted* or *cleared*; ``Post(v)``
  sets it posted, ``Clear(v)`` sets it cleared, ``Wait(v)`` blocks
  until it is posted (it does **not** consume the post);
* ``fork`` creates processes, ``join`` blocks until the named processes
  have completed.

These state machines are the single source of truth for legality: the
interpreter steps them as a program runs, and the exact ordering engine
replays them when validating witness schedules.
"""

from repro.sync.semaphore import Semaphore, BinarySemaphore, SemaphoreError
from repro.sync.eventvar import EventVariable
from repro.sync.state import SyncState

__all__ = [
    "Semaphore",
    "BinarySemaphore",
    "SemaphoreError",
    "EventVariable",
    "SyncState",
]
