"""Combined synchronization state for one run of an execution's events.

:class:`SyncState` bundles every semaphore and event variable of an
execution plus process-completion tracking (for joins), and exposes the
two operations every consumer needs:

* ``can_complete(event)`` -- could this event's operation complete in
  the current state?
* ``complete(event)`` -- apply the operation's effect (raises if the
  operation could not legally complete).

The exact ordering engine packs the same information into integers for
speed; ``tests/test_core_engine.py`` cross-checks the packed transition
function against this reference implementation on random executions.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.model.events import Event, EventKind
from repro.model.execution import ProgramExecution
from repro.sync.eventvar import EventVariable
from repro.sync.semaphore import BinarySemaphore, Semaphore


class SyncState:
    """Mutable synchronization state for replaying/validating schedules."""

    def __init__(self, exe: ProgramExecution, *, binary_semaphores: bool = False):
        self._exe = exe
        sem_cls = BinarySemaphore if binary_semaphores else Semaphore
        self.semaphores: Dict[str, Semaphore] = {
            s: sem_cls(s, exe.sem_initial(s)) for s in exe.semaphores
        }
        self.variables: Dict[str, EventVariable] = {
            v: EventVariable(v, exe.var_initially_posted(v)) for v in exe.event_variables
        }
        self._completed: Set[int] = set()
        self._remaining_per_process: Dict[str, int] = {
            p: len(exe.process_events(p)) for p in exe.process_names
        }

    # ------------------------------------------------------------------
    @property
    def completed(self) -> Set[int]:
        return set(self._completed)

    def process_done(self, name: str) -> bool:
        return self._remaining_per_process[name] == 0

    # ------------------------------------------------------------------
    def can_complete(self, event: Event) -> bool:
        """Synchronization-semantics gate for the event's completion.

        This checks only the operation semantics -- program order, fork
        prerequisites and dependences are ordering constraints handled
        by the caller (engine or interpreter).
        """
        k = event.kind
        if k is EventKind.SEM_P:
            return self.semaphores[event.obj].can_p()
        if k is EventKind.WAIT:
            return self.variables[event.obj].can_wait()
        if k is EventKind.JOIN:
            targets = self._exe.join_targets[event.eid]
            return all(self.process_done(t) for t in targets)
        return True

    def complete(self, event: Event) -> None:
        """Apply the event's completion effect."""
        if event.eid in self._completed:
            raise RuntimeError(f"event {event.eid} completed twice")
        if not self.can_complete(event):
            raise RuntimeError(f"event {event!r} completed while blocked")
        k = event.kind
        if k is EventKind.SEM_P:
            self.semaphores[event.obj].p()
        elif k is EventKind.SEM_V:
            self.semaphores[event.obj].v()
        elif k is EventKind.POST:
            self.variables[event.obj].post()
        elif k is EventKind.CLEAR:
            self.variables[event.obj].clear()
        elif k is EventKind.WAIT:
            self.variables[event.obj].wait()
        # COMPUTATION / FORK / JOIN have no synchronization effect.
        self._completed.add(event.eid)
        self._remaining_per_process[event.process] -= 1

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """A hashable snapshot (used in tests comparing against the engine)."""
        sems = tuple(self.semaphores[s].count for s in sorted(self.semaphores))
        vars_ = tuple(self.variables[v].posted for v in sorted(self.variables))
        return (frozenset(self._completed), sems, vars_)
