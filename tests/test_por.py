"""Differential tests for sleep-set partial-order reduction.

The reference enumerator (``core/enumerate.py``) stays unreduced on
purpose: it is the oracle here.  The properties pin exactly what
DESIGN.md Section 4.3 argues -- all three ``por`` modes return the same
verdicts as brute force (feasibility AND race classifications, under
both memory models), and reduction only ever removes search states.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import FeasibilityEngine, SearchStats
from repro.core.enumerate import (
    enumerate_serial_schedules,
    relations_by_enumeration,
)
from repro.core.relations import RelationName
from repro.core.witness import replay_schedule
from repro.races.detector import FEASIBLE, RaceDetector
from repro.workloads.generators import random_computation_overlay

POR_MODES = ("sleep", "hoist", "off")
MODELS = ("sc", "tso")


def tiny_overlay_executions():
    """Enumeration-tractable computation overlays with a non-empty D
    (point-schedule enumeration is exponential in 2|E|: keep |E| <= 6)."""
    return st.builds(
        random_computation_overlay,
        processes=st.integers(2, 3),
        events_per_process=st.integers(1, 2),
        semaphores=st.integers(1, 2),
        shared_vars=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )


def small_overlay_executions():
    """Engine-tractable overlays for the scan-level differentials."""
    return st.builds(
        random_computation_overlay,
        processes=st.integers(2, 3),
        events_per_process=st.integers(2, 3),
        semaphores=st.integers(1, 2),
        shared_vars=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )


def _classifications(exe, por, **kw):
    report = RaceDetector(exe, por=por).feasible_races(**kw)
    return [(c.a, c.b, c.status) for c in report.classifications]


@given(tiny_overlay_executions())
@settings(max_examples=40, deadline=None)
def test_feasibility_matches_brute_force_under_both_models(exe_sc):
    for model in MODELS:
        exe = exe_sc.with_memory_model(model)
        brute = next(enumerate_serial_schedules(exe, limit=1), None) is not None
        for por in POR_MODES:
            pts = FeasibilityEngine(exe, por=por).search()
            assert (pts is not None) == brute, (model, por)
            if pts is not None:
                replay_schedule(exe, pts)  # the witness must be real


@given(tiny_overlay_executions())
@settings(max_examples=15, deadline=None)
def test_race_verdicts_match_brute_force_ccw(exe_sc):
    # drop_racing_dependences=False so the oracle relation is plain CCW
    # over the same execution the detector searches
    for model in MODELS:
        exe = exe_sc.with_memory_model(model)
        ccw = relations_by_enumeration(exe)[RelationName.CCW]
        for por in POR_MODES:
            for a, b, status in _classifications(
                exe, por, drop_racing_dependences=False
            ):
                assert (status == FEASIBLE) == ccw(a, b), (model, por, a, b)


@given(small_overlay_executions())
@settings(max_examples=25, deadline=None)
def test_scan_classifications_agree_and_por_only_removes_states(exe_sc):
    for model in MODELS:
        exe = exe_sc.with_memory_model(model)
        states = {}
        verdicts = {}
        for por in POR_MODES:
            # engine-only ladder: every pair pays the exact search, so
            # the states comparison measures the reduction, not the
            # cheaper tiers
            det = RaceDetector(exe, plan=("structural", "engine"), por=por)
            report = det.feasible_races()
            verdicts[por] = [
                (c.a, c.b, c.status) for c in report.classifications
            ]
            states[por] = report.planner.engine_states()
        assert verdicts["sleep"] == verdicts["hoist"] == verdicts["off"]
        assert states["sleep"] <= states["off"], (model, states)
        assert states["hoist"] <= states["off"], (model, states)


@given(tiny_overlay_executions())
@settings(max_examples=25, deadline=None)
def test_sleep_set_search_states_bounded_by_unreduced_search(exe_sc):
    # the single-search property behind the scan-level one: on the same
    # engine question, reduction never visits more states than "off"
    for model in MODELS:
        exe = exe_sc.with_memory_model(model)
        visited = {}
        for por in POR_MODES:
            stats = SearchStats()
            FeasibilityEngine(exe, por=por).search(stats=stats)
            visited[por] = stats.states_visited
        assert visited["sleep"] <= visited["off"], (model, visited)
        assert visited["hoist"] <= visited["off"], (model, visited)
