"""Data-race detection on top of the ordering relations.

The paper's closing implication: "exhaustively detecting all data races
potentially exhibited by a given program execution is an intractable
problem", because a *feasible* race between conflicting events ``a``
and ``b`` is exactly ``a CCW b`` -- could the two conflicting accesses
have executed concurrently in some feasible execution?  This package
provides:

* *apparent* races -- conflicting pairs unordered by the vector-clock
  happened-before of the observed execution (the cheap, classical
  detector: sound for the observed pairing only);
* *feasible* races -- conflicting pairs with ``CCW`` decided by the
  exact engine, each with a replayable witness schedule exhibiting the
  overlap.
"""

from repro.races.detector import (
    PairClassification,
    Race,
    RaceDetector,
    RaceReport,
)

__all__ = ["PairClassification", "Race", "RaceDetector", "RaceReport"]
