"""Tests for CNF formulas, DIMACS round-trip and 3-CNF normalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.bruteforce import brute_force_satisfiable
from repro.sat.cnf import CNF, Clause, parse_dimacs, to_dimacs


class TestClause:
    def test_literal_zero_rejected(self):
        with pytest.raises(ValueError):
            Clause([0])

    def test_variables(self):
        assert Clause([1, -2, 3]).variables == {1, 2, 3}

    def test_tautology(self):
        assert Clause([1, -1, 2]).is_tautology()
        assert not Clause([1, 2]).is_tautology()

    def test_evaluate(self):
        c = Clause([1, -2])
        assert c.evaluate({1: True, 2: True})
        assert c.evaluate({1: False, 2: False})
        assert not c.evaluate({1: False, 2: True})

    def test_missing_variable_defaults_false(self):
        assert Clause([-1]).evaluate({})
        assert not Clause([1]).evaluate({})

    def test_repr(self):
        assert repr(Clause([1, -2])) == "(x1 | ~x2)"


class TestCNF:
    def test_num_vars_inferred(self):
        assert CNF([(1, 5)]).num_vars == 5

    def test_num_vars_declared_too_small(self):
        with pytest.raises(ValueError):
            CNF([(1, 5)], num_vars=3)

    def test_evaluate_conjunction(self):
        f = CNF([(1,), (-2,)])
        assert f.evaluate({1: True, 2: False})
        assert not f.evaluate({1: True, 2: True})

    def test_is_3cnf(self):
        assert CNF([(1, 2, 3)]).is_3cnf()
        assert not CNF([(1, 2)]).is_3cnf()

    def test_literal_occurrences(self):
        f = CNF([(1, 2, -1), (1, 3, 3)])
        occ = f.literal_occurrences()
        assert occ[1] == 2 and occ[-1] == 1 and occ[3] == 2


class TestTo3CNF:
    def test_pads_short_clauses(self):
        f = CNF([(1,), (1, 2)]).to_3cnf()
        assert f.is_3cnf()

    def test_splits_long_clauses(self):
        f = CNF([(1, 2, 3, 4, 5)]).to_3cnf()
        assert f.is_3cnf()
        assert len(f) > 1

    def test_empty_clause_becomes_unsat_pair(self):
        f = CNF([[]], num_vars=0).to_3cnf()
        assert f.is_3cnf()
        assert brute_force_satisfiable(f) is None

    @given(
        st.lists(
            st.lists(
                st.integers(-4, 4).filter(lambda x: x != 0), min_size=1, max_size=6
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_equisatisfiable(self, clauses):
        f = CNF(clauses)
        g = f.to_3cnf()
        assert (brute_force_satisfiable(f) is not None) == (
            brute_force_satisfiable(g) is not None
        )


class TestDimacs:
    def test_round_trip(self):
        f = CNF([(1, -2, 3), (-1, 2, -3)])
        g = parse_dimacs(to_dimacs(f, comment="example"))
        assert g == f

    def test_parse_without_header(self):
        f = parse_dimacs("1 2 0\n-1 -2 0\n")
        assert len(f) == 2 and f.num_vars == 2

    def test_parse_trailing_clause_without_zero(self):
        f = parse_dimacs("p cnf 2 1\n1 2")
        assert len(f) == 1

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("p sat 3\n")

    def test_comment_lines_skipped(self):
        f = parse_dimacs("c hello\np cnf 1 1\n1 0\n")
        assert len(f) == 1
