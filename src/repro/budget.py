"""Resource governance: budgets and three-valued verdicts.

The paper's theorems make exactness expensive by necessity: every
must-relation is co-NP-hard, every could-relation NP-hard, so a single
pathological pair can consume any amount of time the caller grants it.
The engine therefore treats resource limits as first-class:

* a :class:`Budget` bundles the limits one search (or one scan of many
  searches) may consume -- a state-count cap, a **monotonic wall-clock
  deadline**, and an optional memo-table size cap -- and is checked
  cooperatively inside the DFS inner loop (the clock amortized over
  ``check_interval`` states so the hot path stays cheap);
* a :class:`Verdict` is a three-valued answer (:class:`Truth`) carrying
  provenance (which layer decided: the exact search, structural
  reachability, the observed schedule, ...), the search statistics, and
  -- when the answer is ``UNKNOWN`` -- the resource that ran out.

``UNKNOWN`` is always sound: a budgeted query may decline to answer but
never guesses.  Exhausting ``max_states`` or the deadline aborts the
search; exceeding the memo cap merely stops memoizing (the search stays
exact, only slower), so it is a memory bound rather than a verdict
source.

Deadlines are *absolute* instants on :func:`time.monotonic`, so one
budget can be shared across many searches: a race scan hands every pair
the same deadline and each pair checks it against the same clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional

# canonical resource names recorded in verdicts and stats
STATES = "states"
DEADLINE = "deadline"


class Truth(Enum):
    """Kleene three-valued logic value of a budgeted query."""

    TRUE = "TRUE"
    FALSE = "FALSE"
    UNKNOWN = "UNKNOWN"

    @staticmethod
    def of(value: bool) -> "Truth":
        return Truth.TRUE if value else Truth.FALSE

    @property
    def is_known(self) -> bool:
        return self is not Truth.UNKNOWN

    def negate(self) -> "Truth":
        if self is Truth.TRUE:
            return Truth.FALSE
        if self is Truth.FALSE:
            return Truth.TRUE
        return Truth.UNKNOWN

    def __str__(self) -> str:  # CLI-friendly
        return self.value


@dataclass(frozen=True)
class Budget:
    """Resource limits for one search or one scan of searches.

    Attributes
    ----------
    max_states:
        Cap on DFS states visited per search (``None`` = unbounded).
    deadline:
        Absolute :func:`time.monotonic` instant after which searches
        abort.  Absolute so the budget can be shared: every search
        charged to this budget races the same clock.
    max_memo_entries:
        Cap on the failure-memo table size.  Exceeding it degrades to
        non-memoized (still exact) search instead of aborting.
    check_interval:
        The clock is read once per this many visited states.
    """

    max_states: Optional[int] = None
    deadline: Optional[float] = None
    max_memo_entries: Optional[int] = None
    check_interval: int = 256

    @classmethod
    def of(
        cls,
        *,
        max_states: Optional[int] = None,
        timeout: Optional[float] = None,
        max_memo_entries: Optional[int] = None,
        check_interval: int = 256,
    ) -> "Budget":
        """Build a budget from a *relative* timeout in seconds."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        return cls(max_states, deadline, max_memo_entries, check_interval)

    # ------------------------------------------------------------------
    def unlimited(self) -> bool:
        return self.max_states is None and self.deadline is None

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def per_query(
        self,
        *,
        max_states: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "Budget":
        """Derive a child budget for one query of a larger scan.

        The child shares this budget's absolute deadline (tightened by
        ``timeout`` when given, so one hard query cannot starve the
        rest of the scan) and replaces ``max_states`` when given.
        """
        deadline = self.deadline
        if timeout is not None:
            mine = time.monotonic() + timeout
            deadline = mine if deadline is None else min(deadline, mine)
        return replace(
            self,
            max_states=self.max_states if max_states is None else max_states,
            deadline=deadline,
        )

    def describe(self) -> str:
        parts = []
        if self.max_states is not None:
            parts.append(f"max_states={self.max_states}")
        if self.deadline is not None:
            parts.append(f"deadline in {self.remaining_seconds():.3f}s")
        if self.max_memo_entries is not None:
            parts.append(f"max_memo={self.max_memo_entries}")
        return ", ".join(parts) if parts else "unlimited"


def clamp_request(
    max_states: Optional[int],
    timeout: Optional[float],
    *,
    states_cap: Optional[int] = None,
    timeout_cap: Optional[float] = None,
    default_timeout: Optional[float] = None,
) -> "tuple[Optional[int], Optional[float]]":
    """Admission control for a *requested* budget: clamp a client's
    ``(max_states, timeout)`` to the server's caps.

    A long-lived query daemon cannot let one request name an arbitrary
    budget -- an unbounded query wedges a worker for good (the queries
    are NP-hard, Theorems 1 and 3).  The rules:

    * a missing timeout gets ``default_timeout`` (every admitted
      request must carry a deadline);
    * a requested timeout above ``timeout_cap`` is silently lowered to
      it, never rejected -- the request still runs, it just may come
      back ``UNKNOWN`` sooner;
    * ``max_states`` is lowered to ``states_cap`` the same way;
    * non-positive requests are treated as absent (a ``timeout`` of 0
      would otherwise admit a request only to kill it instantly).

    >>> clamp_request(None, None, timeout_cap=30.0, default_timeout=5.0)
    (None, 5.0)
    >>> clamp_request(10**9, 3600.0, states_cap=50_000, timeout_cap=30.0)
    (50000, 30.0)
    >>> clamp_request(100, 2.0, states_cap=50_000, timeout_cap=30.0)
    (100, 2.0)
    >>> clamp_request(-5, 0.0, timeout_cap=30.0, default_timeout=5.0)
    (None, 5.0)
    """
    if max_states is not None and max_states <= 0:
        max_states = None
    if timeout is not None and timeout <= 0:
        timeout = None
    if max_states is None:
        max_states = states_cap
    elif states_cap is not None:
        max_states = min(max_states, states_cap)
    if timeout is None:
        timeout = default_timeout if default_timeout is not None else timeout_cap
    if timeout is not None and timeout_cap is not None:
        timeout = min(timeout, timeout_cap)
    return max_states, timeout


@dataclass(frozen=True)
class Verdict:
    """A three-valued query answer with provenance.

    ``provenance`` names the layer that settled the answer: ``"exact"``
    (the search completed), ``"structural"`` (reachability alone),
    ``"observed"`` (the observed schedule is a member of ``F`` and
    witnesses/refutes the query), ``"hmw"`` (the counting phases), or
    ``"trivial"`` (degenerate ``a == b`` cases).  When the truth is
    ``UNKNOWN``, ``resource`` records what ran out (``"states"`` or
    ``"deadline"``).
    """

    truth: Truth
    provenance: str = "exact"
    resource: Optional[str] = None
    witness: Optional[object] = None
    stats: Optional[object] = None

    # ------------------------------------------------------------------
    @classmethod
    def true(cls, provenance: str = "exact", *, witness=None, stats=None) -> "Verdict":
        return cls(Truth.TRUE, provenance, witness=witness, stats=stats)

    @classmethod
    def false(cls, provenance: str = "exact", *, witness=None, stats=None) -> "Verdict":
        return cls(Truth.FALSE, provenance, witness=witness, stats=stats)

    @classmethod
    def unknown(cls, *, resource: Optional[str] = None, stats=None) -> "Verdict":
        return cls(Truth.UNKNOWN, "budget", resource=resource, stats=stats)

    @classmethod
    def of_bool(cls, value: bool, provenance: str = "exact", *, witness=None, stats=None) -> "Verdict":
        return cls(Truth.of(value), provenance, witness=witness, stats=stats)

    # ------------------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.truth is Truth.TRUE

    @property
    def is_false(self) -> bool:
        return self.truth is Truth.FALSE

    @property
    def is_unknown(self) -> bool:
        return self.truth is Truth.UNKNOWN

    def negate(self) -> "Verdict":
        return replace(self, truth=self.truth.negate())

    def to_bool(self) -> bool:
        """The definite answer; raises on ``UNKNOWN`` (never guesses)."""
        if self.is_unknown:
            raise ValueError(
                f"verdict is UNKNOWN (exhausted {self.resource or 'budget'}); "
                "no definite answer available under this budget"
            )
        return self.is_true

    def __bool__(self) -> bool:
        raise TypeError(
            "Verdict is three-valued; test .is_true / .is_false / "
            ".is_unknown (or call .to_bool()) instead of truth-testing it"
        )

    def describe(self) -> str:
        if self.is_unknown:
            return f"UNKNOWN (exhausted {self.resource or 'budget'})"
        return f"{self.truth} (by {self.provenance})"


__all__ = ["Budget", "Truth", "Verdict", "STATES", "DEADLINE", "clamp_request"]
