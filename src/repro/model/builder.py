"""Fluent construction of :class:`~repro.model.execution.ProgramExecution`.

The theorem reductions, the canned workloads and many tests build
executions directly (the paper's reductions construct straight-line
programs whose every execution performs the same events, so the event
set can be written down without running anything).  The builder keeps
the bookkeeping honest: eids are dense, per-process indices are
sequential, and fork/join cross-references are created in one place.

Example
-------
>>> b = ExecutionBuilder()
>>> main = b.process("main")
>>> a = main.skip(label="a")
>>> f = main.fork()
>>> t1 = b.process("t1", parent=f)
>>> _ = t1.sem_v("s")
>>> _ = main.sem_p("s")
>>> _ = main.join(f)
>>> exe = b.build()
>>> exe.sync_style
<SyncStyle.SEMAPHORE: 'semaphore'>
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.model.events import Access, Event, EventKind
from repro.model.execution import ProgramExecution


class ForkHandle:
    """Opaque handle tying a FORK event to the processes it creates."""

    __slots__ = ("eid", "children")

    def __init__(self, eid: int):
        self.eid = eid
        self.children: List[str] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ForkHandle(eid={self.eid}, children={self.children})"


class ProcessBuilder:
    """Appends events to one process in program order."""

    def __init__(self, builder: "ExecutionBuilder", name: str):
        self._b = builder
        self.name = name
        self._next_index = 0

    # ------------------------------------------------------------------
    def _append(self, kind: EventKind, obj: Optional[str] = None,
                accesses: Tuple[Access, ...] = (), label: Optional[str] = None) -> int:
        eid = self._b._new_eid()
        ev = Event(eid=eid, process=self.name, index=self._next_index,
                   kind=kind, obj=obj, accesses=accesses, label=label)
        self._next_index += 1
        self._b._events.append(ev)
        self._b._proc_events[self.name].append(eid)
        return eid

    # -- computation ----------------------------------------------------
    def compute(self, *, reads: Iterable[str] = (), writes: Iterable[str] = (),
                label: Optional[str] = None) -> int:
        """A computation event touching the given shared variables."""
        acc = tuple(Access(v, False) for v in reads) + tuple(Access(v, True) for v in writes)
        return self._append(EventKind.COMPUTATION, accesses=acc, label=label)

    def skip(self, label: Optional[str] = None) -> int:
        """A computation event with no shared accesses (the paper's ``skip``)."""
        return self._append(EventKind.COMPUTATION, label=label)

    def read(self, variable: str, label: Optional[str] = None) -> int:
        return self.compute(reads=[variable], label=label)

    def write(self, variable: str, label: Optional[str] = None) -> int:
        return self.compute(writes=[variable], label=label)

    def fence(self, label: Optional[str] = None) -> int:
        """A memory fence (orders the process's accesses across it)."""
        return self._append(EventKind.FENCE, label=label)

    # -- semaphores -----------------------------------------------------
    def sem_p(self, name: str, label: Optional[str] = None) -> int:
        self._b._touch_semaphore(name)
        return self._append(EventKind.SEM_P, obj=name, label=label)

    def sem_v(self, name: str, label: Optional[str] = None) -> int:
        self._b._touch_semaphore(name)
        return self._append(EventKind.SEM_V, obj=name, label=label)

    # -- event variables --------------------------------------------------
    def post(self, name: str, label: Optional[str] = None) -> int:
        return self._append(EventKind.POST, obj=name, label=label)

    def wait(self, name: str, label: Optional[str] = None) -> int:
        return self._append(EventKind.WAIT, obj=name, label=label)

    def clear(self, name: str, label: Optional[str] = None) -> int:
        return self._append(EventKind.CLEAR, obj=name, label=label)

    # -- tasking ----------------------------------------------------------
    def fork(self, label: Optional[str] = None) -> ForkHandle:
        eid = self._append(EventKind.FORK, label=label)
        handle = ForkHandle(eid)
        self._b._forks[eid] = handle
        return handle

    def join(self, target: Union[ForkHandle, Iterable[str]], label: Optional[str] = None) -> int:
        """Join either everything created by a fork, or named processes."""
        if isinstance(target, ForkHandle):
            names: Tuple[str, ...] = tuple(target.children)
        else:
            names = tuple(target)
        eid = self._append(EventKind.JOIN, label=label)
        self._b._joins[eid] = names
        return eid


class ExecutionBuilder:
    """Accumulates events/processes and produces a validated execution."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._proc_events: Dict[str, List[int]] = {}
        self._proc_builders: Dict[str, ProcessBuilder] = {}
        self._parent_fork: Dict[str, int] = {}
        self._forks: Dict[int, ForkHandle] = {}
        self._joins: Dict[int, Tuple[str, ...]] = {}
        self._sem_initial: Dict[str, int] = {}
        self._var_initial: List[str] = []
        self._dependences: List[Tuple[int, int]] = []
        self._memory_model: str = "sc"

    # ------------------------------------------------------------------
    def _new_eid(self) -> int:
        return len(self._events)

    def _touch_semaphore(self, name: str) -> None:
        self._sem_initial.setdefault(name, 0)

    # ------------------------------------------------------------------
    def process(self, name: str, parent: Optional[ForkHandle] = None) -> ProcessBuilder:
        """Create a new process.

        ``parent`` ties the process to the FORK event that creates it;
        processes without a parent are roots (exist from the start).
        """
        if name in self._proc_events:
            raise ValueError(f"duplicate process name {name!r}")
        self._proc_events[name] = []
        pb = ProcessBuilder(self, name)
        self._proc_builders[name] = pb
        if parent is not None:
            if parent.eid not in self._forks:
                raise ValueError("unknown fork handle")
            parent.children.append(name)
            self._parent_fork[name] = parent.eid
        return pb

    def semaphore(self, name: str, initial: int = 0) -> None:
        """Declare a semaphore's initial count (default 0, per the paper)."""
        if initial < 0:
            raise ValueError("semaphore initial count must be non-negative")
        self._sem_initial[name] = initial

    def event_variable(self, name: str, *, posted: bool = False) -> None:
        """Declare an event variable's initial state (default cleared)."""
        if posted and name not in self._var_initial:
            self._var_initial.append(name)

    def dependence(self, a: int, b: int) -> None:
        """Record a shared-data dependence ``a ->D b``."""
        self._dependences.append((a, b))

    def memory_model(self, name: str) -> None:
        """Declare the memory model the execution ran under (default
        ``"sc"``); validated against the registered models."""
        from repro.memmodel import resolve_memory_model

        self._memory_model = resolve_memory_model(name).name

    # ------------------------------------------------------------------
    def build(self, observed_schedule: Optional[Sequence[int]] = None) -> ProgramExecution:
        fork_children = {eid: tuple(h.children) for eid, h in self._forks.items()}
        return ProgramExecution(
            self._events,
            self._proc_events,
            fork_children=fork_children,
            join_targets=self._joins,
            parent_fork=self._parent_fork,
            sem_initial=self._sem_initial,
            var_initial=self._var_initial,
            dependences=self._dependences,
            observed_schedule=observed_schedule,
            memory_model=self._memory_model,
        )
