"""The paper's primary contribution, made executable.

Given a program execution ``P = <E, T, D>``, Section 3 defines the set
``F(P)`` of *feasible program executions* -- executions performing the
same events (F1), obeying the model axioms (F2) and exhibiting the same
shared-data dependences (F3) -- and six ordering relations quantifying
over ``F(P)`` (Table 1).  The paper proves deciding the must-have
relations is co-NP-hard and the could-have relations NP-hard.

This package contains the exact decision procedures (exponential in the
worst case, as they must be unless P = NP):

* :mod:`repro.core.engine` -- a memoized state-space search over
  *begin/end point schedules* of the event set, the operational
  counterpart of the paper's interval-based temporal ordering;
* :mod:`repro.core.queries` -- the six relations as predicates over an
  execution, with witness schedules for every existential answer;
* :mod:`repro.core.relations` -- whole-relation computation with
  caching (:class:`OrderingAnalyzer`);
* :mod:`repro.core.enumerate` -- brute-force enumeration of all
  feasible point schedules, the ground truth the engine is tested
  against;
* :mod:`repro.core.witness` -- replayable witness schedules.
"""

from repro.core.engine import (
    FeasibilityEngine,
    Point,
    SearchBudgetExceeded,
    SearchStats,
    begin_point,
    end_point,
)
from repro.core.queries import OrderingQueries
from repro.core.relations import OrderingAnalyzer, RelationName, ALL_RELATIONS
from repro.core.witness import Witness, replay_schedule, IllegalScheduleError
from repro.core.enumerate import (
    enumerate_serial_schedules,
    enumerate_point_schedules,
    relations_by_enumeration,
)
from repro.core.eager import EagerOrderingQueries, eager_relations_by_enumeration

__all__ = [
    "FeasibilityEngine",
    "Point",
    "SearchBudgetExceeded",
    "SearchStats",
    "begin_point",
    "end_point",
    "OrderingQueries",
    "OrderingAnalyzer",
    "RelationName",
    "ALL_RELATIONS",
    "Witness",
    "replay_schedule",
    "IllegalScheduleError",
    "enumerate_serial_schedules",
    "enumerate_point_schedules",
    "relations_by_enumeration",
    "EagerOrderingQueries",
    "eager_relations_by_enumeration",
]
