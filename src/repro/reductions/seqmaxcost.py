"""Sequencing to minimize maximum cumulative cost (Garey & Johnson SS7).

The paper remarks that its results "can be shown to hold for a program
execution that uses a single counting semaphore by a reduction from the
problem of sequencing to minimize maximum cumulative cost".  This
module implements that source problem:

    Given jobs ``1..n`` with integer costs ``c(i)`` (negative costs
    release resource, positive costs consume it), a partial order
    ``prec`` over jobs, and a threshold ``K``: is there a linear
    extension of ``prec`` in which every prefix has cumulative cost
    at most ``K``?

The decision problem is NP-complete in general.  Provided here:

* :func:`solve_seqmaxcost` -- exact ``O(2^n)`` subset-DP (the prefix
  sum depends only on the *set* of scheduled jobs, so memoizing on the
  set is lossless);
* :func:`greedy_seqmaxcost` -- the natural heuristic (always run an
  available resource-releasing job first), which is *incomplete*;
  tests exhibit instances it misclassifies;
* :func:`random_instance` -- seeded generator for benchmarks.

:mod:`repro.reductions.single_semaphore` maps instances onto
single-semaphore executions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class SeqMaxCostInstance:
    """One SS7 instance."""

    costs: Tuple[int, ...]
    precedence: FrozenSet[Tuple[int, int]]  # (i, j): i must precede j
    threshold: int

    def __init__(self, costs: Sequence[int], precedence: Sequence[Tuple[int, int]], threshold: int):
        object.__setattr__(self, "costs", tuple(int(c) for c in costs))
        n = len(self.costs)
        prec = set()
        for i, j in precedence:
            if not (0 <= i < n and 0 <= j < n) or i == j:
                raise ValueError(f"bad precedence pair ({i}, {j})")
            prec.add((i, j))
        object.__setattr__(self, "precedence", frozenset(prec))
        object.__setattr__(self, "threshold", int(threshold))

    @property
    def num_jobs(self) -> int:
        return len(self.costs)

    def predecessors(self, j: int) -> List[int]:
        return [i for (i, k) in self.precedence if k == j]

    def is_forest(self) -> bool:
        """Whether every job has at most one direct predecessor (the
        fragment our fork-based execution encoding supports)."""
        seen: Set[int] = set()
        for _, j in self.precedence:
            if j in seen:
                return False
            seen.add(j)
        return True

    def check_sequence(self, order: Sequence[int]) -> bool:
        """Is ``order`` a legal schedule under precedence + threshold?"""
        if sorted(order) != list(range(self.num_jobs)):
            return False
        pos = {j: i for i, j in enumerate(order)}
        if any(pos[i] > pos[j] for i, j in self.precedence):
            return False
        total = 0
        for j in order:
            total += self.costs[j]
            if total > self.threshold:
                return False
        return True


def solve_seqmaxcost(inst: SeqMaxCostInstance) -> Optional[List[int]]:
    """An exact witness schedule, or None when none exists.

    DFS over job subsets with failure memoization: the cumulative cost
    after scheduling a set ``S`` is ``sum(costs[j] for j in S)``
    independent of order, so a failed set never needs revisiting.
    """
    n = inst.num_jobs
    preds = [0] * n
    for i, j in inst.precedence:
        preds[j] |= 1 << i
    costs = inst.costs
    K = inst.threshold
    failed: Set[int] = set()
    order: List[int] = []

    def total(mask: int) -> int:
        t = 0
        m = mask
        while m:
            low = m & -m
            t += costs[low.bit_length() - 1]
            m ^= low
        return t

    def rec(mask: int, running: int) -> bool:
        if mask == (1 << n) - 1:
            return True
        for j in range(n):
            bit = 1 << j
            if mask & bit or (preds[j] & ~mask):
                continue
            new_total = running + costs[j]
            if new_total > K:
                continue
            nxt = mask | bit
            if nxt in failed:
                continue
            order.append(j)
            if rec(nxt, new_total):
                return True
            order.pop()
            failed.add(nxt)
        return False

    if rec(0, 0):
        return list(order)
    return None


def greedy_seqmaxcost(inst: SeqMaxCostInstance) -> Optional[List[int]]:
    """Heuristic: among available jobs, prefer the cheapest cost.

    Sound when it succeeds (the returned schedule is checked), but
    incomplete: it can fail on feasible instances where a locally
    expensive job unlocks releases.
    """
    n = inst.num_jobs
    preds: Dict[int, Set[int]] = {j: set() for j in range(n)}
    for i, j in inst.precedence:
        preds[j].add(i)
    done: Set[int] = set()
    total = 0
    order: List[int] = []
    while len(done) < n:
        avail = [j for j in range(n) if j not in done and preds[j] <= done]
        avail.sort(key=lambda j: (inst.costs[j], j))
        placed = False
        for j in avail:
            if total + inst.costs[j] <= inst.threshold:
                order.append(j)
                done.add(j)
                total += inst.costs[j]
                placed = True
                break
        if not placed:
            return None
    return order


def random_instance(
    num_jobs: int,
    *,
    seed: int = 0,
    max_cost: int = 3,
    threshold: Optional[int] = None,
    edge_prob: float = 0.25,
    forest: bool = True,
) -> SeqMaxCostInstance:
    """A random instance; ``forest=True`` keeps precedence encodable by
    fork chains (each job at most one direct predecessor)."""
    rng = random.Random(seed)
    costs = [rng.randint(-max_cost, max_cost) for _ in range(num_jobs)]
    prec: List[Tuple[int, int]] = []
    for j in range(1, num_jobs):
        candidates = list(range(j))
        if forest:
            if rng.random() < edge_prob * len(candidates):
                prec.append((rng.choice(candidates), j))
        else:
            for i in candidates:
                if rng.random() < edge_prob:
                    prec.append((i, j))
    if threshold is None:
        threshold = max(1, max_cost)
    return SeqMaxCostInstance(costs, prec, threshold)
