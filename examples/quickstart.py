#!/usr/bin/env python3
"""Quickstart: build an execution, ask the six Table 1 questions.

We model a tiny handoff: a producer signals a semaphore, a consumer
takes it, and two unrelated loggers run on the side.  The exact engine
answers, for every event pair, whether the ordering *must* hold in all
feasible executions or *could* hold in some -- with replayable witness
schedules for every "could".

Run:  python examples/quickstart.py
"""

from repro import ExecutionBuilder, OrderingAnalyzer, OrderingQueries, RelationName


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the execution <E, T, D> directly
    # ------------------------------------------------------------------
    b = ExecutionBuilder()

    producer = b.process("producer")
    fill = producer.write("buffer", label="fill")
    signal = producer.sem_v("ready", label="V(ready)")

    consumer = b.process("consumer")
    take = consumer.sem_p("ready", label="P(ready)")
    drain = consumer.read("buffer", label="drain")

    logger = b.process("logger")
    log = logger.skip(label="log")

    # the consumer read saw the producer write: a shared-data dependence
    b.dependence(fill, drain)

    exe = b.build()
    print(f"execution: {exe}")
    print()

    # ------------------------------------------------------------------
    # 2. Pairwise questions
    # ------------------------------------------------------------------
    q = OrderingQueries(exe)

    print("Is the execution's event set feasible at all?",
          q.has_feasible_execution())
    print()

    pairs = [
        ("fill  vs drain ", fill, drain),
        ("V     vs P     ", signal, take),
        ("fill  vs log   ", fill, log),
    ]
    print(f"{'pair':<18} {'MHB':>5} {'CHB':>5} {'CCW':>5} {'MOW':>5} {'COW':>5}")
    for name, a, c in pairs:
        vals = q.relation_values(a, c)
        print(
            f"{name:<18} {str(vals['MHB']):>5} {str(vals['CHB']):>5} "
            f"{str(vals['CCW']):>5} {str(vals['MOW']):>5} {str(vals['COW']):>5}"
        )
    print()

    # Things worth noticing:
    #  * fill MHB drain: the dependence plus the V/P handoff chain the
    #    write strictly before the read in every feasible execution.
    #  * V vs P: the V must *complete* before the P completes, but a
    #    blocked P has already begun -- so they can overlap and V MHB P
    #    is False under the paper's interval semantics.
    #  * the logger is unordered with everything.

    # ------------------------------------------------------------------
    # 3. Witnesses: every "could" answer is a replayable schedule
    # ------------------------------------------------------------------
    w = q.ccw_witness(signal, take)
    print("a schedule in which V(ready) and P(ready) overlap:")
    print(w.pretty())
    w.validate()  # independent replay through the reference semantics
    print()

    # ------------------------------------------------------------------
    # 4. Whole-relation matrices
    # ------------------------------------------------------------------
    ana = OrderingAnalyzer(exe)
    print("event legend:")
    for e in exe.events:
        print(f"  {e.eid}: {e.describe()}")
    print()
    print("must-have-happened-before matrix (row MHB column):")
    print(ana.matrix(RelationName.MHB))
    print()
    print("pair counts per relation:", ana.summary())


if __name__ == "__main__":
    main()
