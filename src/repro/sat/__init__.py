"""Boolean satisfiability substrate for the theorem reductions.

Theorems 1-4 reduce from 3CNFSAT; validating them empirically requires
an independent SAT decision procedure.  Everything here is built from
scratch:

* :mod:`repro.sat.cnf` -- CNF formulas over integer literals
  (DIMACS convention: ``+i`` / ``-i``), with evaluation and 3-CNF
  normalization;
* :mod:`repro.sat.dpll` -- a DPLL solver with unit propagation, pure
  literal elimination and a most-frequent-literal branching heuristic;
* :mod:`repro.sat.bruteforce` -- exhaustive truth-table search, ground
  truth for the solver's own property tests;
* :mod:`repro.sat.generators` -- seeded random k-CNF instances and the
  small structured families (pigeonhole, chains) used by tests and
  benchmarks.
"""

from repro.sat.cnf import CNF, Clause, parse_dimacs, to_dimacs
from repro.sat.dpll import DPLLSolver, solve
from repro.sat.bruteforce import brute_force_satisfiable, all_models
from repro.sat.generators import random_ksat, pigeonhole, chain_formula, all_assignment_formula

__all__ = [
    "CNF",
    "Clause",
    "parse_dimacs",
    "to_dimacs",
    "DPLLSolver",
    "solve",
    "brute_force_satisfiable",
    "all_models",
    "random_ksat",
    "pigeonhole",
    "chain_formula",
    "all_assignment_formula",
]
