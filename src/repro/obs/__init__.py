"""Observability for long scans: structured tracing + metrics.

Every query this library answers is worst-case exponential, so real
scans run for minutes to hours under budgets, worker pools and the
tiered solver portfolio.  This package records *where* that time goes:

* :mod:`repro.obs.trace` -- span/event records (query tier
  escalations, engine progress ticks, pair classifications, worker
  lifecycle, checkpoint writes) written to a bounded JSONL sink;
  supervised workers record into an in-memory sink and ship their
  spans home over the existing result channel.  A trace re-aggregates
  (``repro trace summarize``) into exactly the per-tier table the live
  :class:`~repro.solve.planner.PlannerReport` prints;
* :mod:`repro.obs.metrics` -- a counter/gauge/histogram registry
  rendered as a Prometheus-style text snapshot (``--metrics FILE``);
* :mod:`repro.obs.progress` -- the live stderr progress line
  (done/feasible/infeasible/unknown, rate, budget-aware ETA).

Everything defaults to :data:`~repro.obs.trace.NULL_SINK`, a no-op
whose ``enabled`` flag call sites check before building a record, so
untraced runs pay nothing.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    planner_metrics,
    scan_metrics,
)
from repro.obs.progress import ScanProgress
from repro.obs.trace import (
    NULL_SINK,
    JsonlTraceSink,
    NullSink,
    RecordingSink,
    TraceError,
    TraceSink,
    TraceSummary,
    read_trace,
    summarize_trace,
    validate_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "planner_metrics",
    "scan_metrics",
    "ScanProgress",
    "NULL_SINK",
    "JsonlTraceSink",
    "NullSink",
    "RecordingSink",
    "TraceError",
    "TraceSink",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
    "validate_record",
]
