"""Supervised (crash-isolated) race scanning: pool, retries, rlimits.

The fault-injection tests drive the pool through every death mode a
real scan can hit -- segfault, OOM past the rlimit, hang, in-worker
exception -- and assert the scan itself always finishes, with exactly
the faulted pairs ``unknown`` (carrying the right resource) and every
healthy pair classified identically to the serial scanner.  The
subprocess tests kill a checkpointed CLI scan outright (SIGKILL /
SIGINT) and assert the journal makes ``--resume`` exact.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.budget import Budget
from repro.cli import main as cli_main
from repro.lang.ast import Assign, Const, ProcessDef, Program, SemP, SemV, Shared
from repro.lang.interpreter import run_program
from repro.lang.scheduler import FixedScheduler
from repro.model import serialize
from repro.races import detector as detector_mod
from repro.races.detector import UNKNOWN, RaceDetector
from repro.supervise import (
    JournalError,
    ResourceLimits,
    RetryPolicy,
    SupervisedScanner,
    pair_count,
)
from repro.supervise.rlimits import apply_limits

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def masking_execution(width: int = 3):
    """``width`` writers race a reader through a semaphore token --
    ``width`` conflicting pairs, every one a feasible race."""
    procs = [
        ProcessDef(f"w{k}", [Assign(f"x{k}", Const(1)), SemV("s")])
        for k in range(width)
    ]
    reader = [SemP("s")] + [
        Assign(f"y{k}", Shared(f"x{k}")) for k in range(width)
    ]
    procs.append(ProcessDef("r", reader))
    prog = Program(procs)
    schedule = ["w0", "w0", "r"] + [
        x for k in range(1, width) for x in (f"w{k}", f"w{k}")
    ] + ["r"] * width
    return run_program(prog, FixedScheduler(schedule)).to_execution()


def fault_key(pair):
    return f"{pair[0]},{pair[1]}"


def by_pair(report):
    return {(c.a, c.b): c for c in report.classifications}


# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_should_retry_bounds(self):
        p = RetryPolicy(max_retries=2)
        assert p.should_retry(1) and p.should_retry(2)
        assert not p.should_retry(3)

    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.4)

    def test_state_escalation(self):
        p = RetryPolicy(state_escalation=2.0)
        assert p.escalated_states(100, 0) == 100
        assert p.escalated_states(100, 1) == 200
        assert p.escalated_states(100, 2) == 400
        assert p.escalated_states(None, 2) is None

    def test_jitter_defaults_off_and_keys_are_ignored_then(self):
        p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        # with jitter off, a key must not perturb the exact schedule
        assert p.delay(1, key=(3, 7)) == pytest.approx(0.1)
        assert p.delay(2, key=(3, 7)) == pytest.approx(0.2)

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(backoff_base=0.1, jitter=0.5, jitter_seed=42)
        d1 = p.delay(1, key=(3, 7))
        assert d1 == p.delay(1, key=(3, 7))  # same key: same delay
        # jitter only ever *shortens*, within the configured fraction
        assert 0.05 <= d1 <= 0.1
        assert p.delay(2, key=(3, 7)) != pytest.approx(2 * d1)

    def test_jitter_spreads_workers_after_a_shared_cause_crash(self):
        # N workers retrying the same attempt must not back off in
        # lockstep: their per-key delays should be well spread
        p = RetryPolicy(backoff_base=1.0, jitter=0.5, jitter_seed=0)
        delays = {p.delay(1, key=(a, a + 1)) for a in range(20)}
        assert len(delays) >= 15
        assert all(0.5 <= d <= 1.0 for d in delays)
        # a different seed reshuffles deterministically
        other = RetryPolicy(backoff_base=1.0, jitter=0.5, jitter_seed=1)
        assert {other.delay(1, key=(a, a + 1)) for a in range(20)} != delays


class TestResourceLimits:
    def test_no_limits_is_a_noop(self):
        assert not apply_limits(None)
        assert not apply_limits(ResourceLimits())
        assert not ResourceLimits().any()
        assert ResourceLimits(max_memory_mb=64).any()


# ----------------------------------------------------------------------
class TestSupervisedScanner:
    def test_parallel_matches_serial(self):
        exe = masking_execution(3)
        serial = RaceDetector(exe).feasible_races()
        parallel = RaceDetector(exe).feasible_races(
            runner=SupervisedScanner(jobs=2)
        )
        assert [(c.a, c.b, c.status) for c in parallel.classifications] == [
            (c.a, c.b, c.status) for c in serial.classifications
        ]
        assert parallel.pairs() == serial.pairs()
        for race in parallel.races:
            race.witness.validate(include_dependences=False)

    def test_crash_oom_hang_isolated(self):
        """The acceptance scenario: one segfaulting pair, one OOMing
        pair, one hanging pair -- the scan completes, those pairs are
        unknown with the right resource, the rest match serial."""
        exe = masking_execution(4)
        pairs = exe.conflicting_pairs()
        crash_pair, oom_pair, hang_pair = pairs[0], pairs[1], pairs[2]
        scanner = SupervisedScanner(
            jobs=2,
            limits=ResourceLimits(max_memory_mb=256),
            retry=RetryPolicy(max_retries=1, backoff_base=0.01),
            pair_wall_timeout=2.0,
            faults={
                fault_key(crash_pair): {"action": "segv"},
                fault_key(oom_pair): {"action": "oom"},
                fault_key(hang_pair): {"action": "hang", "seconds": 600},
            },
        )
        report = RaceDetector(exe).feasible_races(runner=scanner)
        got = by_pair(report)
        assert got[crash_pair].status == UNKNOWN
        assert got[crash_pair].resource == "crash"
        assert got[oom_pair].status == UNKNOWN
        assert got[oom_pair].resource == "memory"
        assert got[hang_pair].status == UNKNOWN
        assert got[hang_pair].resource == "deadline"
        serial = by_pair(RaceDetector(exe).feasible_races())
        for pair in pairs[3:]:
            assert got[pair].status == serial[pair].status

    def test_transient_crash_recovers_on_retry(self):
        exe = masking_execution(3)
        pairs = exe.conflicting_pairs()
        scanner = SupervisedScanner(
            jobs=2,
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
            faults={fault_key(pairs[0]): {"action": "segv", "attempts": 1}},
        )
        report = RaceDetector(exe).feasible_races(runner=scanner)
        serial = by_pair(RaceDetector(exe).feasible_races())
        assert by_pair(report)[pairs[0]].status == serial[pairs[0]].status

    def test_in_worker_exception_is_isolated(self):
        exe = masking_execution(3)
        pairs = exe.conflicting_pairs()
        scanner = SupervisedScanner(
            jobs=2,
            retry=RetryPolicy(max_retries=0),
            faults={fault_key(pairs[1]): {"action": "no-such-action"}},
        )
        report = RaceDetector(exe).feasible_races(runner=scanner)
        got = by_pair(report)
        assert got[pairs[1]].status == UNKNOWN
        assert got[pairs[1]].resource == "crash"
        serial = by_pair(RaceDetector(exe).feasible_races())
        for pair in (pairs[0], pairs[2]):
            assert got[pair].status == serial[pair].status

    def test_expired_deadline_skips_search(self):
        exe = masking_execution(3)
        report = RaceDetector(
            exe, budget=Budget.of(timeout=0.0)
        ).feasible_races(runner=SupervisedScanner(jobs=2))
        assert all(c.status == UNKNOWN for c in report.classifications)
        assert all(c.resource == "deadline" for c in report.classifications)


class TestSerialInterrupt:
    def test_ctrl_c_mid_serial_scan_yields_partial_report(self, monkeypatch):
        exe = masking_execution(3)
        real = detector_mod.classify_pair
        calls = []

        def flaky(*args, **kwargs):
            calls.append(args)
            if len(calls) == 2:
                raise KeyboardInterrupt()
            return real(*args, **kwargs)

        monkeypatch.setattr(detector_mod, "classify_pair", flaky)
        report = RaceDetector(exe).feasible_races()
        assert report.interrupted
        assert not report.complete
        assert len(report.classifications) == 1
        assert "interrupted" in report.summary()


# ----------------------------------------------------------------------
needs_posix_kill = pytest.mark.skipif(
    not hasattr(os, "killpg"), reason="needs POSIX process groups"
)


def _spawn_cli_scan(exe_path, journal_path, fault_spec):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "races", str(exe_path),
            "--jobs", "2", "--checkpoint", str(journal_path),
            "--fault-spec", json.dumps(fault_spec),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        start_new_session=True,
    )


def _killpg_quietly(proc, sig):
    try:
        os.killpg(proc.pid, sig)
    except ProcessLookupError:
        pass  # already gone


def _wait_for_journal(journal_path, n, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if os.path.exists(journal_path) and pair_count(str(journal_path)) >= n:
                return
        except JournalError:
            pass  # mid-append
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {n} pairs")


@needs_posix_kill
class TestKillAndResume:
    def test_sigkill_mid_scan_then_resume_recomputes_nothing(self, tmp_path):
        exe = masking_execution(3)
        pairs = exe.conflicting_pairs()
        exe_path = tmp_path / "exe.json"
        serialize.save(exe, str(exe_path))
        journal = tmp_path / "scan.jsonl"
        # one pair hangs forever, so the scan is guaranteed to still be
        # running (with every other pair journaled) when we SIGKILL it
        proc = _spawn_cli_scan(
            exe_path, journal,
            {fault_key(pairs[0]): {"action": "hang", "seconds": 600}},
        )
        try:
            _wait_for_journal(journal, len(pairs) - 1)
        finally:
            _killpg_quietly(proc, signal.SIGKILL)
            proc.wait(timeout=30)
        assert pair_count(str(journal)) == len(pairs) - 1
        # resume without the fault: only the missing pair is computed
        report_path = tmp_path / "report.json"
        rc = cli_main([
            "races", str(exe_path), "--jobs", "2",
            "--checkpoint", str(journal), "--resume",
            "--save", str(report_path),
        ])
        assert rc == 0
        # every journaled pair was reused: exactly one new record
        assert pair_count(str(journal)) == len(pairs)
        resumed = serialize.load_report(str(report_path))
        serial = RaceDetector(exe).feasible_races()
        assert [(c.a, c.b, c.status) for c in resumed.classifications] == [
            (c.a, c.b, c.status) for c in serial.classifications
        ]
        assert resumed.summary() == serial.summary()

    def test_sigint_exits_130_with_partial_journal(self, tmp_path):
        if signal.getsignal(signal.SIGINT) == signal.SIG_IGN:
            # a backgrounded (non-job-control) test run inherits
            # SIGINT=SIG_IGN, which the scan subprocess inherits in
            # turn -- Ctrl-C semantics cannot be observed here
            pytest.skip("SIGINT is ignored in this environment")
        exe = masking_execution(3)
        pairs = exe.conflicting_pairs()
        exe_path = tmp_path / "exe.json"
        serialize.save(exe, str(exe_path))
        journal = tmp_path / "scan.jsonl"
        proc = _spawn_cli_scan(
            exe_path, journal,
            {fault_key(pairs[0]): {"action": "hang", "seconds": 600}},
        )
        try:
            try:
                _wait_for_journal(journal, len(pairs) - 1)
            finally:
                _killpg_quietly(proc, signal.SIGINT)
            _, err = proc.communicate(timeout=60)
        finally:
            _killpg_quietly(proc, signal.SIGKILL)  # never leak a hung scan
        assert proc.returncode == 130
        assert b"interrupted" in err
        assert pair_count(str(journal)) == len(pairs) - 1


# ----------------------------------------------------------------------
class TestSecondInterruptDuringDrain:
    """A second Ctrl-C while the pool drains means "now": the pool
    stops draining and re-raises, so the CLI exits 130 -- with every
    record appended before the hard exit still parseable."""

    def test_hard_interrupt_reraises_without_torn_journal(self, tmp_path):
        from repro.supervise.checkpoint import CheckpointJournal, scan_fingerprint

        exe = masking_execution(3)
        journal_path = str(tmp_path / "scan.jsonl")
        journal = CheckpointJournal.open(journal_path, scan_fingerprint(exe))
        hits = []

        def interrupted_append(c):
            # model Ctrl-C landing right after each durable append: the
            # first raise starts the drain, the second one lands inside
            # it and must hard-abort the scan
            journal.append(c)
            hits.append(c)
            raise KeyboardInterrupt

        # a generous drain window so the second in-flight pair's result
        # deterministically arrives while the pool is still draining
        scanner = SupervisedScanner(jobs=2, poll_interval=5.0, drain_grace=30.0)
        with pytest.raises(KeyboardInterrupt):
            RaceDetector(exe).feasible_races(
                runner=scanner, on_classified=interrupted_append
            )
        journal.close()
        # no torn tail: the journal parses, one record per append
        assert pair_count(journal_path) == len(hits)
        assert len(hits) >= 2  # the hard exit happened during the drain
