"""Theorem 3/4 construction: 3CNFSAT -> event-style execution.

The event-variable analogue of Theorem 1's program.  The variable
gadget implements two-process mutual exclusion with the ``Clear``
primitive (the paper stresses that ``Clear`` is what makes this
possible; without it the problem's complexity is open)::

    var_i (parent):  Post(Ai); Post(Bi); fork; join
        child true_i:   Clear(Ai); Wait(Bi); Post(Xi+)
        child false_i:  Clear(Bi); Wait(Ai); Post(Xi-)

During the first pass at most one child can get through -- the cycle
``Wait(Ai) before Clear(Ai)``'s effect and ``Wait(Bi) before
Clear(Bi)``'s effect cannot both be satisfied -- so at most one of
``Post(Xi+)``/``Post(Xi-)`` is issued before the second pass.  (Both
children may also block, which merely guesses "no value"; that can
only make fewer clauses true.)

Clause and marker processes mirror Theorem 1::

    clause_j_k: Wait(Lk); Post(Cj)
    alpha:      a: skip; Post(A1); Post(B1); ...; Post(An); Post(Bn)
    beta:       Wait(C1); ...; Wait(Cm); b: skip

``alpha``'s second-pass posts re-arm every gadget so all events can
always complete; ``b`` can execute before ``a`` iff a consistent set of
first-pass guesses satisfies every clause, i.e. iff ``B`` is
satisfiable.
"""

from __future__ import annotations

from repro.model.builder import ExecutionBuilder
from repro.model.execution import SyncStyle
from repro.reductions.common import SatReduction
from repro.sat.cnf import CNF


def _literal_variable(lit: int) -> str:
    return f"X{abs(lit)}{'+' if lit > 0 else '-'}"


def event_reduction(cnf: CNF) -> SatReduction:
    """Build the Theorem 3 execution for ``cnf``."""
    if any(len(c) == 0 for c in cnf.clauses):
        raise ValueError("empty clauses are not representable (pad via to_3cnf)")

    b = ExecutionBuilder()
    n = cnf.num_vars
    m = len(cnf.clauses)

    # variable gadgets (all event variables start cleared) ----------------
    for i in range(1, n + 1):
        parent = b.process(f"var{i}")
        parent.post(f"A{i}")
        parent.post(f"B{i}")
        handle = parent.fork()

        true_c = b.process(f"var{i}_true", parent=handle)
        true_c.clear(f"A{i}")
        true_c.wait(f"B{i}")
        true_c.post(_literal_variable(i))

        false_c = b.process(f"var{i}_false", parent=handle)
        false_c.clear(f"B{i}")
        false_c.wait(f"A{i}")
        false_c.post(_literal_variable(-i))

        parent.join(handle)

    # clause gadgets -------------------------------------------------------
    for j, clause in enumerate(cnf.clauses, start=1):
        for k, lit in enumerate(clause, start=1):
            proc = b.process(f"clause{j}_lit{k}")
            proc.wait(_literal_variable(lit))
            proc.post(f"C{j}")

    # marker processes -----------------------------------------------------
    alpha = b.process("alpha")
    a_eid = alpha.skip(label="a")
    for i in range(1, n + 1):
        alpha.post(f"A{i}")
        alpha.post(f"B{i}")

    beta = b.process("beta")
    for j in range(1, m + 1):
        beta.wait(f"C{j}")
    b_eid = beta.skip(label="b")

    exe = b.build()
    return SatReduction(cnf=cnf, execution=exe, a=a_eid, b=b_eid, style=SyncStyle.EVENT)
