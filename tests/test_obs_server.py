"""The live ``--serve`` endpoint: StatusBoard, ObsServer, CLI wiring.

The acceptance scenario is tested live: a fault-injected pool scan is
polled over real HTTP while it runs; ``/status`` must show the worker
crash and restart, stay valid JSON throughout, and end with pair
counts that match the final report exactly.  ``/metrics`` must parse
as Prometheus text at every point in the scan's life.  The subprocess
tests cover the CLI contract: a taken port fails loudly with exit
status 2 before any scan work, and SIGINT during a served scan still
exits 130 cleanly with the server torn down.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.budget import Budget
from repro.model import serialize
from repro.obs import (
    ObsServer,
    SearchProfile,
    StatusBoard,
    render_status_metrics,
)
from repro.obs.server import status_document
from repro.races.detector import RaceDetector
from repro.solve.planner import PlannerReport
from repro.supervise import RetryPolicy, SupervisedScanner

from tests.test_supervise import SRC_DIR, fault_key, masking_execution


class _C:
    def __init__(self, status):
        self.status = status


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def _parse_prometheus(text):
    """Strict-enough Prometheus text parser: every non-comment line
    must be ``name[{labels}] value`` with a float value."""
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples


def _free_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


# ----------------------------------------------------------------------
class TestStatusBoard:
    def test_snapshot_is_complete_before_scan_starts(self):
        snap = StatusBoard().latest()
        assert snap["state"] == "starting"
        assert snap["pairs"] == {
            "total": 0, "done": 0,
            "feasible": 0, "infeasible": 0, "unknown": 0,
        }
        json.dumps(snap)  # the whole document is JSON-serializable

    def test_pair_counts_and_eta(self):
        board = StatusBoard()
        board.begin_scan(total=4, fingerprint="deadbeef")
        board.pair_done(_C("feasible"))
        board.pair_done(_C("unknown"))
        snap = board.latest()
        assert snap["state"] == "scanning"
        assert snap["fingerprint"] == "deadbeef"
        assert snap["pairs"]["done"] == 2
        assert snap["pairs"]["feasible"] == 1
        assert snap["pairs"]["unknown"] == 1
        assert snap["rate_pairs_per_second"] > 0
        assert snap["eta_seconds"] is not None
        board.pair_done(_C("infeasible"))
        board.pair_done(_C("infeasible"))
        board.finish("done")
        snap = board.latest()
        assert snap["state"] == "done"
        assert snap["pairs"]["done"] == snap["pairs"]["total"] == 4
        assert snap["eta_seconds"] == 0.0

    def test_precomputed_pairs_count_but_not_toward_rate(self):
        board = StatusBoard()
        board.begin_scan(total=10)
        for _ in range(5):
            board.pair_done(_C("infeasible"), fresh=False)
        snap = board.latest()
        assert snap["pairs"]["done"] == 5
        # replayed pairs arrive instantly; projecting the remaining 5
        # from them would promise an absurd ETA
        assert snap["rate_pairs_per_second"] in (None, 0.0)
        assert snap["eta_seconds"] is None

    def test_worker_lifecycle_table(self):
        board = StatusBoard()
        board.begin_scan(total=3)
        board.observe({"kind": "worker.spawn", "worker": 0})
        board.observe({"kind": "worker.ready", "worker": 0})
        board.observe({"kind": "worker.dispatch", "worker": 0, "a": 1, "b": 5})
        snap = board.latest()
        assert snap["workers"]["0"]["state"] == "busy"
        assert snap["workers"]["0"]["pair"] == [1, 5]
        board.observe({"kind": "worker.result", "worker": 0, "a": 1, "b": 5})
        board.observe({"kind": "worker.crash", "worker": 0, "resource": "crash"})
        board.observe({"kind": "worker.retire", "worker": 0})
        snap = board.latest()
        w = snap["workers"]["0"]
        assert w["results"] == 1 and w["crashes"] == 1 and not w["alive"]
        assert w["state"].startswith("crashed")
        assert snap["worker_crashes"] == 1 and snap["worker_spawns"] == 1
        # non-worker records are ignored, not crashed on
        board.observe({"kind": "pair", "a": 1, "b": 5, "status": "feasible"})
        board.observe({"kind": "worker.retry", "a": 1, "b": 5, "attempt": 1})

    def test_staleness_is_monotonic_not_wall_clock(self):
        board = StatusBoard()
        board.begin_scan(total=1)
        snap = board.latest()
        # the snapshot carries both stamps: wall-clock for humans,
        # monotonic for staleness
        assert "updated_at" in snap and "updated_monotonic" in snap
        doc = status_document(snap)
        assert doc["age_seconds"] >= 0.0
        # the monotonic reading is meaningless to another process
        assert "updated_monotonic" not in doc
        # a wall-clock step (NTP, DST) must not change the served age
        stepped = dict(snap)
        stepped["updated_at"] = snap["updated_at"] - 3600.0
        assert status_document(stepped)["age_seconds"] < 60.0
        # age tracks the monotonic distance from publish to serve
        past = dict(snap)
        past["updated_monotonic"] = snap["updated_monotonic"] - 5.0
        assert status_document(past)["age_seconds"] >= 5.0

    def test_status_document_passes_none_through(self):
        assert status_document(None) is None

    def test_budget_caps_eta(self):
        board = StatusBoard()
        board.begin_scan(total=1000, budget=Budget.of(timeout=0.0))
        board.pair_done(_C("feasible"))
        snap = board.latest()
        assert snap["budget"]["remaining_seconds"] == 0.0
        assert snap["eta_seconds"] == 0.0  # the deadline cuts the scan

    def test_merged_planner_and_profile_surface(self):
        board = StatusBoard()
        report = PlannerReport()
        report.record_answer("engine", states=7, elapsed=0.1)
        prof = SearchProfile()
        prof.charge_search()
        prof.charge_state((3, "P", "s"))
        board.begin_scan(total=1)
        board.merge_planner(report.snapshot())
        board.merge_profile(prof.snapshot())
        board.publish()
        snap = board.latest()
        assert snap["planner"]["tiers"]["engine"]["states"] == 7
        assert snap["profile"]["choices"]["3|P|s"]["states"] == 1

    def test_providers_read_live_objects(self):
        report = PlannerReport()
        prof = SearchProfile()
        board = StatusBoard()
        board.begin_scan(
            total=1,
            planner_provider=report.snapshot,
            profile_provider=prof.snapshot,
        )
        report.record_answer("witness", states=0, elapsed=0.0)
        prof.charge_search()
        board.publish()
        snap = board.latest()
        assert snap["planner"]["tiers"]["witness"]["answered"] == 1
        assert snap["profile"]["searches"] == 1


class TestRenderStatusMetrics:
    def test_parses_before_scan(self):
        samples = _parse_prometheus(render_status_metrics(None))
        assert samples["repro_scan_up"] == 1

    def test_full_snapshot_renders_every_block(self):
        board = StatusBoard()
        board.begin_scan(total=6)
        board.pair_done(_C("feasible"))
        board.pair_done(_C("unknown"))
        report = PlannerReport()
        report.queries = 2
        report.record_answer("engine", states=11, elapsed=0.5)
        board.merge_planner(report.snapshot())
        prof = SearchProfile()
        prof.charge_search()
        prof.charge_state((1, "P", "s"))
        board.merge_profile(prof.snapshot())
        board.observe({"kind": "worker.spawn", "worker": 0})
        board.observe({"kind": "worker.crash", "worker": 0, "resource": "crash"})
        samples = _parse_prometheus(render_status_metrics(board.latest()))
        assert samples["repro_scan_pairs_total"] == 6
        assert samples["repro_scan_pairs_done"] == 2
        assert samples['repro_pairs_classified_total{status="feasible"}'] == 1
        assert samples['repro_tier_states_total{tier="engine"}'] == 11
        assert samples["repro_worker_crashes_total"] == 1
        assert samples["repro_profile_states_total"] == 1
        assert samples["repro_scan_eta_seconds"] >= 0


# ----------------------------------------------------------------------
class TestObsServer:
    def test_endpoints_over_real_http(self):
        board = StatusBoard()
        with ObsServer(board, 0) as srv:
            board.begin_scan(total=2, fingerprint="f00d")
            board.pair_done(_C("feasible"))
            status, body = _get(srv.url("/healthz"))
            assert status == 200 and body == "ok\n"
            status, body = _get(srv.url("/status"))
            assert status == 200
            doc = json.loads(body)
            assert doc["fingerprint"] == "f00d"
            assert doc["pairs"]["feasible"] == 1
            assert doc["age_seconds"] >= 0.0
            assert "updated_monotonic" not in doc
            status, body = _get(srv.url("/metrics"))
            assert status == 200
            assert _parse_prometheus(body)["repro_scan_pairs_done"] == 1

    def test_readyz_splits_readiness_from_liveness(self):
        board = StatusBoard()
        with ObsServer(board, 0) as srv:
            # alive but not ready: still starting up
            assert _get(srv.url("/healthz"))[0] == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv.url("/readyz"))
            assert excinfo.value.code == 503
            assert "not ready" in excinfo.value.read().decode()
            board.begin_scan(total=1)
            status, body = _get(srv.url("/readyz"))
            assert status == 200 and body == "ready\n"
            # draining flips readiness back off while liveness holds
            board.set_state("draining")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv.url("/readyz"))
            assert excinfo.value.code == 503
            assert _get(srv.url("/healthz"))[0] == 200
            board.finish("done")
            assert _get(srv.url("/readyz"))[0] == 200

    def test_readyz_honors_a_custom_ready_callable(self):
        ready = [False]
        with ObsServer(StatusBoard(), 0, ready=lambda: ready[0]) as srv:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv.url("/readyz"))
            assert excinfo.value.code == 503
            ready[0] = True
            assert _get(srv.url("/readyz"))[0] == 200

    def test_unknown_path_is_404(self):
        with ObsServer(StatusBoard(), 0) as srv:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv.url("/nope"))
            assert excinfo.value.code == 404

    def test_port_in_use_raises_eagerly(self):
        taken = socket.socket()
        taken.bind(("127.0.0.1", 0))
        taken.listen(1)
        try:
            with pytest.raises(OSError):
                ObsServer(StatusBoard(), taken.getsockname()[1])
        finally:
            taken.close()

    def test_close_is_idempotent_and_releases_the_port(self):
        srv = ObsServer(StatusBoard(), 0).start()
        port = srv.port
        srv.close()
        srv.close()
        rebound = ObsServer(StatusBoard(), port).start()
        rebound.close()


# ----------------------------------------------------------------------
class TestServedLiveScan:
    def test_crashy_pool_scan_polled_over_http(self):
        """The acceptance scenario: poll /status and /metrics over real
        HTTP while a fault-injected pool scan runs.  Every poll must be
        valid, the crash and replacement worker must show, and the
        final counts must equal the report's."""
        exe = masking_execution(4)
        pairs = exe.conflicting_pairs()
        board = StatusBoard()
        polled, stop = [], threading.Event()

        with ObsServer(board, 0) as srv:
            def poll():
                while not stop.is_set():
                    try:
                        _, sbody = _get(srv.url("/status"), timeout=2.0)
                        _, mbody = _get(srv.url("/metrics"), timeout=2.0)
                    except OSError:
                        continue  # scan may outpace a poll; keep going
                    polled.append(json.loads(sbody))
                    _parse_prometheus(mbody)
                    time.sleep(0.01)

            poller = threading.Thread(target=poll, daemon=True)
            poller.start()
            scanner = SupervisedScanner(
                jobs=2,
                retry=RetryPolicy(max_retries=0, backoff_base=0.01),
                # pairs[0] (dispatched first) dies while the second
                # worker is pinned on pairs[1], so pending work remains
                # when the crash is handled and the pool must spawn a
                # replacement worker -- the restart /status must show
                faults={
                    fault_key(pairs[0]): {"action": "segv"},
                    fault_key(pairs[1]): {"action": "hang", "seconds": 1.0},
                },
                board=board,
            )
            board.begin_scan(total=len(pairs))
            report = RaceDetector(exe).feasible_races(
                runner=scanner, on_classified=board.pair_done
            )
            board.finish("done")
            _, body = _get(srv.url("/status"))
            final = json.loads(body)
            stop.set()
            poller.join(timeout=10)

        assert final["state"] == "done"
        assert final["worker_crashes"] >= 1
        assert final["worker_spawns"] >= 3  # 2 initial + the restart
        assert any(w["crashes"] for w in final["workers"].values())
        counts = {"feasible": 0, "infeasible": 0, "unknown": 0}
        for c in report.classifications:
            counts[c.status] += 1
        assert final["pairs"]["done"] == len(report.classifications)
        assert {k: final["pairs"][k] for k in counts} == counts
        # per-worker planner tallies were merged as results arrived
        assert final["planner"]["queries"] > 0
        assert polled, "the scan finished before a single poll landed"
        for snap in polled:
            assert snap["pairs"]["done"] <= snap["pairs"]["total"]

    def test_status_profile_matches_scan_profile(self):
        exe = masking_execution(3)
        board = StatusBoard()
        profile = SearchProfile()
        scanner = SupervisedScanner(jobs=2, board=board)
        board.begin_scan(total=len(exe.conflicting_pairs()))
        RaceDetector(exe).feasible_races(
            runner=scanner, on_classified=board.pair_done, profile=profile
        )
        board.finish("done")
        assert board.latest()["profile"] == profile.snapshot()


# ----------------------------------------------------------------------
needs_posix_kill = pytest.mark.skipif(
    not hasattr(os, "killpg"), reason="needs POSIX process groups"
)


def _spawn_served_scan(exe_path, port, fault_spec=None, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    argv = [
        sys.executable, "-m", "repro", "races", str(exe_path),
        "--jobs", "2", "--serve", str(port), *extra,
    ]
    if fault_spec is not None:
        argv += ["--fault-spec", json.dumps(fault_spec)]
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        start_new_session=True,
    )


def _wait_for_status(port, timeout=60.0):
    deadline = time.monotonic() + timeout
    url = f"http://127.0.0.1:{port}/status"
    while time.monotonic() < deadline:
        try:
            return json.loads(_get(url, timeout=2.0)[1])
        except OSError:
            time.sleep(0.05)
    raise AssertionError("served scan never answered /status")


class TestCliServe:
    def test_port_in_use_exits_2_with_one_loud_line(self, tmp_path):
        exe_path = tmp_path / "exe.json"
        serialize.save(masking_execution(2), str(exe_path))
        taken = socket.socket()
        taken.bind(("127.0.0.1", 0))
        taken.listen(1)
        try:
            port = taken.getsockname()[1]
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "races", str(exe_path),
                 "--feasible", "--serve", str(port)],
                capture_output=True, text=True, env=env, timeout=120,
            )
        finally:
            taken.close()
        assert proc.returncode == 2
        errs = [l for l in proc.stderr.splitlines() if l.strip()]
        assert errs == [
            f"repro: cannot serve on port {port}: {errs[0].split(': ', 2)[2]}"
        ]
        assert "cannot serve on port" in errs[0]
        # it failed before scanning: no feasible report was printed
        assert "feasible races" not in proc.stdout

    @needs_posix_kill
    def test_sigint_during_served_scan_shuts_down_cleanly(self, tmp_path):
        if signal.getsignal(signal.SIGINT) == signal.SIG_IGN:
            pytest.skip("SIGINT is ignored in this environment")
        exe = masking_execution(3)
        pairs = exe.conflicting_pairs()
        exe_path = tmp_path / "exe.json"
        serialize.save(exe, str(exe_path))
        port = _free_port()
        proc = _spawn_served_scan(
            exe_path, port,
            # one pair hangs forever, so the scan is guaranteed to be
            # mid-flight (and the server guaranteed up) when we look
            fault_spec={fault_key(pairs[0]): {"action": "hang",
                                              "seconds": 600}},
        )
        try:
            try:
                doc = _wait_for_status(port)
                assert doc["state"] in ("starting", "scanning")
                assert doc["pairs"]["total"] == len(pairs)
            finally:
                os.killpg(proc.pid, signal.SIGINT)
            _, err = proc.communicate(timeout=60)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        assert proc.returncode == 130
        assert b"interrupted" in err
        # the server died with the scan: the port is closed again
        with pytest.raises(OSError):
            _get(f"http://127.0.0.1:{port}/healthz", timeout=2.0)
