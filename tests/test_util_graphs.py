"""Unit tests for the graph utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.graphs import (
    CycleError,
    Digraph,
    ancestors_of,
    closest_common_ancestors,
    common_ancestors,
    is_acyclic,
    maximal_elements,
    minimal_elements,
    reachable_from,
    topological_sort,
    transitive_closure,
    transitive_reduction,
)


def diamond():
    return Digraph("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestDigraphBasics:
    def test_add_node_idempotent(self):
        g = Digraph()
        g.add_node("x")
        g.add_node("x")
        assert g.nodes == ("x",)

    def test_add_edge_creates_nodes(self):
        g = Digraph()
        assert g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_duplicate_edge_rejected(self):
        g = Digraph()
        assert g.add_edge(1, 2)
        assert not g.add_edge(1, 2)
        assert g.out_degree(1) == 1

    def test_successors_predecessors(self):
        g = diamond()
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("d")) == {"b", "c"}

    def test_len_contains_iter(self):
        g = diamond()
        assert len(g) == 4
        assert "a" in g
        assert sorted(g) == ["a", "b", "c", "d"]

    def test_copy_is_independent(self):
        g = diamond()
        h = g.copy()
        h.add_edge("d", "e")
        assert not g.has_node("e")
        assert g.edges <= h.edges


class TestTopologicalSort:
    def test_respects_edges(self):
        g = diamond()
        order = topological_sort(g)
        pos = {n: i for i, n in enumerate(order)}
        for u, v in g.edges:
            assert pos[u] < pos[v]

    def test_cycle_raises(self):
        g = Digraph(edges=[(1, 2), (2, 3), (3, 1)])
        with pytest.raises(CycleError):
            topological_sort(g)

    def test_is_acyclic(self):
        assert is_acyclic(diamond())
        assert not is_acyclic(Digraph(edges=[(1, 2), (2, 1)]))

    def test_deterministic(self):
        g = diamond()
        assert topological_sort(g) == topological_sort(g)

    def test_empty_graph(self):
        assert topological_sort(Digraph()) == []


class TestReachability:
    def test_reachable_from(self):
        g = diamond()
        assert reachable_from(g, "a") == {"b", "c", "d"}
        assert reachable_from(g, "d") == set()

    def test_ancestors_of(self):
        g = diamond()
        assert ancestors_of(g, "d") == {"a", "b", "c"}
        assert ancestors_of(g, "a") == set()

    def test_closure_matches_reachability(self):
        g = diamond()
        c = transitive_closure(g)
        for u in g.nodes:
            assert set(c.successors(u)) == reachable_from(g, u)

    def test_reduction_preserves_reachability(self):
        g = diamond()
        g.add_edge("a", "d")  # redundant edge
        r = transitive_reduction(g)
        assert not r.has_edge("a", "d")
        for u in g.nodes:
            assert reachable_from(r, u) == reachable_from(g, u)


class TestExtremalElements:
    def test_maximal(self):
        g = diamond()
        assert maximal_elements(g, ["a", "b", "d"]) == ["d"]

    def test_minimal(self):
        g = diamond()
        assert minimal_elements(g, ["a", "b", "d"]) == ["a"]

    def test_incomparable_subset(self):
        g = diamond()
        assert set(maximal_elements(g, ["b", "c"])) == {"b", "c"}
        assert set(minimal_elements(g, ["b", "c"])) == {"b", "c"}


class TestCommonAncestors:
    def test_diamond_joins(self):
        g = diamond()
        assert common_ancestors(g, ["b", "c"]) == {"a"}
        assert closest_common_ancestors(g, ["b", "c"]) == ["a"]

    def test_single_target_is_own_ancestor(self):
        g = diamond()
        assert "b" in common_ancestors(g, ["b"])
        assert closest_common_ancestors(g, ["b"]) == ["b"]

    def test_deep_chain(self):
        g = Digraph(edges=[(0, 1), (1, 2), (1, 3)])
        assert closest_common_ancestors(g, [2, 3]) == [1]

    def test_no_common_ancestor(self):
        g = Digraph([1, 2])
        assert common_ancestors(g, [1, 2]) == set()

    def test_empty_targets(self):
        assert common_ancestors(diamond(), []) == set()


@st.composite
def random_dags(draw):
    n = draw(st.integers(2, 7))
    edges = []
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                edges.append((i, j))
    return Digraph(range(n), edges)


class TestGraphProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_closure_is_transitive(self, g):
        c = transitive_closure(g)
        for u, v in c.edges:
            for w in c.successors(v):
                assert c.has_edge(u, w)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_reduction_minimal(self, g):
        """Removing any reduction edge changes reachability."""
        r = transitive_reduction(g)
        for u, v in r.edges:
            trimmed = Digraph(r.nodes, [e for e in r.edges if e != (u, v)])
            assert v not in reachable_from(trimmed, u)

    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_topo_sort_complete(self, g):
        assert sorted(topological_sort(g)) == sorted(g.nodes)
