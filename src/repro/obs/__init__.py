"""Observability for long scans: tracing, metrics, profiling, serving.

Every query this library answers is worst-case exponential, so real
scans run for minutes to hours under budgets, worker pools and the
tiered solver portfolio.  This package records *where* that time goes:

* :mod:`repro.obs.trace` -- span/event records (query tier
  escalations, engine progress ticks, pair classifications, worker
  lifecycle, checkpoint writes) written to a bounded JSONL sink;
  supervised workers record into an in-memory sink and ship their
  spans home over the existing result channel.  A trace re-aggregates
  (``repro trace summarize``) into exactly the per-tier table the live
  :class:`~repro.solve.planner.PlannerReport` prints, and streams
  (:func:`~repro.obs.trace.iter_trace`) so multi-GB traces analyze in
  constant memory;
* :mod:`repro.obs.profile` -- the search profiler: attributes engine
  states/dead-ends/backtracks to the frontier *choice* taken at each
  branch, answering "which events' orderings cost the search" (``repro
  trace profile``, ``--profile``).  A pure observer: identical
  classifications and identical ``states_visited`` with it on or off;
* :mod:`repro.obs.metrics` -- a counter/gauge/histogram registry
  rendered as a Prometheus-style text snapshot (``--metrics FILE``);
* :mod:`repro.obs.progress` -- the live stderr progress line
  (done/feasible/infeasible/unknown, rate, budget-aware ETA);
* :mod:`repro.obs.server` -- the live ``--serve PORT`` HTTP endpoint
  (``/status``, ``/metrics``, ``/healthz``) publishing immutable scan
  snapshots through a lock-free single-writer slot.

Everything defaults off (:data:`~repro.obs.trace.NULL_SINK`, ``profile
is None``, no board) behind guards call sites check before building a
record, so unobserved runs pay nothing.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    planner_metrics,
    scan_metrics,
)
from repro.obs.profile import SearchProfile, merge_profiles
from repro.obs.progress import ScanProgress
from repro.obs.server import ObsServer, StatusBoard, render_status_metrics
from repro.obs.trace import (
    NULL_SINK,
    SERVE_PHASE_KINDS,
    SUPPORTED_TRACE_VERSIONS,
    FailsafeSink,
    JsonlTraceSink,
    NullSink,
    RecordingSink,
    ServeTraceSummary,
    TraceError,
    TraceSink,
    TraceSummary,
    iter_trace,
    read_trace,
    summarize_serve_trace,
    summarize_trace,
    validate_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "planner_metrics",
    "scan_metrics",
    "SearchProfile",
    "merge_profiles",
    "ScanProgress",
    "ObsServer",
    "StatusBoard",
    "render_status_metrics",
    "NULL_SINK",
    "SERVE_PHASE_KINDS",
    "SUPPORTED_TRACE_VERSIONS",
    "FailsafeSink",
    "JsonlTraceSink",
    "NullSink",
    "RecordingSink",
    "ServeTraceSummary",
    "TraceError",
    "TraceSink",
    "TraceSummary",
    "iter_trace",
    "read_trace",
    "summarize_serve_trace",
    "summarize_trace",
    "validate_record",
]
