"""Unit tests for ProgramExecution invariants and views."""

import pytest

from repro.model.builder import ExecutionBuilder
from repro.model.events import Access, Event, EventKind
from repro.model.execution import ProgramExecution


def two_proc_execution():
    b = ExecutionBuilder()
    p = b.process("p")
    q = b.process("q")
    p.sem_v("s")
    p.write("x")
    q.sem_p("s")
    q.read("x")
    b.dependence(1, 3)
    return b.build()


class TestConstructionValidation:
    def test_eids_must_be_dense(self):
        e = Event(1, "p", 0, EventKind.COMPUTATION)
        with pytest.raises(ValueError):
            ProgramExecution([e], {"p": [1]})

    def test_event_process_mismatch(self):
        e = Event(0, "other", 0, EventKind.COMPUTATION)
        with pytest.raises(ValueError):
            ProgramExecution([e], {"p": [0]})

    def test_index_mismatch(self):
        e = Event(0, "p", 5, EventKind.COMPUTATION)
        with pytest.raises(ValueError):
            ProgramExecution([e], {"p": [0]})

    def test_unassigned_event(self):
        e0 = Event(0, "p", 0, EventKind.COMPUTATION)
        e1 = Event(1, "q", 0, EventKind.COMPUTATION)
        with pytest.raises(ValueError):
            ProgramExecution([e0, e1], {"p": [0]})

    def test_fork_without_children_entry(self):
        e = Event(0, "p", 0, EventKind.FORK)
        with pytest.raises(ValueError):
            ProgramExecution([e], {"p": [0]})

    def test_join_without_targets_entry(self):
        e = Event(0, "p", 0, EventKind.JOIN)
        with pytest.raises(ValueError):
            ProgramExecution([e], {"p": [0]})


class TestAccessors:
    def test_program_order_navigation(self):
        exe = two_proc_execution()
        p_events = exe.process_events("p")
        assert exe.po_predecessor(p_events[0]) is None
        assert exe.po_predecessor(p_events[1]) == p_events[0]
        assert exe.po_successor(p_events[0]) == p_events[1]
        assert exe.po_successor(p_events[1]) is None

    def test_semaphore_listing(self):
        exe = two_proc_execution()
        assert exe.semaphores == ("s",)
        assert len(exe.sem_events("s")) == 2

    def test_classification_views(self):
        exe = two_proc_execution()
        assert set(exe.computation_events()) | set(exe.synchronization_events()) == set(
            exe.eids
        )

    def test_conflicting_pairs(self):
        exe = two_proc_execution()
        pairs = exe.conflicting_pairs()
        assert pairs == [(1, 3)]

    def test_dependence_predecessors(self):
        exe = two_proc_execution()
        assert exe.dependence_predecessors(3) == (1,)
        assert exe.dependence_predecessors(1) == ()

    def test_by_label(self):
        b = ExecutionBuilder()
        eid = b.process("p").skip(label="marker")
        exe = b.build()
        assert exe.by_label("marker").eid == eid
        assert exe.labels == {"marker": eid}


class TestStaticOrderGraph:
    def test_contains_program_order(self):
        exe = two_proc_execution()
        g = exe.static_order_graph()
        p = exe.process_events("p")
        assert g.has_edge(p[0], p[1])

    def test_contains_dependences_when_asked(self):
        exe = two_proc_execution()
        assert exe.static_order_graph(include_dependences=True).has_edge(1, 3)
        assert not exe.static_order_graph(include_dependences=False).has_edge(1, 3)

    def test_fork_join_edges(self):
        b = ExecutionBuilder()
        main = b.process("main")
        f = main.fork()
        c = b.process("c", parent=f)
        ce = c.skip()
        j = main.join(f)
        g = b.build().static_order_graph()
        assert g.has_edge(f.eid, ce)
        assert g.has_edge(ce, j)

    def test_structural_consistency(self):
        exe = two_proc_execution()
        assert exe.is_structurally_consistent()

    def test_cyclic_dependences_detected(self):
        b = ExecutionBuilder()
        x = b.process("p").write("v")
        y = b.process("q").write("v")
        b.dependence(x, y)
        b.dependence(y, x)
        exe = b.build()
        assert not exe.is_structurally_consistent()


class TestDerivedCopies:
    def test_without_dependences(self):
        exe = two_proc_execution()
        bare = exe.without_dependences()
        assert bare.dependences == frozenset()
        assert len(bare) == len(exe)

    def test_with_dependences_replaces(self):
        exe = two_proc_execution()
        copy = exe.with_dependences([(3, 1)])
        assert copy.dependences == {(3, 1)}
        # original untouched
        assert exe.dependences == {(1, 3)}

    def test_repr(self):
        assert "4 events" in repr(two_proc_execution())
