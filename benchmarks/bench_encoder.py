"""Experiment X6 -- the converse reduction: ordering queries as SAT.

The paper proves ordering queries are SAT-hard; this bench runs the
matching *upper bound*: could-have-happened-before compiled to CNF
(order variables, transitivity over triples, Hall-style token matching
for semaphores, triggering-post constraints for event variables) and
decided by the library's own DPLL.

Asserted: full agreement with the state-space engine on every query of
a seeded workload family -- two decision procedures with zero shared
code.  Reported: encoding sizes and the cost gap (the naive DPLL pays
heavily for the O(|E|^3) transitivity clauses; the specialized engine
is orders of magnitude faster -- NP-membership is about *certificates*,
not speed).
"""

import time

from conftest import report, table

from repro.core.queries import OrderingQueries
from repro.encoding.order_sat import OrderSatEncoder
from repro.workloads.generators import random_event_execution, random_semaphore_execution


def run_study():
    workloads = [
        ("sem", random_semaphore_execution(processes=3, events_per_process=3, semaphores=2, seed=s))
        for s in range(3)
    ] + [
        ("evt", random_event_execution(processes=3, events_per_process=3, variables=2, seed=s))
        for s in range(3)
    ]
    rows = []
    for style, exe in workloads:
        q = OrderingQueries(exe)
        enc = OrderSatEncoder(exe)
        cnf = enc.cnf()
        n = len(exe)
        queries = agreements = 0
        t_sat = t_engine = 0.0
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                queries += 1
                t0 = time.perf_counter()
                sat_answer = enc.solve([(a, b)]) is not None
                t_sat += time.perf_counter() - t0
                t0 = time.perf_counter()
                engine_answer = q.chb(a, b)
                t_engine += time.perf_counter() - t0
                agreements += sat_answer == engine_answer
        rows.append(
            dict(style=style, events=n, vars=cnf.num_vars, clauses=len(cnf),
                 queries=queries, agreements=agreements,
                 t_sat=t_sat, t_engine=t_engine)
        )
    return rows


def test_encoder_agrees_with_engine(benchmark):
    rows = benchmark(run_study)
    for r in rows:
        assert r["agreements"] == r["queries"]

    body = [
        [r["style"], r["events"], r["vars"], r["clauses"], r["queries"],
         f"{r['t_sat'] * 1e3:.0f}ms", f"{r['t_engine'] * 1e3:.0f}ms"]
        for r in rows
    ]
    lines = table(
        ["style", "|E|", "CNF vars", "CNF clauses", "CHB queries",
         "SAT total", "engine total"],
        body,
    )
    lines.append("")
    lines.append("100% agreement between the SAT encoding and the search engine")
    lines.append("on every could-have-happened-before query (asserted); the")
    lines.append("encoding is the constructive NP upper bound matching the")
    lines.append("paper's NP-hardness lower bound")
    report("encoder_agreement", lines)
