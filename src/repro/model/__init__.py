"""The paper's formal model of a program execution ``P = <E, T, D>``.

Section 2 of Netzer & Miller (TR 908) models a shared-memory parallel
program execution as a triple of

* ``E`` -- a finite set of *events*, each an execution instance of a set
  of consecutively executed program statements.  *Synchronization
  events* are instances of synchronization operations (fork, join,
  semaphore P/V, event-variable Post/Wait/Clear); *computation events*
  are instances of groups of non-synchronization statements of a single
  process.
* ``T`` -- the *temporal ordering* relation: ``a ->T b`` means the last
  action of ``a`` can affect the first action of ``b`` (``a`` completes
  before ``b`` begins); incomparable events executed concurrently.
* ``D`` -- the *shared-data dependence* relation: ``a ->D b`` means
  ``a`` accesses a shared variable that ``b`` later accesses, with at
  least one of the two accesses a write.

This package provides those objects (:mod:`repro.model.events`,
:mod:`repro.model.execution`), a fluent construction API
(:mod:`repro.model.builder`), and executable versions of the model
axioms (:mod:`repro.model.axioms`).
"""

from repro.model.events import Event, EventKind, Access
from repro.model.execution import ProgramExecution, SyncStyle
from repro.model.builder import ExecutionBuilder, ProcessBuilder
from repro.model.axioms import (
    AxiomViolation,
    check_structure,
    check_temporal_order,
    check_dependences,
    validate_execution,
)

__all__ = [
    "Event",
    "EventKind",
    "Access",
    "ProgramExecution",
    "SyncStyle",
    "ExecutionBuilder",
    "ProcessBuilder",
    "AxiomViolation",
    "check_structure",
    "check_temporal_order",
    "check_dependences",
    "validate_execution",
]
