"""The planner's query language: one value type per primitive question.

Every relation of Table 1 reduces (by the dualities proved in
``core/queries.py`` and the serialization lemma) to four *primitive*
existential questions about one execution, optionally with some
shared-data dependences dropped (the race detector's "could these two
events have overlapped while the rest of the data flow stayed intact"
variant):

``feasible``
    Is ``F`` non-empty?
``chb``
    Does some member of ``F`` complete ``a`` before ``b`` begins?
``ccb``
    Does some member of ``F`` complete ``a`` before ``b`` completes?
``ccw``
    Do ``a`` and ``b`` overlap in some member of ``F``?

A :class:`RelationQuery` names one such question; a backend answers it
with a :class:`BackendAnswer` -- a three-valued
:class:`~repro.budget.Verdict` (whose provenance is the backend's tag,
and which carries the witness schedule for existential ``TRUE``
answers) plus what the attempt cost.  ``UNKNOWN`` means "this backend
cannot decide", and the :class:`~repro.solve.planner.QueryPlanner`
escalates to the next tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.budget import Budget, Verdict

# primitive relation names
FEASIBLE = "feasible"
CHB = "chb"
CCB = "ccb"
CCW = "ccw"

PRIMITIVES = (FEASIBLE, CHB, CCB, CCW)


@dataclass(frozen=True)
class RelationQuery:
    """One primitive question about one execution.

    ``drop`` lists dependence edges of the base execution's ``D`` that
    this query ignores (always a subset of ``exe.dependences``); the
    empty set asks about the execution as-is.  Because dropping
    constraints only enlarges ``F``, a schedule legal for the base
    execution stays legal for every ``drop`` -- the monotonicity every
    witness-reuse argument in this package rests on.

    ``a``/``b`` are meaningful only for the pairwise relations; the
    planner's public facades never build degenerate (``a == b``)
    queries -- those are answered algebraically.
    """

    relation: str
    a: int = -1
    b: int = -1
    drop: FrozenSet[Tuple[int, int]] = frozenset()

    def __post_init__(self) -> None:
        if self.relation not in PRIMITIVES:
            raise ValueError(
                f"unknown primitive relation {self.relation!r} "
                f"(expected one of {PRIMITIVES})"
            )


@dataclass(frozen=True)
class BackendAnswer:
    """One backend's response to one query.

    ``verdict.truth is UNKNOWN`` means the backend declines (out of
    scope or out of budget); the planner then consults the next tier.
    ``states``/``elapsed`` record what the attempt cost regardless of
    outcome, so the per-tier report stays honest about where time went.
    """

    verdict: Verdict
    backend: str
    states: int = 0
    elapsed: float = 0.0

    @property
    def decided(self) -> bool:
        return self.verdict.truth.is_known


class Backend:
    """Protocol for one rung of the escalation ladder.

    Implementations answer soundly or decline: a definite verdict must
    agree with brute-force enumeration over ``F`` (property-tested in
    ``tests/test_solve_planner.py``).  Backends share all per-execution
    precomputation through the :class:`~repro.solve.context.SolveContext`
    they are handed and may read/extend its witness cache.
    """

    #: registry key, CLI spelling, and the provenance tag of answers
    name: str = "abstract"

    #: memory models whose executions this backend reasons soundly
    #: about.  Backends whose deductions bake in sequentially
    #: consistent program order (vector clocks, the HMW counting
    #: phases, the task graph, the order-SAT encoding) declare
    #: ``{"sc"}`` and the planner skips them -- rather than letting
    #: them answer wrong -- when the execution uses another model.
    supported_models: FrozenSet[str] = frozenset({"sc", "tso"})

    def answer(
        self,
        query: RelationQuery,
        ctx,  # SolveContext; untyped to avoid an import cycle
        *,
        budget: Optional[Budget] = None,
        max_states: Optional[int] = None,
    ) -> Optional[BackendAnswer]:
        raise NotImplementedError


__all__ = [
    "FEASIBLE",
    "CHB",
    "CCB",
    "CCW",
    "PRIMITIVES",
    "RelationQuery",
    "BackendAnswer",
    "Backend",
]
