"""Atomic file writes shared by every snapshot-shaped output.

Metrics snapshots, saved reports and the daemon's witness store are
scraped and tailed while the process that writes them is still
running, so a plain ``open(path, "w")`` exposes readers to torn files.
:func:`atomic_write_text` writes to a temporary sibling, fsyncs, and
:func:`os.replace`\\ s into place -- readers see either the old
complete snapshot or the new one, never a prefix.  Dependency-free on
purpose: :mod:`repro.obs.metrics`, :mod:`repro.model.serialize` and
:mod:`repro.serve.store` all use it, and those sit on opposite sides
of the package's import layering.

Failure behavior is part of the contract: a write that dies midway
(disk full, quota, kill) removes its temporary file before the error
propagates -- **including when the final** :func:`os.replace` **itself
fails** (read-only remount, the target directory vanishing) -- so a
crashed flush never litters the directory with half-written ``.tmp``
debris that a later scan of the directory could mistake for data.
``durable=True`` additionally fsyncs the parent directory after the
rename, making the *replacement itself* survive a power cut -- the
witness store uses it so a record acknowledged to a client is really
on disk.

Failpoints (see :mod:`repro.faults`): ``fileio.open``,
``fileio.write``, ``fileio.fsync`` and ``fileio.replace`` fire before
the corresponding syscall, so a chaos schedule can produce an ENOSPC
on exactly the write/fsync/rename it names and the tests can assert
the cleanup contract above instead of trusting it.
"""

from __future__ import annotations

import os

from repro import faults


def fsync_dir(path: str) -> None:
    """fsync the directory at ``path`` (so a rename inside it is
    durable).  Best-effort: some filesystems refuse ``O_RDONLY`` opens
    of directories; those callers still get the rename's atomicity,
    just not its durability across power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystem
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: str, text: str, *, fsync: bool = True, durable: bool = False
) -> None:
    """Replace ``path``'s content with ``text`` atomically.

    The temporary sibling ``path + ".tmp"`` lives in the same directory
    so the final :func:`os.replace` stays on one filesystem (rename is
    only atomic within a filesystem).  ``fsync=False`` skips the
    durability barrier for callers that only need tear-freedom;
    ``durable=True`` also fsyncs the containing directory after the
    rename.  On *any* failure the temporary file is removed and the
    original ``path`` is left exactly as it was.
    """
    tmp = path + ".tmp"
    try:
        faults.fire("fileio.open")
        fh = open(tmp, "w")
        try:
            faults.fire("fileio.write")
            fh.write(text)
            fh.flush()
            if fsync:
                faults.fire("fileio.fsync")
                os.fsync(fh.fileno())
        finally:
            fh.close()
        faults.fire("fileio.replace")
        os.replace(tmp, path)
    except BaseException:
        # the rename never happened (or never completed): whatever made
        # it to ``tmp`` is not data, remove it before propagating
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(os.path.dirname(os.path.abspath(path)))


__all__ = ["atomic_write_text", "fsync_dir"]
