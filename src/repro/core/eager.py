"""Ordering relations under the *eager-begin* timing model.

The default engine treats event begins as schedulable points: a process
may be delayed arbitrarily between operations ("nondeterministic timing
variations"), so an event's begin can always be postponed.  Under that
adversarial model a clean corollary of the serialization lemma holds:

    Every feasible execution collapses to a feasible *serial* execution
    (order events by completion), in which no two events overlap.
    Hence no distinct pair is concurrent in **all** feasible
    executions: ``MCW`` is empty and ``COW`` is total whenever ``F`` is
    non-empty.

The paper's concurrent-with/ordered-with relations are only
interesting under a *stronger* machine model in which an operation
begins the moment its prerequisites allow -- processes do not pause
spontaneously.  This module implements that model:

* a feasible execution is a legal serial order of event *completions*;
* ``begin(e)`` is the instant the last of ``e``'s begin prerequisites
  (program-order predecessor, creating fork, dependence predecessors)
  completes -- time zero when it has none;
* ``a ->T b``  iff  ``end(a) <= max(end(p) for p in pre(b))``, i.e.
  ``a`` completes no later than the prerequisite that releases ``b``
  (in particular whenever ``a`` itself is a prerequisite of ``b``).

Exactly one of ``a ->T b``, ``b ->T a``, ``a || b`` holds per
schedule, so the Table 1 dualities carry over unchanged.  Under this
model ``MCW`` is non-degenerate (two first events of root processes
both begin at time zero and are concurrent in every execution), and
``benchmarks/bench_table1_relations.py`` reports the six relations
under both models side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.budget import Budget, Verdict
from repro.core.engine import (
    FeasibilityEngine,
    SearchBudgetExceeded,
    SearchStats,
    end_point,
)
from repro.core.relations import RelationName
from repro.core.enumerate import enumerate_serial_schedules
from repro.model.execution import ProgramExecution
from repro.util.relations import BinaryRelation


def _begin_prereqs(engine: FeasibilityEngine) -> List[Tuple[int, ...]]:
    out = []
    for eid in range(len(engine.exe)):
        mask = engine._begin_pre[eid]
        pres = []
        while mask:
            low = mask & -mask
            pres.append(low.bit_length() - 1)
            mask ^= low
        out.append(tuple(pres))
    return out


class EagerOrderingQueries:
    """Exact Table 1 relations under the eager-begin model."""

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.exe = exe
        self.engine = FeasibilityEngine(
            exe,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
        )
        self.max_states = max_states
        self.budget = budget
        self.stats = SearchStats()
        self._pre = _begin_prereqs(self.engine)
        self._ccb_cache: Dict[Tuple[int, int], bool] = {}
        self._ccw_cache: Dict[Tuple[int, int], bool] = {}
        self._feasible: Optional[bool] = None

    # ------------------------------------------------------------------
    def has_feasible_execution(self) -> bool:
        if self._feasible is None:
            pts = self.engine.search(
                max_states=self.max_states, budget=self.budget, stats=self.stats
            )
            self._feasible = pts is not None
        return self._feasible

    def _ccb(self, a: int, b: int) -> bool:
        """Some legal completion order finishes ``a`` strictly before ``b``."""
        key = (a, b)
        if key not in self._ccb_cache:
            pts = self.engine.search(
                constraints=[(end_point(a), end_point(b))],
                max_states=self.max_states,
                budget=self.budget,
                stats=self.stats,
            )
            self._ccb_cache[key] = pts is not None
        return self._ccb_cache[key]

    # ------------------------------------------------------------------
    def chb(self, a: int, b: int) -> bool:
        """``a`` completes by the time ``b``'s last prerequisite does,
        in some feasible execution."""
        if a == b or not self.has_feasible_execution():
            return False
        pre = self._pre[b]
        if a in pre:
            return True
        return any(self._ccb(a, p) for p in pre)

    def ccw(self, a: int, b: int) -> bool:
        """Some feasible execution overlaps ``a`` and ``b``: every
        prerequisite of each completes before the other completes."""
        if a > b:
            a, b = b, a
        key = (a, b)
        if key in self._ccw_cache:
            return self._ccw_cache[key]
        result = False
        if self.has_feasible_execution():
            if a == b:
                result = True
            elif a in self._pre[b] or b in self._pre[a]:
                result = False
            else:
                constraints = [(end_point(p), end_point(a)) for p in self._pre[b]]
                constraints += [(end_point(q), end_point(b)) for q in self._pre[a]]
                pts = self.engine.search(
                    constraints=constraints,
                    max_states=self.max_states,
                    budget=self.budget,
                    stats=self.stats,
                )
                result = pts is not None
        self._ccw_cache[key] = result
        return result

    def cow(self, a: int, b: int) -> bool:
        if a == b:
            return False
        return self.chb(a, b) or self.chb(b, a)

    def mhb(self, a: int, b: int) -> bool:
        if a == b:
            return not self.has_feasible_execution()
        return not self.chb(b, a) and not self.ccw(a, b)

    def mcw(self, a: int, b: int) -> bool:
        if a == b:
            return True
        return not self.cow(a, b)

    def mow(self, a: int, b: int) -> bool:
        return not self.ccw(a, b)

    def relation_values(self, a: int, b: int) -> Dict[str, bool]:
        return {
            "MHB": self.mhb(a, b),
            "CHB": self.chb(a, b),
            "MCW": self.mcw(a, b),
            "CCW": self.ccw(a, b),
            "MOW": self.mow(a, b),
            "COW": self.cow(a, b),
        }

    # ------------------------------------------------------------------
    # three-valued (budget-tolerant) verdicts
    # ------------------------------------------------------------------
    def _verdict(self, fn, a: int, b: int) -> Verdict:
        try:
            return Verdict.of_bool(fn(a, b), "eager-exact", stats=self.stats)
        except SearchBudgetExceeded as exc:
            return Verdict.unknown(resource=exc.resource, stats=self.stats)

    def chb_verdict(self, a: int, b: int) -> Verdict:
        if a != b and a in self._pre[b] and self._feasible:
            return Verdict.true("structural", stats=self.stats)
        return self._verdict(self.chb, a, b)

    def ccw_verdict(self, a: int, b: int) -> Verdict:
        if a != b and (a in self._pre[b] or b in self._pre[a]):
            return Verdict.false("structural", stats=self.stats)
        return self._verdict(self.ccw, a, b)

    def mhb_verdict(self, a: int, b: int) -> Verdict:
        if a != b:
            # Kleene: either existential holding refutes MHB even when
            # the other conjunct's search blew its budget
            rev = self.chb_verdict(b, a)
            if rev.is_true:
                return Verdict.false(rev.provenance, stats=self.stats)
            overlap = self.ccw_verdict(a, b)
            if overlap.is_true:
                return Verdict.false(overlap.provenance, stats=self.stats)
            if rev.is_false and overlap.is_false:
                return Verdict.true("eager-exact", stats=self.stats)
            return Verdict.unknown(
                resource=rev.resource or overlap.resource, stats=self.stats
            )
        return self._verdict(self.mhb, a, b)

    def relation_verdicts(self, a: int, b: int) -> Dict[str, Verdict]:
        return {
            "MHB": self.mhb_verdict(a, b),
            "CHB": self.chb_verdict(a, b),
            "MCW": self._verdict(self.mcw, a, b),
            "CCW": self.ccw_verdict(a, b),
            "MOW": self.ccw_verdict(a, b).negate(),
            "COW": self._verdict(self.cow, a, b),
        }


def eager_relations_by_enumeration(
    exe: ProgramExecution,
    *,
    include_dependences: bool = True,
    limit: Optional[int] = None,
) -> Dict[RelationName, BinaryRelation]:
    """Definition-level ground truth for the eager model.

    Enumerates all legal serial completion orders, derives each one's
    eager ``T`` and evaluates the Table 1 quantifiers.
    """
    n = len(exe)
    engine = FeasibilityEngine(exe, include_dependences=include_dependences)
    pre = _begin_prereqs(engine)
    pairs = [(a, b) for a in range(n) for b in range(n) if a != b]
    ex_hb, ex_cw = set(), set()
    all_hb, all_cw = set(pairs), set(pairs)
    any_schedule = False
    for sched in enumerate_serial_schedules(
        exe, include_dependences=include_dependences, limit=limit
    ):
        any_schedule = True
        pos = {eid: i for i, eid in enumerate(sched)}
        for a, b in pairs:
            release_b = max((pos[p] for p in pre[b]), default=-1)
            hb = pos[a] <= release_b
            release_a = max((pos[q] for q in pre[a]), default=-1)
            hb_rev = pos[b] <= release_a
            cw = not hb and not hb_rev
            (ex_hb.add((a, b)) if hb else all_hb.discard((a, b)))
            (ex_cw.add((a, b)) if cw else all_cw.discard((a, b)))
    if not any_schedule:
        all_hb, all_cw = set(pairs), set(pairs)
    ex_ow = {(a, b) for (a, b) in pairs if (a, b) in ex_hb or (b, a) in ex_hb}
    all_ow = {(a, b) for (a, b) in pairs if (a, b) not in ex_cw}
    universe = range(n)
    return {
        RelationName.MHB: BinaryRelation(universe, all_hb),
        RelationName.CHB: BinaryRelation(universe, ex_hb),
        RelationName.MCW: BinaryRelation(universe, all_cw),
        RelationName.CCW: BinaryRelation(universe, ex_cw),
        RelationName.MOW: BinaryRelation(universe, all_ow),
        RelationName.COW: BinaryRelation(universe, ex_ow),
    }
