"""The single-counting-semaphore remark: SS7 <-> one-semaphore executions."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.queries import OrderingQueries
from repro.reductions.seqmaxcost import SeqMaxCostInstance, random_instance, solve_seqmaxcost
from repro.reductions.single_semaphore import single_semaphore_reduction


class TestConstruction:
    def test_uses_single_semaphore(self):
        inst = SeqMaxCostInstance([1, -1, 2], [(0, 1)], 2)
        exe, a, b = single_semaphore_reduction(inst)
        assert len(exe.semaphores) == 1

    def test_costs_become_op_counts(self):
        inst = SeqMaxCostInstance([2, -3, 0], [], 5)
        exe, a, b = single_semaphore_reduction(inst)
        from repro.model.events import EventKind

        kinds = [e.kind for e in exe.events]
        assert kinds.count(EventKind.SEM_P) == 2
        assert kinds.count(EventKind.SEM_V) == 3

    def test_threshold_becomes_initial_count(self):
        inst = SeqMaxCostInstance([1], [], 7)
        exe, a, b = single_semaphore_reduction(inst)
        assert exe.sem_initial("s") == 7

    def test_precedence_becomes_fork_chain(self):
        inst = SeqMaxCostInstance([1, -1], [(0, 1)], 2)
        exe, a, b = single_semaphore_reduction(inst)
        assert exe.parent_fork  # job1's process forked by job0's

    def test_non_forest_rejected(self):
        inst = SeqMaxCostInstance([1, 1, 1], [(0, 2), (1, 2)], 3)
        with pytest.raises(ValueError, match="forest"):
            single_semaphore_reduction(inst)


class TestEquivalence:
    def check(self, inst):
        expect = solve_seqmaxcost(inst) is not None
        exe, a, b = single_semaphore_reduction(inst)
        q = OrderingQueries(exe)
        assert q.has_feasible_execution() == expect
        # instance feasible  <=>  a CHB b on the constructed execution
        assert q.chb(a, b) == expect

    def test_feasible_instance(self):
        self.check(SeqMaxCostInstance([1, -1, 1], [(0, 1)], 1))

    def test_infeasible_instance(self):
        self.check(SeqMaxCostInstance([2, -2], [(0, 1)], 1))

    def test_alternation_required(self):
        self.check(SeqMaxCostInstance([1, -1, 1, -1], [(0, 1), (2, 3)], 1))

    @given(st.integers(0, 3_000), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_random_instances(self, seed, n):
        inst = random_instance(n, seed=seed, max_cost=2, threshold=2)
        self.check(inst)

    @given(st.integers(0, 1_500))
    @settings(max_examples=25, deadline=None)
    def test_tight_threshold_instances(self, seed):
        inst = random_instance(4, seed=seed, max_cost=3, threshold=1)
        self.check(inst)
