"""The shared-memory simulator (sequentially consistent by default).

One scheduler-chosen process executes one atomic operation per step;
the interleaving of atomic steps over a single shared store *is*
Lamport's sequential consistency, so every trace is a legal execution
of the paper's machine model.  Blocking operations (``P`` on an empty
semaphore, ``Wait`` on a cleared variable, ``join`` on unfinished
children) simply leave the process out of the runnable set until the
state allows completion; when nothing is runnable and work remains, the
run has deadlocked and :class:`DeadlockError` carries the partial trace
for inspection.

Under ``memory_model="tso"`` each process gets a FIFO *store buffer*:
a shared assignment enqueues its write instead of publishing it, later
reads of the same process forward from the newest buffered value
(store-to-load forwarding), and the buffer drains to shared memory at
scheduler-chosen points -- each non-empty buffer contributes a
``name!drain`` pseudo-process to the runnable set, so the scheduler
(and hence the seed) decides when writes become visible, exactly like
any other nondeterminism in the run.  Synchronization operations and
``fence`` block until the issuing process's buffer is empty, which is
TSO's barrier semantics.  Drains are internal machine activity: they
consume no trace step, and the trace records writes at *issue* time --
the shared-data dependences ``D`` derived from a TSO trace therefore
follow issue order, a deliberate modeling choice documented in
:meth:`repro.lang.trace.Trace.to_execution`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lang import ast as A
from repro.lang.scheduler import RandomScheduler, Scheduler
from repro.lang.trace import Step, Trace
from repro.memmodel import resolve_memory_model
from repro.model.events import Access, EventKind
from repro.sync.eventvar import EventVariable
from repro.sync.semaphore import Semaphore

#: Suffix of the pseudo-process a non-empty TSO store buffer adds to
#: the runnable set ("A!drain" publishes the oldest buffered write of
#: process A).  "!" cannot appear in a process name, so the tokens
#: never collide.
DRAIN_SUFFIX = "!drain"


class DeadlockError(RuntimeError):
    """No process can run but some have not finished."""

    def __init__(self, message: str, trace: Trace, blocked: Sequence[str]):
        super().__init__(message)
        self.trace = trace
        self.blocked = tuple(blocked)


class StepLimitExceeded(RuntimeError):
    """The run exceeded ``max_steps`` (runaway loop guard)."""

    def __init__(self, message: str, trace: Trace):
        super().__init__(message)
        self.trace = trace


class _Frame:
    __slots__ = ("stmts", "pc", "loop")

    def __init__(self, stmts: Tuple[A.Stmt, ...], loop: Optional[A.While] = None):
        self.stmts = stmts
        self.pc = 0
        self.loop = loop


class _Proc:
    __slots__ = ("name", "frames", "locals", "fork_stack", "done", "buffer")

    def __init__(self, name: str, body: Tuple[A.Stmt, ...]):
        self.name = name
        self.frames: List[_Frame] = [_Frame(body)]
        self.locals: Dict[str, int] = {}
        self.fork_stack: List[List[str]] = []
        self.done = False
        # TSO store buffer: FIFO of (variable, value) pending writes.
        # Always empty under SC.
        self.buffer: List[Tuple[str, int]] = []

    def current(self) -> Optional[A.Stmt]:
        """Normalize control frames and return the next statement.

        Popping exhausted frames is internal control flow and consumes
        no machine step; an exhausted loop-body frame re-exposes its
        ``while`` statement so the condition is re-evaluated (which
        *is* a step, since it reads shared state).
        """
        while self.frames:
            frame = self.frames[-1]
            if frame.pc < len(frame.stmts):
                return frame.stmts[frame.pc]
            self.frames.pop()
        self.done = True
        return None


class Interpreter:
    """Runs a :class:`~repro.lang.ast.Program` to completion."""

    def __init__(
        self,
        program: A.Program,
        scheduler: Optional[Scheduler] = None,
        *,
        max_steps: int = 100_000,
        memory_model: str = "sc",
    ) -> None:
        self.program = program
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(0)
        self.max_steps = max_steps
        self.memory_model = resolve_memory_model(memory_model).name
        self._tso = self.memory_model == "tso"

        self.shared: Dict[str, int] = dict(program.shared_initial)
        self.semaphores: Dict[str, Semaphore] = {
            name: Semaphore(name, init) for name, init in program.sem_initial.items()
        }
        self.variables: Dict[str, EventVariable] = {}
        for v in program.var_initial:
            self.variables[v] = EventVariable(v, posted=True)

        self._procs: Dict[str, _Proc] = {}
        self._name_counts: Dict[str, int] = {}
        self._parent_of: Dict[str, Tuple[str, int]] = {}
        self._steps: List[Step] = []
        for pd in program.processes:
            self._spawn(pd)

    # ------------------------------------------------------------------
    def _spawn(self, pd: A.ProcessDef) -> str:
        base = pd.name
        count = self._name_counts.get(base, 0)
        self._name_counts[base] = count + 1
        name = base if count == 0 else f"{base}#{count + 1}"
        self._procs[name] = _Proc(name, pd.body)
        return name

    def _sem(self, name: str) -> Semaphore:
        if name not in self.semaphores:
            self.semaphores[name] = Semaphore(name, 0)
        return self.semaphores[name]

    def _var(self, name: str) -> EventVariable:
        if name not in self.variables:
            self.variables[name] = EventVariable(name, posted=False)
        return self.variables[name]

    # ------------------------------------------------------------------
    _BARRIERS = (A.Fence, A.SemP, A.SemV, A.Post, A.Wait, A.Clear, A.Fork, A.Join)

    def _runnable(self) -> List[str]:
        # Normalize every process first: ``done`` flags are set lazily
        # by ``current()``, and blocking checks below (join) read other
        # processes' flags, so they must all be fresh.
        for proc in self._procs.values():
            proc.current()
        out = []
        for name, proc in self._procs.items():
            if proc.buffer:
                # a pending buffered write can always be published
                out.append(name + DRAIN_SUFFIX)
            if proc.done:
                continue
            stmt = proc.current()
            if stmt is None:
                continue
            if proc.buffer and isinstance(stmt, self._BARRIERS):
                # TSO barrier semantics: sync operations and fences
                # wait for the process's own buffer to drain first
                continue
            if isinstance(stmt, A.SemP) and not self._sem(stmt.sem).can_p():
                continue
            if isinstance(stmt, A.Wait) and not self._var(stmt.var).can_wait():
                continue
            if isinstance(stmt, A.Join):
                if not proc.fork_stack:
                    raise RuntimeError(f"{name}: join without a matching fork")
                if not all(self._procs[c].done for c in proc.fork_stack[-1]):
                    continue
            out.append(name)
        return out

    def _all_done(self) -> bool:
        # evaluate eagerly over all processes so every ``done`` flag is
        # refreshed (``all`` would short-circuit on the first False);
        # a process with buffered writes still has work (their drains)
        states = [p.current() is None and not p.buffer for p in self._procs.values()]
        return all(states)

    # ------------------------------------------------------------------
    def _record(self, proc: _Proc, kind: EventKind, *, obj: Optional[str] = None,
                accesses: Sequence[Access] = (), text: str = "",
                label: Optional[str] = None, created: Sequence[str] = (),
                joined: Sequence[str] = ()) -> None:
        self._steps.append(
            Step(
                number=len(self._steps),
                process=proc.name,
                kind=kind,
                obj=obj,
                accesses=tuple(accesses),
                text=text,
                label=label,
                created=tuple(created),
                joined=tuple(joined),
            )
        )

    def _eval(self, expr: A.Expr, proc: _Proc) -> Tuple[int, List[Access]]:
        reads: Set[str] = set()
        shared = self.shared
        if proc.buffer:
            # store-to-load forwarding: the process sees its own
            # buffered writes (newest last, so later entries win)
            shared = dict(self.shared)
            for var, val in proc.buffer:
                shared[var] = val
        value = expr.evaluate(shared, proc.locals, reads)
        return value, [Access(v, False) for v in sorted(reads)]

    def _step_process(self, name: str) -> None:
        proc = self._procs[name]
        stmt = proc.current()
        assert stmt is not None
        frame = proc.frames[-1]

        if isinstance(stmt, A.Skip):
            self._record(proc, EventKind.COMPUTATION, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.Assign):
            value, accesses = self._eval(stmt.expr, proc)
            if self._tso:
                # the write is issued now (and recorded now) but only
                # becomes visible when a later drain publishes it
                proc.buffer.append((stmt.target, value))
            else:
                self.shared[stmt.target] = value
            accesses.append(Access(stmt.target, True))
            self._record(proc, EventKind.COMPUTATION, accesses=accesses,
                         text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.LocalAssign):
            value, accesses = self._eval(stmt.expr, proc)
            proc.locals[stmt.target] = value
            self._record(proc, EventKind.COMPUTATION, accesses=accesses,
                         text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.If):
            value, accesses = self._eval(stmt.cond, proc)
            self._record(proc, EventKind.COMPUTATION, accesses=accesses,
                         text=f"if {stmt.cond!r}", label=stmt.label)
            frame.pc += 1
            branch = stmt.then if value else stmt.orelse
            if branch:
                proc.frames.append(_Frame(branch))
        elif isinstance(stmt, A.While):
            value, accesses = self._eval(stmt.cond, proc)
            self._record(proc, EventKind.COMPUTATION, accesses=accesses,
                         text=f"while {stmt.cond!r}", label=stmt.label)
            if value:
                # leave pc on the While; re-test after the body pops
                proc.frames.append(_Frame(stmt.body, loop=stmt))
            else:
                frame.pc += 1
        elif isinstance(stmt, A.Fence):
            # only runnable with an empty store buffer, so by the time
            # it executes every earlier write is visible
            self._record(proc, EventKind.FENCE, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.SemP):
            self._sem(stmt.sem).p()
            self._record(proc, EventKind.SEM_P, obj=stmt.sem, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.SemV):
            self._sem(stmt.sem).v()
            self._record(proc, EventKind.SEM_V, obj=stmt.sem, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.Post):
            self._var(stmt.var).post()
            self._record(proc, EventKind.POST, obj=stmt.var, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.Wait):
            self._var(stmt.var).wait()
            self._record(proc, EventKind.WAIT, obj=stmt.var, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.Clear):
            self._var(stmt.var).clear()
            self._record(proc, EventKind.CLEAR, obj=stmt.var, text=repr(stmt), label=stmt.label)
            frame.pc += 1
        elif isinstance(stmt, A.Fork):
            created = [self._spawn(pd) for pd in stmt.children]
            step_no = len(self._steps)
            for c in created:
                self._parent_of[c] = (proc.name, step_no)
            proc.fork_stack.append(list(created))
            self._record(proc, EventKind.FORK, text=repr(stmt), label=stmt.label,
                         created=created)
            frame.pc += 1
        elif isinstance(stmt, A.Join):
            joined = proc.fork_stack.pop()
            self._record(proc, EventKind.JOIN, text=repr(stmt), label=stmt.label,
                         joined=joined)
            frame.pc += 1
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled statement {stmt!r}")

    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Execute to completion and return the trace."""
        self.scheduler.reset()
        while True:
            if self._all_done():
                break
            if len(self._steps) >= self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} steps", self._make_trace()
                )
            runnable = self._runnable()
            if not runnable:
                blocked = [n for n, p in self._procs.items() if not p.done]
                raise DeadlockError(
                    f"deadlock: blocked processes {sorted(blocked)}",
                    self._make_trace(),
                    blocked,
                )
            choice = self.scheduler.choose(runnable, len(self._steps))
            if choice not in runnable:
                raise RuntimeError(f"scheduler chose non-runnable process {choice!r}")
            if choice.endswith(DRAIN_SUFFIX):
                # publish the oldest buffered write; internal machine
                # activity, so no trace step is recorded
                proc = self._procs[choice[: -len(DRAIN_SUFFIX)]]
                var, value = proc.buffer.pop(0)
                self.shared[var] = value
            else:
                self._step_process(choice)
        return self._make_trace()

    def _make_trace(self) -> Trace:
        return Trace(
            steps=list(self._steps),
            sem_initial=dict(self.program.sem_initial),
            var_initial=tuple(sorted(self.program.var_initial)),
            parent_of=dict(self._parent_of),
            final_shared=dict(self.shared),
            memory_model=self.memory_model,
        )


def run_program(
    program: A.Program,
    scheduler: Optional[Union[Scheduler, int]] = None,
    *,
    max_steps: int = 100_000,
    memory_model: str = "sc",
) -> Trace:
    """Convenience runner.

    ``scheduler`` may be a :class:`Scheduler` or an integer seed for a
    :class:`RandomScheduler` (``None`` means seed 0).
    """
    if scheduler is None:
        scheduler = RandomScheduler(0)
    elif isinstance(scheduler, int):
        scheduler = RandomScheduler(scheduler)
    return Interpreter(
        program, scheduler, max_steps=max_steps, memory_model=memory_model
    ).run()
