"""Event objects of the execution model.

An :class:`Event` is an execution *instance*: the same program statement
executed twice yields two distinct events.  Events are identified by a
small integer ``eid`` assigned by the :class:`~repro.model.builder.
ExecutionBuilder` (or by the tracer when converting an interpreter
trace); all engine-level data structures index events by ``eid`` so
that states can be packed into integer bitmasks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


class EventKind(enum.Enum):
    """The kinds of events the paper's program class can perform.

    The paper considers programs on sequentially consistent processors
    using fork/join plus either counting semaphores (``P``/``V``) or
    event-style synchronization (``Post``/``Wait``/``Clear``).
    ``COMPUTATION`` covers instances of groups of ordinary statements.
    """

    COMPUTATION = "comp"
    SEM_P = "P"
    SEM_V = "V"
    POST = "post"
    WAIT = "wait"
    CLEAR = "clear"
    FORK = "fork"
    JOIN = "join"
    #: a memory fence: orders every earlier access of its process
    #: before every later one.  A no-op under sequential consistency;
    #: under relaxed models (see :mod:`repro.memmodel`) it is the
    #: program's handle on the store buffer.
    FENCE = "fence"

    @property
    def is_synchronization(self) -> bool:
        return self is not EventKind.COMPUTATION

    @property
    def is_semaphore_op(self) -> bool:
        return self in (EventKind.SEM_P, EventKind.SEM_V)

    @property
    def is_event_var_op(self) -> bool:
        return self in (EventKind.POST, EventKind.WAIT, EventKind.CLEAR)

    @property
    def is_task_op(self) -> bool:
        return self in (EventKind.FORK, EventKind.JOIN)

    @property
    def may_block(self) -> bool:
        """Whether the operation's *completion* can be delayed by state.

        ``P`` blocks until the semaphore is positive, ``Wait`` until the
        event variable is posted, ``Join`` until the joined processes
        have completed.  All other operations complete unconditionally.
        """
        return self in (EventKind.SEM_P, EventKind.WAIT, EventKind.JOIN)


@dataclass(frozen=True)
class Access:
    """A single shared-variable access performed by a computation event."""

    variable: str
    is_write: bool

    def conflicts_with(self, other: "Access") -> bool:
        """Two accesses conflict when they touch the same variable and
        at least one is a write -- the paper's condition for a
        shared-data dependence between their events."""
        return self.variable == other.variable and (self.is_write or other.is_write)

    def __repr__(self) -> str:
        mode = "W" if self.is_write else "R"
        return f"{mode}({self.variable})"


@dataclass(frozen=True)
class Event:
    """One event of a program execution.

    Attributes
    ----------
    eid:
        Dense integer identifier, unique within an execution.
    process:
        Name of the process the event belongs to.
    index:
        Position of the event within its process (program order).
    kind:
        The :class:`EventKind`.
    obj:
        Synchronization object name (semaphore or event variable) for
        ``P``/``V``/``Post``/``Wait``/``Clear`` events; ``None``
        otherwise.
    accesses:
        Shared-variable accesses performed by the event (computation
        events only; synchronization events access no shared data in
        the paper's program class).
    label:
        Optional human-readable label (e.g. the paper's ``a`` and ``b``
        marker events in the reductions).
    """

    eid: int
    process: str
    index: int
    kind: EventKind
    obj: Optional[str] = None
    accesses: Tuple[Access, ...] = field(default_factory=tuple)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        needs_obj = self.kind.is_semaphore_op or self.kind.is_event_var_op
        if needs_obj and self.obj is None:
            raise ValueError(f"{self.kind.name} event requires a synchronization object name")
        if not needs_obj and self.obj is not None and not self.kind.is_task_op:
            if self.kind is EventKind.COMPUTATION:
                raise ValueError("computation events carry accesses, not a sync object")
        if self.accesses and self.kind is not EventKind.COMPUTATION:
            raise ValueError("only computation events carry shared-variable accesses")

    # ------------------------------------------------------------------
    @property
    def is_synchronization(self) -> bool:
        return self.kind.is_synchronization

    @property
    def reads(self) -> FrozenSet[str]:
        return frozenset(a.variable for a in self.accesses if not a.is_write)

    @property
    def writes(self) -> FrozenSet[str]:
        return frozenset(a.variable for a in self.accesses if a.is_write)

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset(a.variable for a in self.accesses)

    def conflicts_with(self, other: "Event") -> bool:
        """True when the two events contain at least one pair of
        conflicting shared accesses (the race / dependence condition)."""
        return any(a.conflicts_with(b) for a in self.accesses for b in other.accesses)

    def describe(self) -> str:
        """A compact one-line description used by witnesses and demos."""
        if self.label:
            return f"{self.label}"
        if self.kind is EventKind.COMPUTATION:
            body = ",".join(repr(a) for a in self.accesses) or "skip"
            return f"{self.process}[{self.index}]:{body}"
        if self.kind.is_task_op or self.kind is EventKind.FENCE:
            return f"{self.process}[{self.index}]:{self.kind.value}"
        return f"{self.process}[{self.index}]:{self.kind.value}({self.obj})"

    def __repr__(self) -> str:
        return f"<e{self.eid} {self.describe()}>"
