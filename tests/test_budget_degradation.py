"""Graceful degradation: budgeted answers are sound or honestly UNKNOWN.

The contract under any budget, however hopeless: a verdict is either
``UNKNOWN`` or it agrees with the unbudgeted exact answer.  Budgets may
cost completeness, never correctness.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.budget import Budget
from repro.core.queries import OrderingQueries
from repro.races.detector import UNKNOWN, RaceDetector
from repro.reductions import event_reduction, semaphore_reduction
from repro.sat.cnf import CNF
from repro.workloads.programs import figure1_execution

from tests.strategies import overlay_executions

SAT_FORMULA = CNF([(1, 2, 3), (-1, 2, 3), (1, -2, 3)])
UNSAT_FORMULA = CNF([(1, 1, 1), (-1, -1, -1)])

HOPELESS_BUDGETS = [
    Budget(max_states=1),
    Budget.of(timeout=0.0),
    Budget.of(max_states=3, timeout=0.0),
]


def assert_verdicts_sound(exe, budget):
    """Every budgeted verdict on every pair is UNKNOWN or exact-correct."""
    exact = OrderingQueries(exe)
    budgeted = OrderingQueries(exe, budget=budget)
    eids = list(exe.eids)
    for a in eids:
        for b in eids:
            truths = exact.relation_values(a, b)
            verdicts = budgeted.relation_verdicts(a, b)
            for name, v in verdicts.items():
                if v.is_unknown:
                    continue
                assert v.to_bool() == truths[name], (
                    f"{name}({a},{b}): budgeted {v.describe()} vs "
                    f"exact {truths[name]}"
                )


class TestTheoremConstructionsUnderTinyBudgets:
    """Satellite: tiny budgets on the Theorem 1 / Theorem 3 reductions
    yield UNKNOWN (or a sound structural answer), never a wrong bool."""

    @pytest.mark.parametrize("build", [semaphore_reduction, event_reduction])
    @pytest.mark.parametrize("formula", [SAT_FORMULA, UNSAT_FORMULA])
    @pytest.mark.parametrize("budget", HOPELESS_BUDGETS)
    def test_marker_verdicts_never_wrong(self, build, formula, budget):
        red = build(formula)
        exact = red.queries()
        budgeted = red.queries(budget=budget)
        expected = exact.mhb(red.a, red.b)
        v = budgeted.mhb_verdict(red.a, red.b)
        assert v.is_unknown or v.to_bool() == expected
        w = budgeted.chb_verdict(red.b, red.a)
        assert w.is_unknown or w.to_bool() == exact.chb(red.b, red.a)

    def test_verdicts_never_raise(self):
        red = semaphore_reduction(UNSAT_FORMULA)
        q = red.queries(budget=Budget(max_states=1))
        for v in q.relation_verdicts(red.a, red.b).values():
            assert v.is_unknown or v.truth.is_known  # no exception escaped

    def test_retry_after_unknown_succeeds(self):
        """Nothing wrong is cached by a budget-blown verdict query."""
        red = semaphore_reduction(UNSAT_FORMULA)
        q = red.queries(budget=Budget(max_states=5))
        assert q.mhb_verdict(red.a, red.b).is_unknown
        q.budget = None
        assert q.mhb_verdict(red.a, red.b).to_bool() is True


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(exe=overlay_executions())
def test_property_budgeted_verdicts_sound(exe):
    """Property: on random overlay executions (semaphores + shared-data
    dependences) no tiny-budget verdict ever contradicts the exact
    answer."""
    assert_verdicts_sound(exe, Budget(max_states=2))


class TestRaceScanDegradation:
    def test_acceptance_theorem1_partial_report_under_1ms(self):
        """ISSUE acceptance: with a 1ms deadline, feasible_races on the
        Theorem 1 workload returns a partial report -- no exception --
        where every pair is unknown or carries a witness, and the same
        query unbudgeted matches the exact answers."""
        exe = semaphore_reduction(UNSAT_FORMULA).execution
        report = RaceDetector(
            exe, budget=Budget.of(timeout=0.001)
        ).feasible_races()
        for cls in report.classifications:
            assert cls.status == UNKNOWN or cls.witness is not None
        exact = RaceDetector(exe).feasible_races()
        assert exact.complete
        assert set(exact.pairs()) == set(
            RaceDetector(exe).feasible_races().pairs()
        )

    def test_expired_deadline_marks_every_pair_unknown(self):
        """A conflicting-pair workload: the figure 1 execution has a
        real feasible race, so the degradation is observable."""
        exe = figure1_execution()
        exact = RaceDetector(exe).feasible_races()
        assert len(exact.races) == 1 and exact.complete
        report = RaceDetector(
            exe, budget=Budget.of(timeout=0.0)
        ).feasible_races()
        assert not report.complete
        assert report.races == []
        assert len(report.classifications) == exact.conflicting_pairs_examined
        assert all(c.status == UNKNOWN for c in report.classifications)
        assert "unknown" in report.summary()

    def test_one_hard_pair_cannot_lose_the_scan(self):
        """Satellite 1: a per-pair states cap classifies undecidable
        pairs as unknown instead of raising away all results."""
        exe = figure1_execution()
        report = RaceDetector(exe, max_states=1).feasible_races()
        # no exception; every pair accounted for, three-valued
        assert len(report.classifications) == report.conflicting_pairs_examined
        for cls in report.classifications:
            assert cls.status in ("feasible", "infeasible", "unknown")
        # and nothing unsound: any definite answer matches the exact scan
        exact = {
            (c.a, c.b): c.status
            for c in RaceDetector(exe).feasible_races().classifications
        }
        for cls in report.classifications:
            if cls.status != UNKNOWN:
                assert cls.status == exact[(cls.a, cls.b)]

    def test_per_pair_budget_shares_scan_deadline(self):
        exe = figure1_execution()
        report = RaceDetector(exe).feasible_races(
            budget=Budget.of(timeout=30.0), per_pair_max_states=200_000
        )
        assert report.complete
        assert len(report.races) == 1
