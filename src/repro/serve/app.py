"""The ``repro serve`` HTTP daemon (lifecycle + request handling).

Wiring: HTTP handler threads (stdlib ``ThreadingHTTPServer``) pass
through the :class:`~repro.serve.admission.AdmissionQueue`, resolve the
execution against the persistent
:class:`~repro.serve.store.WitnessStore`, clamp the requested budget
(:func:`repro.budget.clamp_request`), and evaluate on the
crash-isolated :class:`~repro.supervise.pool.QueryWorkerPool` -- so a
segfaulting, OOM-killed or hanging evaluation costs one worker process
and one retried request, never the daemon.  Newly found witnesses are
persisted back to the store, which is how a repeat query on a stored
execution is answered by the cheap ``witness`` tier without the engine
running at all.

Endpoints::

    GET  /healthz     liveness: 200 while the process serves at all
    GET  /readyz      readiness: 200 only in the "serving" state;
                      503 while starting and while draining
    GET  /status      JSON: state, uptime, admission/pool/store stats
    GET  /metrics     the same, as Prometheus text
    GET  /executions  stored execution fingerprints
    POST /executions  store an execution document -> fingerprint
    POST /query       evaluate one relation query (see QueryDaemon)

Degradation contract: every degraded answer is an explicit ``UNKNOWN``
with the resource that ran out (``deadline``, ``states``, ``crash``,
``memory``, ``cpu``, ``shutdown``) and the planner's per-tier tallies
-- the daemon may decline to answer, it never guesses.

Disk pressure gets its own state: ``degraded_after`` consecutive
failed flush passes (ENOSPC, read-only remount) flip the daemon into
**degraded read-only mode**.  Reads and queries over already-stored
executions keep working from memory + the existing store; anything
that must write -- ``POST /executions``, a ``/query`` with an inline
execution document -- answers ``507 Insufficient Storage`` instead of
acknowledging data it cannot make durable.  ``/readyz`` stays ``200``
but reports ``degraded`` (a read-only replica is still routable), a
background probe re-tries a durable write every ``probe_interval``
seconds, and the moment the disk recovers the dirty entries are
flushed and full service resumes -- no restart, no operator action.

Shutdown (SIGTERM and SIGINT alike, wired by the CLI): flip readiness
to 503, stop admitting (new queries get 503), let in-flight requests
finish, drain the worker pool, flush the store, then stop the
listener.  A second signal skips the grace and tears down immediately.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro import faults
from repro.budget import clamp_request
from repro.memmodel import resolve_memory_model
from repro.model import serialize
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import QuietHandler
from repro.serve.admission import AdmissionQueue, Draining, Overloaded
from repro.serve.store import WitnessStore
from repro.supervise.pool import QUERY_RELATIONS, QueryWorkerPool
from repro.supervise.retry import RetryPolicy
from repro.supervise.rlimits import ResourceLimits

log = logging.getLogger("repro.serve")

#: relations that need both event ids (everything except feasibility)
_PAIR_RELATIONS = QUERY_RELATIONS - {"feasible"}

#: largest accepted request body (a trace document), in bytes
MAX_BODY_BYTES = 64 << 20


class _BadRequest(Exception):
    """Client error; message is served verbatim in the 400 body."""


def _require_model_match(doc: Dict[str, Any], exe: Any) -> None:
    """Enforce an explicit ``memory_model`` claim in a request.

    A client that says which model it believes it is talking about must
    be right: answering a TSO question from an SC execution (or vice
    versa) would be silently wrong, so a mismatch is a hard 400, never
    a coercion.  Requests that stay silent keep the execution's own
    model.
    """
    requested = doc.get("memory_model")
    if requested is None:
        return
    try:
        model = resolve_memory_model(str(requested))
    except ValueError as exc:
        raise _BadRequest(str(exc))
    if model.name != exe.memory_model:
        raise _BadRequest(
            f"memory model mismatch: request says {model.name!r} but the "
            f"execution was recorded under {exe.memory_model!r}"
        )


class _TooLarge(Exception):
    """Request body over :data:`MAX_BODY_BYTES`; served as 413."""


class _ReadOnly(Exception):
    """A write reached a degraded (read-only) daemon; served as 507."""


class _Handler(QuietHandler):
    server_version = "repro-serve"
    #: socket timeout: a client that trickles its request (or stops
    #: reading the response) stalls one handler thread for at most this
    #: long, never a worker or the accept loop
    timeout = 10.0

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        daemon: "QueryDaemon" = self.server.app
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._reply(200, "ok\n")
        elif path == "/readyz":
            if daemon.state == "serving":
                self._reply(200, "ready\n")
            elif daemon.state == "degraded":
                # a read-only replica is still routable for queries;
                # the body says writes will bounce with 507
                self._reply(200, "degraded (read-only)\n")
            else:
                self._reply(503, f"not ready ({daemon.state})\n")
        elif path == "/status":
            self._reply_json(200, daemon.status())
        elif path == "/metrics":
            self._reply(
                200,
                daemon.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/executions":
            self._reply_json(
                200,
                {
                    "executions": daemon.store.fingerprints(),
                    "store": daemon.store.stats(),
                },
            )
        else:
            self._reply(404, "not found\n")

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        daemon: "QueryDaemon" = self.server.app
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/executions":
                doc = self._read_json()
                self._reply_json(200, daemon.handle_put_execution(doc))
            elif path == "/query":
                doc = self._read_json()
                code, body, headers = daemon.handle_query(doc)
                self._reply_json(code, body, headers)
            else:
                self._reply(404, "not found\n")
        except _BadRequest as exc:
            self._reply_json(400, {"error": str(exc)})
        except _TooLarge as exc:
            # 413, not 400: the request was well-formed, just too big --
            # clients and proxies treat the codes differently (a 413 is
            # retryable after shrinking, a 400 is a bug).  The unread
            # body is still on the socket, so close the connection
            # rather than try to parse it as a next request.
            self._reply_json(
                413, {"error": str(exc)}, {"Connection": "close"}
            )
            self.close_connection = True
        except _ReadOnly as exc:
            self._reply_json(507, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - the daemon must survive
            daemon.count_error()
            self._reply_json(500, {"error": f"internal error: {exc!r}"})

    def _read_json(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _BadRequest("bad Content-Length")
        if length <= 0:
            raise _BadRequest("missing request body")
        if length > MAX_BODY_BYTES:
            raise _TooLarge(
                f"request body is {length} bytes; this server accepts "
                f"at most {MAX_BODY_BYTES}"
            )
        try:
            data = self.rfile.read(length)
        except OSError:  # slow client hit the socket timeout
            raise _BadRequest("request body not received in time")
        if len(data) < length:
            raise _BadRequest("client disconnected mid-request")
        try:
            doc = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"request body is not JSON: {exc}")
        if not isinstance(doc, dict):
            raise _BadRequest("request body must be a JSON object")
        return doc


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    app: "QueryDaemon"


class QueryDaemon:
    """A long-lived query-answering service over one witness store.

    A ``POST /query`` body names an execution (``"fingerprint"`` of a
    stored one, or an inline ``"execution"`` document, which is stored
    first) plus ``"relation"`` (one of mhb/chb/mcb/ccb/mow/cow/mcw/ccw/
    feasible/race), event ids ``"a"``/``"b"`` for pair relations, and
    an optional requested budget (``"max_states"``, ``"timeout"``)
    which is clamped to the server's caps.  Both ``POST /executions``
    and ``POST /query`` accept an optional ``"memory_model"`` claim;
    naming a model different from the execution's recorded one is a
    hard 400 (the daemon never silently reinterprets a document).
    """

    def __init__(
        self,
        store: WitnessStore,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        workers: int = 2,
        queue_limit: int = 8,
        default_timeout: Optional[float] = 30.0,
        max_timeout: Optional[float] = 120.0,
        max_states: Optional[int] = None,
        limits: Optional[ResourceLimits] = None,
        retry: Optional[RetryPolicy] = None,
        plan: Optional[Any] = None,
        faults: Optional[Dict[str, Dict[str, Any]]] = None,
        drain_grace: float = 10.0,
        degraded_after: int = 3,
        probe_interval: float = 2.0,
        retry_after_cap: float = 300.0,
    ) -> None:
        if degraded_after < 1:
            raise ValueError("degraded_after must be >= 1")
        self.store = store
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self.max_states = max_states
        self.drain_grace = drain_grace
        self.degraded_after = degraded_after
        self.probe_interval = probe_interval
        self.state = "starting"
        self._t0 = time.monotonic()
        self._state_lock = threading.Lock()
        self._requests = {"queries": 0, "unknown": 0, "errors": 0}
        self._degraded_since: Optional[float] = None
        self._recoveries = 0
        self._rejected_read_only = 0
        self._probe_thread: Optional[threading.Thread] = None
        self.admission = AdmissionQueue(
            queue_limit, workers=workers, retry_after_cap=retry_after_cap
        )
        self.pool = QueryWorkerPool(
            workers,
            limits=limits,
            retry=retry,
            plan=plan,
            faults=faults,
        )
        # bind eagerly: a taken port must fail *now*, before the CLI
        # reports the daemon as up
        try:
            self._httpd = _Server((host, port), _Handler)
        except OSError:
            self.pool.close(drain=False)
            raise
        self._httpd.app = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "QueryDaemon":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        self.state = "serving"
        return self

    def url(self, path: str = "/status") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def drain(self, *, grace: Optional[float] = None) -> None:
        """Finish in-flight work, refuse new, make everything durable."""
        grace = self.drain_grace if grace is None else grace
        with self._state_lock:
            if self.state in ("draining", "stopped"):
                return
            self.state = "draining"  # /readyz flips to 503 immediately
        self.admission.begin_drain()  # new queries now get 503
        self.admission.wait_idle(grace)  # in-flight handlers finish
        self.pool.close(drain=True, timeout=grace)
        self.store.flush()

    def close(self, *, drain: bool = True) -> None:
        if drain:
            self.drain()
        else:  # second signal: now
            with self._state_lock:
                self.state = "draining"
            self.admission.begin_drain()
            self.pool.close(drain=False, timeout=1.0)
            self.store.flush()
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self.state = "stopped"

    def __enter__(self) -> "QueryDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- degraded read-only mode -----------------------------------------
    def _note_storage_failure(self) -> None:
        """Re-evaluate degraded state after a failed durable write.

        The store counts consecutive failed flush *passes*; once they
        reach ``degraded_after`` the daemon flips to read-only and a
        background probe takes over retrying -- handler threads stop
        paying the price of a doomed flush on every request.
        """
        if self.store.consecutive_flush_failures < self.degraded_after:
            return
        with self._state_lock:
            if self.state != "serving":
                return  # starting / draining / already degraded
            self.state = "degraded"
            self._degraded_since = time.monotonic()
            probe = self._probe_thread
            if probe is None or not probe.is_alive():
                self._probe_thread = threading.Thread(
                    target=self._probe_loop,
                    name="repro-serve-probe",
                    daemon=True,
                )
                self._probe_thread.start()
        log.warning(
            "daemon degraded to read-only: %d consecutive flush "
            "pass(es) failed; queries keep serving from memory + store, "
            "writes answer 507, probing the disk every %.1fs",
            self.store.consecutive_flush_failures, self.probe_interval,
        )

    def _probe_loop(self) -> None:
        """Background disk probe: restore full service on recovery."""
        while True:
            time.sleep(self.probe_interval)
            if self.state != "degraded":
                return  # drained / stopped / already recovered
            if not self.store.probe():
                continue
            # the disk takes durable writes again: flush the backlog;
            # recovery requires the whole pass to have succeeded
            failures_before = self.store.flush_failures
            self.store.flush()
            if self.store.flush_failures != failures_before:
                continue
            self.store.consecutive_flush_failures = 0
            with self._state_lock:
                if self.state != "degraded":
                    return
                self.state = "serving"
                self._degraded_since = None
                self._recoveries += 1
            log.warning(
                "disk recovered: store flushed, resuming full service"
            )
            return

    def _flush_store(self) -> None:
        """Flush after a mutation, then re-evaluate degraded state.
        While degraded the probe loop owns retrying -- handler threads
        skip the flush entirely and serve from memory."""
        if self.state == "degraded":
            return
        self.store.flush()
        self._note_storage_failure()

    # -- request handling (handler threads) ------------------------------
    def count_error(self) -> None:
        with self._state_lock:
            self._requests["errors"] += 1

    def handle_put_execution(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        if self.state == "degraded":
            with self._state_lock:
                self._rejected_read_only += 1
            raise _ReadOnly(
                "daemon is in degraded read-only mode (disk not taking "
                "durable writes); execution not stored -- retry later"
            )
        exe_doc = doc.get("execution", doc)  # bare documents welcome
        try:
            exe = serialize.execution_from_dict(exe_doc)
        except (ValueError, KeyError, TypeError) as exc:
            raise _BadRequest(f"bad execution document: {exc}")
        _require_model_match(doc, exe)
        try:
            fp = self.store.put_execution(exe)
        except OSError as exc:
            self._note_storage_failure()
            raise _ReadOnly(
                f"could not store the execution durably: {exc}"
            )
        self._flush_store()
        return {
            "fingerprint": fp,
            "memory_model": exe.memory_model,
            "witnesses": len(self.store.points_for(fp)),
        }

    def handle_query(self, doc: Dict[str, Any]):
        """Returns ``(http_code, json_body, extra_headers)``."""
        if self.state not in ("serving", "degraded"):
            return 503, {"error": f"daemon is {self.state}"}, None
        try:
            self.admission.try_enter()
        except Overloaded as exc:
            retry_after = max(1, int(round(exc.retry_after)))
            return (
                429,
                {
                    "error": "at capacity",
                    "retry_after_seconds": retry_after,
                    "admission": self.admission.stats(),
                },
                {"Retry-After": str(retry_after)},
            )
        except Draining:
            return 503, {"error": "daemon is draining"}, None
        entered_at = time.monotonic()
        try:
            return self._run_query(doc)
        finally:
            self.admission.release(time.monotonic() - entered_at)

    def _run_query(self, doc: Dict[str, Any]):
        faults.fire("serve.query")
        # -- resolve the execution ------------------------------------
        fp = doc.get("fingerprint")
        if fp is None:
            exe_doc = doc.get("execution")
            if exe_doc is None:
                raise _BadRequest(
                    "name an execution: 'fingerprint' of a stored one, or "
                    "an inline 'execution' document"
                )
            if self.state == "degraded":
                # an inline execution must be stored before the pool can
                # evaluate it; a degraded daemon cannot make it durable
                with self._state_lock:
                    self._rejected_read_only += 1
                raise _ReadOnly(
                    "daemon is in degraded read-only mode; query a stored "
                    "'fingerprint' instead of an inline execution"
                )
            try:
                exe = serialize.execution_from_dict(exe_doc)
            except (ValueError, KeyError, TypeError) as exc:
                raise _BadRequest(f"bad execution document: {exc}")
            try:
                fp = self.store.put_execution(exe)
            except OSError as exc:
                self._note_storage_failure()
                raise _ReadOnly(
                    f"could not store the execution durably: {exc}"
                )
        elif fp not in self.store:
            return 404, {"error": f"no stored execution {fp}"}, None
        exe = self.store.execution(fp)
        _require_model_match(doc, exe)
        # -- validate the relation ------------------------------------
        relation = str(doc.get("relation", "race")).lower()
        if relation not in QUERY_RELATIONS:
            raise _BadRequest(
                f"unknown relation {relation!r} "
                f"(one of {', '.join(sorted(QUERY_RELATIONS))})"
            )
        a = b = None
        if relation in _PAIR_RELATIONS:
            try:
                a, b = int(doc["a"]), int(doc["b"])
            except (KeyError, TypeError, ValueError):
                raise _BadRequest(
                    f"relation {relation!r} needs integer event ids 'a' and 'b'"
                )
            known = set(exe.eids)
            if a not in known or b not in known:
                raise _BadRequest(
                    f"event ids must be within this execution's "
                    f"0..{len(exe.events) - 1}"
                )
        # -- clamp the requested budget to the server's caps ----------
        req_states = doc.get("max_states")
        req_timeout = doc.get("timeout")
        try:
            req_states = None if req_states is None else int(req_states)
            req_timeout = None if req_timeout is None else float(req_timeout)
        except (TypeError, ValueError):
            raise _BadRequest("'max_states'/'timeout' must be numbers")
        max_states, timeout = clamp_request(
            req_states,
            req_timeout,
            states_cap=self.max_states,
            timeout_cap=self.max_timeout,
            default_timeout=self.default_timeout,
        )
        # -- evaluate on the crash-isolated pool ----------------------
        request = {
            "fingerprint": fp,
            "execution": self.store.execution_doc(fp),
            "relation": relation,
            "a": a,
            "b": b,
            "drop_racing": bool(doc.get("drop_racing", True)),
            "max_states": max_states,
            "timeout": timeout,
            "witnesses": self.store.points_for(fp),
        }
        tid = self.pool.submit(request)
        wait = None
        if timeout is not None:
            # budget + crash retries + wall grace, with margin: the pool
            # always finalizes (UNKNOWN at worst) well inside this
            retries = self.pool.retry.max_retries
            wait = (timeout + self.pool.wall_grace) * (1 + retries) + 15.0
        outcome = self.pool.result(tid, timeout=wait)
        # -- persist what the query discovered ------------------------
        persisted = self.store.add_points(fp, outcome.get("witnesses_found"))
        if persisted:
            self._flush_store()
        with self._state_lock:
            self._requests["queries"] += 1
            if outcome.get("verdict") in ("UNKNOWN", "unknown"):
                self._requests["unknown"] += 1
        body = {
            "fingerprint": fp,
            "memory_model": exe.memory_model,
            "relation": relation,
            "a": a,
            "b": b,
            "verdict": outcome.get("verdict"),
            "decided_by": outcome.get("decided_by"),
            "resource": outcome.get("resource"),
            "witness": outcome.get("witness"),
            "classification": outcome.get("classification"),
            "planner": outcome.get("planner"),
            "budget": {"max_states": max_states, "timeout": timeout},
            "witnesses_persisted": persisted,
        }
        return 200, body, None

    # -- introspection ---------------------------------------------------
    def status(self) -> Dict[str, Any]:
        with self._state_lock:
            requests = dict(self._requests)
            degraded_since = self._degraded_since
            degraded = {
                "seconds": (
                    time.monotonic() - degraded_since
                    if degraded_since is not None
                    else 0.0
                ),
                "recoveries": self._recoveries,
                "rejected_read_only": self._rejected_read_only,
            }
        return {
            "service": "repro-serve",
            "state": self.state,
            "uptime_seconds": time.monotonic() - self._t0,
            "requests": requests,
            "degraded": degraded,
            "admission": self.admission.stats(),
            "pool": self.pool.stats(),
            "store": self.store.stats(),
        }

    def render_metrics(self) -> str:
        doc = self.status()
        registry = MetricsRegistry()
        registry.gauge("repro_serve_up", "1 while the daemon serves").set(1)
        registry.gauge(
            "repro_serve_ready", "1 while accepting new queries"
        ).set(1 if doc["state"] == "serving" else 0)
        registry.gauge(
            "repro_serve_degraded", "1 while in degraded read-only mode"
        ).set(1 if doc["state"] == "degraded" else 0)
        deg = doc["degraded"]
        registry.counter(
            "repro_serve_recoveries_total",
            "Degraded-to-serving recoveries",
        ).inc(deg["recoveries"])
        registry.counter(
            "repro_serve_rejected_read_only_total",
            "Writes refused with 507 while degraded",
        ).inc(deg["rejected_read_only"])
        registry.gauge(
            "repro_serve_uptime_seconds", "Daemon uptime"
        ).set(doc["uptime_seconds"])
        req = doc["requests"]
        registry.counter(
            "repro_serve_queries_total", "Queries answered"
        ).inc(req["queries"])
        registry.counter(
            "repro_serve_unknown_total", "Queries answered UNKNOWN"
        ).inc(req["unknown"])
        registry.counter(
            "repro_serve_errors_total", "Requests that failed internally"
        ).inc(req["errors"])
        adm = doc["admission"]
        registry.gauge(
            "repro_serve_active_requests", "Admitted, not yet released"
        ).set(adm["active"])
        registry.counter(
            "repro_serve_rejected_total",
            "Requests refused at admission, by reason",
            labels={"reason": "busy"},
        ).inc(adm["rejected_busy"])
        registry.counter(
            "repro_serve_rejected_total",
            "Requests refused at admission, by reason",
            labels={"reason": "draining"},
        ).inc(adm["rejected_draining"])
        pool = doc["pool"]
        registry.counter(
            "repro_worker_spawns_total", "Query workers started"
        ).inc(pool["spawns"])
        registry.counter(
            "repro_worker_crashes_total", "Query workers that died"
        ).inc(pool["crashes"])
        registry.counter(
            "repro_serve_retries_total", "Query attempts retried"
        ).inc(pool["retries"])
        store = doc["store"]
        registry.gauge(
            "repro_store_executions", "Executions in the witness store"
        ).set(store["executions"])
        registry.gauge(
            "repro_store_witnesses", "Validated schedules resident"
        ).set(store["witnesses"])
        registry.counter(
            "repro_store_quarantined_total", "Corrupt files quarantined"
        ).inc(store["quarantined"])
        registry.counter(
            "repro_store_flush_failures_total", "Durable flushes that failed"
        ).inc(store["flush_failures"])
        registry.counter(
            "repro_store_evictions_total", "Entries evicted by the LRU cap"
        ).inc(store["evictions"])
        registry.counter(
            "repro_store_compactions_total", "Store compaction passes"
        ).inc(store["compactions"])
        return registry.render()


__all__ = ["QueryDaemon", "MAX_BODY_BYTES"]
