#!/usr/bin/env python3
"""Figure 1, end to end: why ignoring shared-data dependences loses orderings.

The paper's Section 4 example: a parent forks three tasks --

    t1: Post(ev); X := 1
    t2: if X = 1 then Post(ev) else Wait(ev)
    t3: Wait(ev)

In the observed execution t1 completes first, so t2 reads X = 1 and
issues the second Post.  The Emrath/Ghosh/Padua task graph (which
ignores shared data) shows *no* path between the two Posts.  But the
shared-data dependence ``X := 1 -> if X = 1`` must recur in every
feasible execution (condition F3), and it chains the left Post strictly
before the right one.  The exact engine proves the must-ordering; the
task graph misses it.

Run:  python examples/figure1_taskgraph.py
"""

from repro import OrderingQueries, TaskGraph
from repro.lang import run_program
from repro.lang.scheduler import PriorityScheduler
from repro.workloads.programs import figure1_program


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Run the program so that the first task completes first
    # ------------------------------------------------------------------
    program = figure1_program()
    trace = run_program(program, PriorityScheduler(["main", "t1", "t2", "t3"]))
    print("observed trace (t1 runs to completion first):")
    print(trace.pretty())
    print()

    exe = trace.to_execution()
    print(f"as an execution: {exe}")
    for e in exe.events:
        print(f"  {e.eid}: {e.describe()}")
    print(f"shared-data dependences D = {sorted(exe.dependences)}")
    print()

    post_left = exe.by_label("post_left").eid
    post_right = exe.by_label("post_right").eid
    wait = exe.by_label("wait_t3").eid

    # ------------------------------------------------------------------
    # 2. The EGP task graph
    # ------------------------------------------------------------------
    tg = TaskGraph(exe)
    print(tg.describe())
    print()
    print("EGP guaranteed ordering between the two Posts:")
    print(f"  post_left  -> post_right ?  {tg.guaranteed_ordering(post_left, post_right)}")
    print(f"  post_right -> post_left  ?  {tg.guaranteed_ordering(post_right, post_left)}")
    print()

    # ------------------------------------------------------------------
    # 3. The exact answer
    # ------------------------------------------------------------------
    q = OrderingQueries(exe)
    print("exact engine (with D, per the paper's feasibility):")
    print(f"  post_left MHB post_right ?  {q.mhb(post_left, post_right)}")
    print(f"  (chain: post_left ->po X:=1 ->D if ->po post_right)")
    print()

    print("exact engine with D ignored (the EGP/Section 5.3 view):")
    q_bare = OrderingQueries(exe, include_dependences=False)
    print(f"  post_left MHB post_right ?  {q_bare.mhb(post_left, post_right)}")
    w = q_bare.ccw_witness(post_left, post_right)
    if w is not None:
        print("  ... indeed, without D the Posts can even overlap:")
        print(w.pretty())
    print()

    # ------------------------------------------------------------------
    # 4. Why F3 matters: a different schedule changes the event set
    # ------------------------------------------------------------------
    alt = run_program(program, PriorityScheduler(["main", "t2", "t3", "t1"]))
    alt_exe = alt.to_execution()
    print("alternate run where t2 reads X before the write:")
    print(f"  labels present: {sorted(alt_exe.labels)}")
    print("  the else-branch issued a Wait instead of the right Post --")
    print("  a different event set, hence not a feasible execution of the")
    print("  observed one (condition F1/F3).")


if __name__ == "__main__":
    main()
