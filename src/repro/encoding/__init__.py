"""Ordering questions encoded as Boolean satisfiability.

The paper reduces 3CNFSAT *to* event-ordering queries (Theorems 1-4).
This package computes the **converse** direction: a legal-serial-
schedule existence question (and hence every could-complete-before /
could-have-happened-before query, via the serialization lemma) is
compiled to CNF and handed to the library's own DPLL solver.

Together the two directions make the paper's equivalence fully
computational: ordering is SAT-hard (Theorems 1-4, `repro.reductions`)
and ordering is *in* NP for the serial fragment (this encoder) -- the
could-relations of Table 1 are NP-complete for that fragment, which is
the upper bound matching the paper's lower bound.

The encoder (:mod:`repro.encoding.order_sat`) is also an *independent*
decision procedure: it shares no code with the state-space engine, so
agreement between the two on random executions
(``tests/test_encoding.py``) is strong evidence both are right.
"""

from repro.encoding.order_sat import OrderSatEncoder, sat_chb, sat_is_feasible

__all__ = ["OrderSatEncoder", "sat_chb", "sat_is_feasible"]
