"""Structural tests for DOT export."""

from repro import viz
from repro.approx.taskgraph import TaskGraph
from repro.core.queries import OrderingQueries
from repro.model.builder import ExecutionBuilder
from repro.workloads.programs import figure1_execution


class TestExecutionDot:
    def test_contains_all_events(self):
        exe = figure1_execution()
        dot = viz.execution_dot(exe)
        for e in exe.events:
            assert f"n{e.eid}" in dot
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")

    def test_dependences_rendered_dashed_red(self):
        exe = figure1_execution()
        dot = viz.execution_dot(exe)
        (a, b), = exe.dependences
        assert f"n{a} -> n{b} [style=dashed, color=red" in dot

    def test_dependences_can_be_hidden(self):
        exe = figure1_execution()
        dot = viz.execution_dot(exe, include_dependences=False)
        assert "color=red" not in dot

    def test_process_clusters(self):
        exe = figure1_execution()
        dot = viz.execution_dot(exe)
        for proc in exe.process_names:
            assert f'label="{proc}"' in dot

    def test_quoting(self):
        b = ExecutionBuilder()
        b.process("p").skip(label='we"ird')
        dot = viz.execution_dot(b.build())
        assert '\\"' in dot


class TestTaskGraphDot:
    def test_only_sync_nodes(self):
        exe = figure1_execution()
        tg = TaskGraph(exe)
        dot = viz.task_graph_dot(tg)
        for eid in tg.nodes:
            assert f"n{eid}" in dot
        for eid in exe.computation_events():
            assert f"  n{eid} [" not in dot

    def test_sync_edges_bold(self):
        b = ExecutionBuilder()
        post = b.process("A").post("v")
        wait = b.process("B").wait("v")
        dot = viz.task_graph_dot(TaskGraph(b.build()))
        assert f"n{post} -> n{wait} [penwidth=2]" in dot


class TestWitnessDot:
    def test_overlap_edges_marked(self):
        b = ExecutionBuilder()
        v = b.process("p1").sem_v("s")
        p = b.process("p2").sem_p("s")
        q = OrderingQueries(b.build())
        w = q.ccw_witness(v, p)
        dot = viz.witness_dot(w)
        assert "overlap" in dot

    def test_highlight(self):
        b = ExecutionBuilder()
        x = b.process("p1").skip()
        y = b.process("p2").skip()
        q = OrderingQueries(b.build())
        w = q.feasible_witness()
        dot = viz.witness_dot(w, highlight=[x])
        assert "color=red, penwidth=2" in dot

    def test_timeline_follows_completion_order(self):
        b = ExecutionBuilder()
        v = b.process("p1").sem_v("s")
        p = b.process("p2").sem_p("s")
        q = OrderingQueries(b.build())
        w = q.feasible_witness()
        dot = viz.witness_dot(w)
        order = w.serial_order()
        assert f"n{order[0]} -> n{order[1]} [color=gray]" in dot
