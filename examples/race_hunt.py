#!/usr/bin/env python3
"""Race detection: apparent (vector clock) vs feasible (exact CCW).

The paper's closing implication is that *exhaustive* feasible-race
detection is intractable -- a feasible race between conflicting events
is precisely a could-have-been-concurrent (CCW) query.  This example
runs three workloads and compares the cheap detector with the exact
one, including the case where the cheap detector is *wrong in both
directions* on the same program family.

Run:  python examples/race_hunt.py
"""

from repro import RaceDetector
from repro.lang import run_program
from repro.lang.ast import Assign, Const, ProcessDef, Program, SemP, SemV, Shared
from repro.lang.scheduler import FixedScheduler
from repro.workloads.programs import figure1_program
from repro.lang.scheduler import PriorityScheduler


def show(title, exe):
    print(f"== {title}")
    detector = RaceDetector(exe)
    apparent = detector.apparent_races()
    feasible = detector.feasible_races()
    print("  " + apparent.summary())
    for r in apparent.races:
        print("    " + r.describe(exe))
    print("  " + feasible.summary())
    for r in feasible.races:
        print("    " + r.describe(exe))
        if r.witness is not None:
            a, b = exe.event(r.a), exe.event(r.b)
            print(f"    witness overlaps {a.describe()} with {b.describe()}:")
            for line in r.witness.pretty().splitlines():
                print("    " + line)
    print()
    return apparent, feasible


def unsynchronized() -> None:
    prog = Program(
        [
            ProcessDef("w1", [Assign("x", Const(1))]),
            ProcessDef("w2", [Assign("x", Const(2))]),
        ]
    )
    exe = run_program(prog, FixedScheduler(["w1", "w2"])).to_execution()
    show("two unsynchronized writers (a real race, both detectors agree)", exe)


def masked_by_accidental_pairing() -> None:
    """The observed run pairs the reader's P with the writer's V, so
    vector clocks order write before read -- but another feasible
    execution pairs it with the *other* V, exposing the race.  The
    apparent detector under-reports; the exact one does not."""
    prog = Program(
        [
            ProcessDef("w1", [Assign("x", Const(1)), SemV("s")]),
            ProcessDef("w2", [SemV("s")]),
            ProcessDef("r", [SemP("s"), Assign("y", Shared("x"))]),
        ]
    )
    trace = run_program(prog, FixedScheduler(["w1", "w1", "r", "w2", "r", "r"]))
    exe = trace.to_execution()
    apparent, feasible = show("race masked by an accidental V/P pairing", exe)
    missed = set(map(frozenset, feasible.pairs())) - set(map(frozenset, apparent.pairs()))
    print(f"  races the apparent detector MISSED: {len(missed)}")
    print()


def figure1() -> None:
    trace = run_program(figure1_program(), PriorityScheduler(["main", "t1", "t2", "t3"]))
    show("the paper's Figure 1 fragment (write/read of X)", trace.to_execution())


def main() -> None:
    unsynchronized()
    masked_by_accidental_pairing()
    figure1()
    print("Every feasible race above carries a validated witness schedule;")
    print("the paper proves that producing this list exhaustively cannot be")
    print("done in polynomial time in general.")


if __name__ == "__main__":
    main()
