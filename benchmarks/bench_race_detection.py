"""Experiment X4 -- the race-detection corollary (Conclusion).

"An implication of these results is that exhaustively detecting all
data races potentially exhibited by a given program execution is an
intractable problem."

Regenerated as a head-to-head between the polynomial *apparent*
detector (vector clocks on the observed pairing) and the exact
*feasible* detector (a CCW query per conflicting pair):

* on the masking family, apparent detection under-reports -- the
  observed V/P pairing hides races other feasible executions expose;
* the exact detector backs every report with a validated overlap
  witness;
* cost columns show the price of exactness growing with conflicting
  pairs, while the apparent detector stays flat;
* a ``jobs=2`` column scans the same pairs through the crash-isolated
  worker pool -- identical classifications, and the spawn overhead
  shows exactly when parallelism starts paying (many/hard pairs, not
  these toy widths).
"""

import json
import os
import time

from conftest import RESULTS_DIR, report, table

from repro.lang.ast import (
    Assign,
    Const,
    Fence,
    LocalAssign,
    ProcessDef,
    Program,
    SemP,
    SemV,
    Shared,
)
from repro.lang.interpreter import run_program
from repro.lang.scheduler import FixedScheduler, PriorityScheduler
from repro.races.detector import RaceDetector
from repro.supervise import SupervisedScanner
from repro.workloads.programs import figure1_execution


def masking_family(width: int):
    """``width`` writers each V once; a reader P's once then reads all
    written variables.  The observed run pairs the P with writer 0's V,
    apparently ordering that writer's data below the read -- feasibly,
    any single writer could have supplied the token."""
    procs = [
        ProcessDef(f"w{k}", [Assign(f"x{k}", Const(1)), SemV("s")])
        for k in range(width)
    ]
    reader_body = [SemP("s")] + [
        Assign(f"y{k}", Shared(f"x{k}")) for k in range(width)
    ]
    procs.append(ProcessDef("r", reader_body))
    prog = Program(procs)
    schedule = ["w0", "w0", "r"] + [
        x for k in range(1, width) for x in (f"w{k}", f"w{k}")
    ] + ["r"] * width
    return run_program(prog, FixedScheduler(schedule)).to_execution()


def run_study():
    workloads = [("figure1", figure1_execution())] + [
        (f"masking x{w}", masking_family(w)) for w in (2, 3, 4)
    ]
    rows = []
    for name, exe in workloads:
        detector = RaceDetector(exe)
        t0 = time.perf_counter()
        apparent = detector.apparent_races()
        t_apparent = time.perf_counter() - t0
        t0 = time.perf_counter()
        feasible = detector.feasible_races()
        t_feasible = time.perf_counter() - t0
        for race in feasible.races:
            race.witness.validate(include_dependences=False)
        t0 = time.perf_counter()
        supervised = RaceDetector(exe).feasible_races(
            runner=SupervisedScanner(jobs=2)
        )
        t_jobs2 = time.perf_counter() - t0
        rows.append(
            dict(
                name=name, exe=exe,
                pairs=feasible.conflicting_pairs_examined,
                apparent=len(apparent.races), feasible=len(feasible.races),
                missed=len(
                    set(map(frozenset, feasible.pairs()))
                    - set(map(frozenset, apparent.pairs()))
                ),
                supervised=supervised,
                serial_status=[
                    (c.a, c.b, c.status) for c in feasible.classifications
                ],
                t_apparent=t_apparent, t_feasible=t_feasible, t_jobs2=t_jobs2,
            )
        )
    return rows


def test_feasible_vs_apparent_races(benchmark):
    rows = benchmark(run_study)

    for r in rows:
        assert r["feasible"] >= r["apparent"] - 0  # exactness never under the masking family
        if r["name"].startswith("masking"):
            width = int(r["name"].split("x")[-1])
            # the race on x0 is masked by the accidental pairing
            assert r["missed"] >= 1
            assert r["feasible"] == width  # every writer's data races with its read
        # the crash-isolated pool is an execution strategy, not a
        # different detector: classifications must match the serial scan
        assert [
            (c.a, c.b, c.status) for c in r["supervised"].classifications
        ] == r["serial_status"]

    body = [
        [
            r["name"], len(r["exe"]), r["pairs"], r["apparent"], r["feasible"],
            r["missed"],
            f"{r['t_apparent'] * 1e3:.1f}ms", f"{r['t_feasible'] * 1e3:.1f}ms",
            f"{r['t_jobs2'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["workload", "|E|", "conflicting pairs", "apparent", "feasible",
         "missed by apparent", "apparent time", "feasible time",
         "feasible jobs=2"],
        body,
    )
    lines.append("")
    lines.append("every feasible race carries a replayed overlap witness; the")
    lines.append("apparent detector misses the pairing-masked races, and the")
    lines.append("exact detector's cost is what the corollary says it must be")
    report("race_detection", lines)


# ----------------------------------------------------------------------
# SC vs TSO: the store-buffering family separates the memory models
# ----------------------------------------------------------------------
def store_buffering_family(width: int, *, fenced: bool = False,
                           memory_model: str = "sc"):
    """``width`` independent store-buffering litmus pairs: ``A_k``
    writes ``x_k`` then reads ``y_k`` while ``B_k`` writes ``y_k`` then
    ``x_k``.  Run with every ``A`` prioritized, the recorded
    dependences per pair are ``aw_k -> bx_k`` and ``ar_k -> bw_k``;
    under SC the ``(aw_k, bx_k)`` conflict is provably infeasible
    through the program-order edge ``aw_k -> ar_k``, and under TSO that
    edge is exactly the one the store buffer relaxes.  ``fenced=True``
    drains the buffer between the two, restoring the SC verdicts."""
    procs = []
    for k in range(width):
        a_body = [Assign(f"x{k}", Const(1), label=f"aw{k}")]
        if fenced:
            a_body.append(Fence())
        a_body.append(LocalAssign(f"$t{k}", Shared(f"y{k}"), label=f"ar{k}"))
        procs.append(ProcessDef(f"A{k}", a_body))
        procs.append(
            ProcessDef(
                f"B{k}",
                [
                    Assign(f"y{k}", Const(2), label=f"bw{k}"),
                    Assign(f"x{k}", Const(2), label=f"bx{k}"),
                ],
            )
        )
    prog = Program(procs)
    scheduler = PriorityScheduler([f"A{k}" for k in range(width)])
    return run_program(
        prog, scheduler, memory_model=memory_model
    ).to_execution()


def run_memory_model_study():
    workloads = [
        ("store-buffer x1", 1, False),
        ("store-buffer x2", 2, False),
        ("store-buffer x3", 3, False),
        ("store-buffer x3 fenced", 3, True),
    ]
    rows = []
    for name, width, fenced in workloads:
        row = dict(name=name, width=width, fenced=fenced)
        for model in ("sc", "tso"):
            exe = store_buffering_family(
                width, fenced=fenced, memory_model=model
            )
            t0 = time.perf_counter()
            feasible = RaceDetector(exe).feasible_races()
            row[f"t_{model}"] = time.perf_counter() - t0
            row[f"exe_{model}"] = exe
            row[f"feasible_{model}"] = feasible
        # the two runs interleave differently (a TSO fence blocks its
        # process mid-body), so compare races by event *label*, not eid
        row["tso_only"] = len(
            _label_pairs(row["exe_tso"], row["feasible_tso"])
            - _label_pairs(row["exe_sc"], row["feasible_sc"])
        )
        rows.append(row)
    return rows


def _label_pairs(exe, feasible_report):
    return {
        frozenset((exe.event(a).label, exe.event(b).label))
        for a, b in feasible_report.pairs()
    }


def test_sc_vs_tso_store_buffering(benchmark):
    rows = benchmark(run_memory_model_study)

    for r in rows:
        width = r["width"]
        sc, tso = r["feasible_sc"], r["feasible_tso"]
        # SC proves one conflicting pair per litmus infeasible; every
        # SC race is also a TSO race (relaxation only removes orderings)
        assert len(sc.races) == width
        sc_pairs = _label_pairs(r["exe_sc"], sc)
        tso_pairs = _label_pairs(r["exe_tso"], tso)
        assert sc_pairs <= tso_pairs
        if r["fenced"]:
            # the fence re-orders the store below the read: TSO agrees
            # with SC pair for pair
            assert tso_pairs == sc_pairs
            assert r["tso_only"] == 0
        else:
            # each litmus contributes exactly one TSO-only race -- the
            # write/write conflict the store buffer un-orders
            assert len(tso.races) == 2 * width
            assert r["tso_only"] == width

    body = [
        [
            r["name"], len(r["exe_sc"]),
            r["feasible_sc"].conflicting_pairs_examined,
            len(r["feasible_sc"].races), len(r["feasible_tso"].races),
            r["tso_only"],
            f"{r['t_sc'] * 1e3:.1f}ms", f"{r['t_tso'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["workload", "|E|", "conflicting pairs", "feasible (sc)",
         "feasible (tso)", "tso-only", "sc time", "tso time"],
        body,
    )
    lines.append("")
    lines.append("the same observed run, reinterpreted under TSO, exposes one")
    lines.append("extra race per litmus -- the store-buffered write/write pair")
    lines.append("SC proves infeasible; a fence restores the SC verdicts")
    report("race_memory_models", lines)


# ----------------------------------------------------------------------
# the solver portfolio against the engine-only scan
# ----------------------------------------------------------------------
def brawl_family(width: int, *, contended: bool = False):
    """``width`` unsynchronized single-write processes all hitting
    ``x``: every pair conflicts, and the observed schedule's widenings
    hand the portfolio most answers for free.

    With ``contended=True`` the brawl on ``x`` is unchanged but writers
    ``2g`` and ``2g+1`` guard their write with the same lock cell
    ``m_g`` (fed a single token by a supplier).  The contested P's are
    never free -- hoisting cannot touch them -- yet P's on *different*
    cells commute, so the workload has exactly the branching structure
    sleep-set pruning exists for.  This is the POR column's subject."""
    procs = []
    schedule = []
    if contended:
        for g in range((width + 1) // 2):
            procs.append(ProcessDef(f"s{g}", [SemV(f"m{g}")]))
            schedule.append(f"s{g}")
        for k in range(width):
            procs.append(
                ProcessDef(
                    f"w{k}",
                    [SemP(f"m{k // 2}"), Assign("x", Const(k)),
                     SemV(f"m{k // 2}")],
                )
            )
            schedule += [f"w{k}"] * 3
    else:
        procs = [
            ProcessDef(f"w{k}", [Assign("x", Const(k))])
            for k in range(width)
        ]
        schedule = [f"w{k}" for k in range(width)]
    return run_program(
        Program(procs), FixedScheduler(schedule)
    ).to_execution()


def scan_with_plan(exe, plan, por="sleep"):
    detector = RaceDetector(exe, plan=plan, por=por)
    t0 = time.perf_counter()
    feasible = detector.feasible_races()
    elapsed = time.perf_counter() - t0
    return feasible, elapsed


POR_MODES = ("off", "hoist", "sleep")
POR_MODELS = ("sc", "tso")
POR_BASELINE = os.path.join(RESULTS_DIR, "por_baseline.json")


def run_planner_study():
    workloads = [
        ("figure1", figure1_execution()),
        ("masking x3", masking_family(3)),
        ("brawl x4", brawl_family(4)),
        ("brawl x5", brawl_family(5)),
        ("brawl x5 locked", brawl_family(5, contended=True)),
        ("brawl x6 locked", brawl_family(6, contended=True)),
    ]
    rows = []
    for name, exe in workloads:
        # the pre-refactor scan: structural shortcut, then the exact
        # engine per pair -- no observed/witness/HMW tiers
        baseline, t_base = scan_with_plan(exe, ("structural", "engine"))
        portfolio, t_port = scan_with_plan(exe, None)  # DEFAULT_PLAN
        # the POR column: the same engine-only scan per reduction mode,
        # under both memory models -- classifications must not move
        por = {}
        for model in POR_MODELS:
            m_exe = exe.with_memory_model(model)
            for mode in POR_MODES:
                por[(model, mode)], _ = scan_with_plan(
                    m_exe, ("structural", "engine"), por=mode
                )
        rows.append(
            dict(
                name=name,
                pairs=portfolio.conflicting_pairs_examined,
                baseline=baseline, portfolio=portfolio, por=por,
                t_base=t_base, t_port=t_port,
            )
        )
    return rows


def test_planner_portfolio_vs_engine_only(benchmark):
    rows = benchmark(run_planner_study)

    total_pairs = total_below = 0
    for r in rows:
        base, port = r["baseline"], r["portfolio"]
        # the portfolio is an execution strategy, not a different
        # detector: classifications must match the engine-only scan
        assert [(c.a, c.b, c.status) for c in port.classifications] == [
            (c.a, c.b, c.status) for c in base.classifications
        ]
        # cheaper tiers may only ever SAVE exact search
        assert port.planner.engine_states() <= base.planner.engine_states()
        total_pairs += r["pairs"]
        total_below += port.planner.answered_below("engine")
    # the headline: a healthy share of CCW answers never touch the
    # exponential tier (each pair also costs feasibility queries, so
    # compare against the pair count, the scan's unit of work)
    assert total_below >= 0.3 * total_pairs

    # --- the POR column ------------------------------------------------
    # reduction is an execution strategy too: under BOTH memory models,
    # every mode must classify pair for pair like the unreduced scan,
    # and may only ever remove engine states
    brawl_states = {
        (model, mode): 0 for model in POR_MODELS for mode in POR_MODES
    }
    for r in rows:
        for model in POR_MODELS:
            off = r["por"][(model, "off")]
            for mode in ("hoist", "sleep"):
                red = r["por"][(model, mode)]
                assert [
                    (c.a, c.b, c.status) for c in red.classifications
                ] == [
                    (c.a, c.b, c.status) for c in off.classifications
                ], (r["name"], model, mode)
                assert (
                    red.planner.engine_states()
                    <= off.planner.engine_states()
                ), (r["name"], model, mode)
            if r["name"].startswith("brawl"):
                for mode in POR_MODES:
                    brawl_states[(model, mode)] += r["por"][
                        (model, mode)
                    ].planner.engine_states()
    # the acceptance headline: >= 2x states-visited collapse across the
    # brawl family with POR on, under both memory models
    for model in POR_MODELS:
        assert (
            brawl_states[(model, "off")]
            >= 2 * brawl_states[(model, "sleep")]
        ), (model, brawl_states)

    # --- the regression gate vs the checked-in baseline ----------------
    # the engine is deterministic, so the sleep-mode state counts are
    # exact; a count above the baseline means the reduction regressed
    with open(POR_BASELINE) as fh:
        baseline_states = json.load(fh)["engine_states_sleep"]
    for r in rows:
        for model in POR_MODELS:
            key = f"{r['name']}/{model}"
            states = r["por"][(model, "sleep")].planner.engine_states()
            assert states <= baseline_states[key], (
                key, states, baseline_states[key],
            )

    body = [
        [
            r["name"], r["pairs"],
            r["baseline"].planner.engine_states(),
            r["portfolio"].planner.engine_states(),
            r["portfolio"].planner.answered_below("engine"),
            f"{r['t_base'] * 1e3:.1f}ms", f"{r['t_port'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["workload", "conflicting pairs", "engine states (engine-only)",
         "engine states (portfolio)", "answered below exact",
         "engine-only time", "portfolio time"],
        body,
    )
    lines.append("")
    lines.append(
        f"portfolio answered {total_below} quer(ies) across "
        f"{total_pairs} conflicting pairs without the exact engine "
        f"(>= 30% required)"
    )
    lines.append("identical classifications on every workload; the ladder")
    lines.append("only ever removes exact-search states, never adds them")
    report("race_planner", lines)

    def _collapse(r, model):
        off = r["por"][(model, "off")].planner.engine_states()
        sleep = r["por"][(model, "sleep")].planner.engine_states()
        return f"{off / sleep:.1f}x" if sleep else "-"

    por_body = [
        [
            r["name"], model,
            r["por"][(model, "off")].planner.engine_states(),
            r["por"][(model, "hoist")].planner.engine_states(),
            r["por"][(model, "sleep")].planner.engine_states(),
            _collapse(r, model),
        ]
        for r in rows
        for model in POR_MODELS
    ]
    por_lines = table(
        ["workload", "model", "engine states (por=off)",
         "engine states (por=hoist)", "engine states (por=sleep)",
         "collapse"],
        por_body,
    )
    por_lines.append("")
    for model in POR_MODELS:
        por_lines.append(
            f"brawl family under {model}: "
            f"{brawl_states[(model, 'off')]} states unreduced vs "
            f"{brawl_states[(model, 'sleep')]} with sleep sets "
            f"(>= 2x collapse required)"
        )
    por_lines.append("pair-for-pair identical classifications in every")
    por_lines.append("mode, under both memory models; reduction only ever")
    por_lines.append("removes exact-search states, never adds them")
    report("race_por", por_lines)


# ----------------------------------------------------------------------
# observability overhead: tracing must watch the scan, not change it
# ----------------------------------------------------------------------
def run_traced_study(tmp_dir):
    from repro.obs import JsonlTraceSink, summarize_trace

    workloads = [
        ("figure1", figure1_execution()),
        ("masking x3", masking_family(3)),
        ("brawl x4", brawl_family(4)),
    ]
    rows = []
    for i, (name, exe) in enumerate(workloads):
        t0 = time.perf_counter()
        untraced = RaceDetector(exe).feasible_races()
        t_plain = time.perf_counter() - t0
        path = str(tmp_dir / f"trace{i}.jsonl")
        t0 = time.perf_counter()
        with JsonlTraceSink(path) as sink:
            traced = RaceDetector(exe).feasible_races(tracer=sink)
        t_traced = time.perf_counter() - t0
        rows.append(
            dict(
                name=name, path=path,
                untraced=untraced, traced=traced,
                summary=summarize_trace(path),
                t_plain=t_plain, t_traced=t_traced,
            )
        )
    return rows


def test_tracing_is_a_pure_observer(benchmark, tmp_path):
    rows = benchmark(lambda: run_traced_study(tmp_path))

    for r in rows:
        # tracing is observation only: identical classifications
        assert [
            (c.a, c.b, c.status) for c in r["traced"].classifications
        ] == [(c.a, c.b, c.status) for c in r["untraced"].classifications]
        # and the trace re-aggregates into EXACTLY the live per-tier
        # report -- the property `repro trace summarize` relies on
        assert (
            r["summary"].planner.snapshot() == r["traced"].planner.snapshot()
        )

    body = [
        [
            r["name"],
            r["traced"].conflicting_pairs_examined,
            sum(r["summary"].pairs.values()),
            r["summary"].planner.queries,
            f"{r['t_plain'] * 1e3:.1f}ms",
            f"{r['t_traced'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["workload", "conflicting pairs", "pair spans", "query spans",
         "untraced time", "traced time"],
        body,
    )
    lines.append("")
    lines.append("summarize(trace) reproduced each scan's planner table")
    lines.append("exactly; classifications are untouched by tracing")
    report("race_tracing", lines)


# ----------------------------------------------------------------------
# profiler overhead: attributing search cost must not change the search
# ----------------------------------------------------------------------
def ordered_pipeline(width: int):
    """``width`` writers of one variable chained by semaphores: every
    conflicting pair is infeasible and proving it takes an exhaustive
    (pair-local) engine search -- the profiler has real work to
    attribute, and serial/parallel scans must agree on all of it."""
    procs = [ProcessDef("w0", [Assign("x", Const(0)), SemV("s0")])]
    for k in range(1, width):
        procs.append(
            ProcessDef(
                f"w{k}",
                [SemP(f"s{k-1}"), Assign("x", Const(k)), SemV(f"s{k}")],
            )
        )
    schedule = ["w0", "w0"]
    for k in range(1, width):
        schedule += [f"w{k}"] * 3
    return run_program(
        Program(procs), FixedScheduler(schedule)
    ).to_execution()


def run_profiled_study():
    from repro.obs import SearchProfile

    workloads = [
        ("figure1", figure1_execution()),
        ("brawl x4", brawl_family(4)),
        ("pipeline x4", ordered_pipeline(4)),
        ("pipeline x5", ordered_pipeline(5)),
    ]
    rows = []
    for name, exe in workloads:
        t0 = time.perf_counter()
        plain = RaceDetector(exe).feasible_races()
        t_plain = time.perf_counter() - t0
        profile = SearchProfile()
        t0 = time.perf_counter()
        profiled = RaceDetector(exe).feasible_races(profile=profile)
        t_profiled = time.perf_counter() - t0
        par_profile = SearchProfile()
        RaceDetector(exe).feasible_races(
            runner=SupervisedScanner(jobs=2), profile=par_profile
        )
        rows.append(
            dict(
                name=name, plain=plain, profiled=profiled,
                profile=profile, par_profile=par_profile,
                t_plain=t_plain, t_profiled=t_profiled,
            )
        )
    return rows


def test_profiling_is_a_pure_observer(benchmark):
    rows = benchmark(run_profiled_study)

    for r in rows:
        # profiling is observation only: identical classifications AND
        # identical engine work, state for state
        assert [
            (c.a, c.b, c.status) for c in r["profiled"].classifications
        ] == [(c.a, c.b, c.status) for c in r["plain"].classifications]
        assert {
            t: v.states for t, v in r["profiled"].planner.tiers.items()
        } == {t: v.states for t, v in r["plain"].planner.tiers.items()}
        # a 2-worker pool scan attributes the same states to the same
        # frontier choices -- profiles merge back to the serial truth
        assert r["par_profile"].snapshot() == r["profile"].snapshot()

    body = [
        [
            r["name"],
            sum(v.states for v in r["plain"].planner.tiers.values()),
            r["profile"].total_states,
            len(r["profile"].hot_events(top=1000)),
            f"{r['t_plain'] * 1e3:.1f}ms",
            f"{r['t_profiled'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["workload", "tier states", "attributed states", "hot events",
         "unprofiled time", "profiled time"],
        body,
    )
    lines.append("")
    lines.append("profiled scans classify identically and visit the same")
    lines.append("states; 2-worker profiles equal the serial profile exactly")
    for line in rows[-1]["profile"].describe(top=3):
        lines.append(line)
    report("race_profiling", lines)
