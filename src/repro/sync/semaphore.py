"""Counting and binary semaphores.

Semantics follow the paper exactly: ``P`` completes only when the count
is positive (and then decrements it); ``V`` increments.  Effects take
place at operation *completion*, which is the only instant that matters
on a sequentially consistent machine.  The paper notes its hardness
results hold for binary semaphores too ("the above proofs do not make
use of the general counting ability"), so a clamped binary variant is
provided and exercised by ``benchmarks/bench_binary_semaphore.py``.
"""

from __future__ import annotations


class SemaphoreError(RuntimeError):
    """An illegal semaphore transition (e.g. completing P at count 0)."""


class Semaphore:
    """A counting semaphore."""

    __slots__ = ("name", "count", "initial")

    def __init__(self, name: str, initial: int = 0):
        if initial < 0:
            raise ValueError("semaphore count must be non-negative")
        self.name = name
        self.initial = initial
        self.count = initial

    def can_p(self) -> bool:
        """Whether a ``P`` operation could complete right now."""
        return self.count > 0

    def p(self) -> None:
        """Complete a ``P``: requires a positive count."""
        if self.count <= 0:
            raise SemaphoreError(f"P({self.name}) completed with count {self.count}")
        self.count -= 1

    def v(self) -> None:
        """Complete a ``V``: increments the count."""
        self.count += 1

    def reset(self) -> None:
        self.count = self.initial

    def copy(self) -> "Semaphore":
        s = type(self)(self.name, self.initial)
        s.count = self.count
        return s

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, count={self.count})"


class BinarySemaphore(Semaphore):
    """A semaphore whose count saturates at 1.

    ``V`` on an already-signalled binary semaphore is a no-op (the
    common hardware definition).  The Theorem 1 construction is valid
    under either definition because its gadgets never double-signal a
    semaphore that has not been consumed, but the distinct type lets
    the binary-semaphore benchmark state its claim precisely.
    """

    def __init__(self, name: str, initial: int = 0):
        if initial not in (0, 1):
            raise ValueError("binary semaphore initial count must be 0 or 1")
        super().__init__(name, initial)

    def v(self) -> None:
        self.count = min(1, self.count + 1)
