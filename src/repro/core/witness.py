"""Witness schedules: replayable evidence for existential answers.

Every "could-have" answer the engine gives is backed by a complete
legal point schedule.  :class:`Witness` wraps one together with its
execution and can

* derive the temporal ordering ``T`` the schedule exhibits,
* pretty-print itself for the examples and benchmark reports,
* be independently re-validated by :func:`replay_schedule`, which
  replays the points through the reference semantics in
  :mod:`repro.sync` -- a completely separate code path from the
  engine's packed transition function.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import Point
from repro.model.events import EventKind
from repro.model.execution import ProgramExecution
from repro.sync.state import SyncState
from repro.util.relations import BinaryRelation


class IllegalScheduleError(ValueError):
    """A schedule violated program order, a gate, or sync semantics."""


def replay_schedule(
    exe: ProgramExecution,
    points: Sequence[Point],
    *,
    include_dependences: bool = True,
    binary_semaphores: bool = False,
) -> SyncState:
    """Replay ``points`` through the reference semantics; raise on any
    violation.  Returns the final synchronization state."""
    state = SyncState(exe, binary_semaphores=binary_semaphores)
    begun: set = set()
    ended: set = set()
    for pos, pt in enumerate(points):
        e = exe.event(pt.eid)
        if not pt.is_end:
            if pt.eid in begun:
                raise IllegalScheduleError(f"point {pos}: event {pt.eid} begins twice")
            # program-order begin prerequisites come from the memory
            # model (adjacent predecessor under SC; TSO drops the W->R
            # pairs its store buffer may reorder)
            for pred in exe.po_begin_predecessors(pt.eid):
                if pred not in ended:
                    raise IllegalScheduleError(
                        f"point {pos}: event {pt.eid} begins before program-order "
                        f"predecessor {pred} ended"
                    )
            feid = exe.parent_fork.get(e.process)
            if feid is not None and e.index == 0 and feid not in ended:
                raise IllegalScheduleError(
                    f"point {pos}: event {pt.eid} begins before its creating fork {feid} ended"
                )
            if include_dependences:
                for d in exe.dependence_predecessors(pt.eid):
                    if d not in ended:
                        raise IllegalScheduleError(
                            f"point {pos}: event {pt.eid} begins before dependence "
                            f"predecessor {d} ended"
                        )
            begun.add(pt.eid)
        else:
            if pt.eid not in begun:
                raise IllegalScheduleError(f"point {pos}: event {pt.eid} ends before beginning")
            if pt.eid in ended:
                raise IllegalScheduleError(f"point {pos}: event {pt.eid} ends twice")
            if not state.can_complete(e):
                raise IllegalScheduleError(
                    f"point {pos}: {e!r} completes while blocked "
                    f"(semaphore empty / variable cleared / join pending)"
                )
            state.complete(e)
            ended.add(pt.eid)
    if len(ended) != len(exe):
        missing = sorted(set(exe.eids) - ended)
        raise IllegalScheduleError(f"schedule incomplete; events never completed: {missing}")
    return state


class Witness:
    """A complete legal point schedule for an execution."""

    def __init__(self, exe: ProgramExecution, points: Sequence[Point]):
        self.exe = exe
        self.points: Tuple[Point, ...] = tuple(points)
        self._pos: Dict[Point, int] = {p: i for i, p in enumerate(self.points)}

    # ------------------------------------------------------------------
    def begin_position(self, eid: int) -> int:
        return self._pos[Point(eid, False)]

    def end_position(self, eid: int) -> int:
        return self._pos[Point(eid, True)]

    def happened_before(self, a: int, b: int) -> bool:
        """``a ->T b`` in this schedule: ``a`` completes before ``b`` begins."""
        return self.end_position(a) < self.begin_position(b)

    def concurrent(self, a: int, b: int) -> bool:
        """Intervals overlap: neither completes before the other begins."""
        return not self.happened_before(a, b) and not self.happened_before(b, a)

    def serial_order(self) -> List[int]:
        """Events ordered by completion -- the collapsed serial schedule."""
        return [p.eid for p in self.points if p.is_end]

    def temporal_relation(self) -> BinaryRelation:
        """The ``T`` relation this schedule exhibits."""
        n = len(self.exe)
        pairs = [
            (a, b)
            for a in range(n)
            for b in range(n)
            if a != b and self.happened_before(a, b)
        ]
        return BinaryRelation(range(n), pairs)

    def validate(self, *, include_dependences: bool = True, binary_semaphores: bool = False) -> None:
        """Re-check the witness through the reference semantics."""
        replay_schedule(
            self.exe,
            self.points,
            include_dependences=include_dependences,
            binary_semaphores=binary_semaphores,
        )

    # ------------------------------------------------------------------
    def pretty(self, *, max_events: Optional[int] = None) -> str:
        """Human-readable schedule listing, one completed event per line.

        Events that overlap others are annotated, so a concurrency
        witness is visible at a glance.
        """
        lines = []
        order = self.serial_order()
        if max_events is not None:
            order = order[:max_events]
        for eid in order:
            e = self.exe.event(eid)
            overlaps = [
                other.eid
                for other in self.exe.events
                if other.eid != eid and self.concurrent(eid, other.eid)
            ]
            note = f"   (overlaps {overlaps})" if overlaps else ""
            lines.append(f"  {e.describe():<40}{note}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Witness({len(self.points)} points over {len(self.exe)} events)"
