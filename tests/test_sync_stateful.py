"""Stateful property tests for the synchronization state machines.

Hypothesis drives random operation sequences against simple Python
models; the invariants are the ones the engine's correctness leans on
(counts never negative, posted-state equals last-op polarity, binary
clamp, completion gating).
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.sync.eventvar import EventVariable
from repro.sync.semaphore import BinarySemaphore, Semaphore, SemaphoreError


class SemaphoreMachine(RuleBasedStateMachine):
    """A counting semaphore against an integer model."""

    def __init__(self):
        super().__init__()
        self.sem = Semaphore("s", 0)
        self.model = 0

    @rule()
    def signal(self):
        self.sem.v()
        self.model += 1

    @rule()
    def consume_when_possible(self):
        if self.model > 0:
            self.sem.p()
            self.model -= 1
        else:
            try:
                self.sem.p()
            except SemaphoreError:
                pass
            else:  # pragma: no cover - failure case
                raise AssertionError("P succeeded on an empty semaphore")

    @rule()
    def reset(self):
        self.sem.reset()
        self.model = 0

    @invariant()
    def count_matches_model(self):
        assert self.sem.count == self.model
        assert self.sem.count >= 0
        assert self.sem.can_p() == (self.model > 0)


class BinarySemaphoreMachine(RuleBasedStateMachine):
    """The clamped variant against a min(1, .) model."""

    def __init__(self):
        super().__init__()
        self.sem = BinarySemaphore("s", 0)
        self.model = 0

    @rule()
    def signal(self):
        self.sem.v()
        self.model = min(1, self.model + 1)

    @rule()
    def consume_when_possible(self):
        if self.model > 0:
            self.sem.p()
            self.model -= 1

    @invariant()
    def clamped(self):
        assert self.sem.count == self.model
        assert 0 <= self.sem.count <= 1


class EventVariableMachine(RuleBasedStateMachine):
    """Post/Wait/Clear: posted iff the last state-changing op was Post."""

    def __init__(self):
        super().__init__()
        self.var = EventVariable("v")
        self.model_posted = False

    @rule()
    def post(self):
        self.var.post()
        self.model_posted = True

    @rule()
    def clear(self):
        self.var.clear()
        self.model_posted = False

    @rule()
    def wait_when_posted(self):
        if self.model_posted:
            self.var.wait()  # non-consuming
        else:
            try:
                self.var.wait()
            except RuntimeError:
                pass
            else:  # pragma: no cover
                raise AssertionError("Wait succeeded while cleared")

    @invariant()
    def posted_matches_model(self):
        assert self.var.posted == self.model_posted
        assert self.var.can_wait() == self.model_posted


TestSemaphoreMachine = SemaphoreMachine.TestCase
TestBinarySemaphoreMachine = BinarySemaphoreMachine.TestCase
TestEventVariableMachine = EventVariableMachine.TestCase

for case in (TestSemaphoreMachine, TestBinarySemaphoreMachine, TestEventVariableMachine):
    case.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
