"""Live HTTP introspection for a running scan (``--serve PORT``).

A scan that runs for hours must answer "how far along are you, is
anything stuck, and where is the states budget going" *while it runs*.
This module serves that over plain HTTP from a daemon thread:

* ``GET /healthz`` -- **liveness**, always ``200 ok`` while the process
  serves at all (a supervisor should restart on failure to answer, not
  on the answer's content);
* ``GET /readyz``  -- **readiness**, ``200 ready`` only while the scan
  is actually able to do useful work; ``503`` while starting up and
  while draining, so a load balancer or orchestrator stops routing to
  an instance that is shutting down *before* its socket closes;
* ``GET /status``  -- one JSON document: scan fingerprint, pair counts
  by outcome, the per-tier planner table, per-worker liveness (current
  pair, results, crashes), budget remaining, observed pair rate + ETA,
  and the merged search profile when profiling is on;
* ``GET /metrics`` -- the same snapshot rendered live through the
  existing :class:`~repro.obs.metrics.MetricsRegistry` Prometheus text
  format (scrapeable in place of the ``--metrics`` file snapshots).

Concurrency model -- a lock-free single-writer slot: every mutator of
:class:`StatusBoard` runs on the scan thread, which periodically
builds a fresh *immutable* snapshot dict and publishes it with one
attribute assignment (atomic under the GIL).  Handler threads only
ever read the latest published reference and serialize it; serving
never takes a lock the classification loop could contend on, and a
torn snapshot is impossible by construction.  Unserved runs pay
nothing: with no board, every instrumentation site is a single ``is
not None`` test, matching the :data:`~repro.obs.trace.NULL_SINK`
convention.

The server owns no policy: the CLI starts it before the scan, points
it at the board the scan publishes through, and closes it on drain,
SIGINT and ``--timeout`` expiry alike (the surrounding ``finally``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry, planner_metrics
from repro.obs.profile import SearchProfile
from repro.solve.planner import PlannerReport

#: /status schema version (bumped when keys change meaning).
STATUS_VERSION = 1

#: board states in which /readyz answers 200.  "starting" (the board
#: exists but the scan has not begun) and any drain/stop state are not
#: ready; a finished scan still serving its final /status is.
READY_STATES = frozenset({"scanning", "serving", "done"})


class StatusBoard:
    """Scan-side state with a lock-free published snapshot.

    Single-writer: every mutator (``begin_scan``, ``pair_done``,
    ``observe``, ``merge_*``, ``finish``) must be called from the scan
    thread.  Readers (HTTP handlers) call only :meth:`latest`, which
    returns the last published immutable snapshot -- possibly ``None``
    before the first publish, and always a complete document after.
    """

    def __init__(self) -> None:
        self._snapshot: Optional[Dict[str, Any]] = None
        self._state = "starting"
        self._fingerprint: Optional[str] = None
        self._total = 0
        self._counts: Dict[str, int] = {}
        self._fresh_done = 0
        self._budget = None
        self._t0 = time.monotonic()
        self._workers: Dict[int, Dict[str, Any]] = {}
        self._worker_spawns = 0
        self._worker_crashes = 0
        self._checkpoint_writes = 0
        self._engine_states: Optional[int] = None
        self._last_engine_publish = 0.0
        self._merged_planner = PlannerReport()
        self._merged_profile: Optional[SearchProfile] = None
        # live read-at-publish providers (the serial scan path: the
        # planner report / profile objects mutate in place on the same
        # thread that publishes, so reading them here is race-free)
        self._planner_provider: Optional[Callable[[], Dict[str, Any]]] = None
        self._profile_provider: Optional[Callable[[], Dict[str, Any]]] = None
        self.publish()

    # -- wiring (scan thread, before/while scanning) ---------------------
    def begin_scan(
        self,
        *,
        total: int,
        fingerprint: Optional[str] = None,
        budget=None,
        planner_provider: Optional[Callable[[], Dict[str, Any]]] = None,
        profile_provider: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        """Arm the board for a scan of ``total`` conflicting pairs."""
        self._state = "scanning"
        self._total = total
        self._fingerprint = fingerprint
        self._budget = budget
        self._planner_provider = planner_provider
        self._profile_provider = profile_provider
        self._t0 = time.monotonic()
        self.publish()

    def set_state(self, state: str) -> None:
        self._state = state
        self.publish()

    # -- scan progress ---------------------------------------------------
    def pair_done(self, classification, *, fresh: bool = True) -> None:
        """Count one classified pair (``fresh=False`` for checkpoint
        replays, which should not distort the observed pair rate)."""
        status = classification.status
        self._counts[status] = self._counts.get(status, 0) + 1
        if fresh:
            self._fresh_done += 1
        self.publish()

    def note_checkpoint_write(self) -> None:
        self._checkpoint_writes += 1
        # no publish: always paired with a pair_done that publishes

    def engine_tick(self, stats) -> None:
        """Amortized engine progress (chained off ``ctx.on_progress``);
        throttled so deep searches don't spend their time publishing."""
        self._engine_states = stats.states_visited
        now = time.monotonic()
        if now - self._last_engine_publish >= 0.25:
            self._last_engine_publish = now
            self.publish()

    def observe(self, record: Dict[str, Any]) -> None:
        """Fold one worker lifecycle record (trace-shaped, from the
        supervised pool) into the per-worker table."""
        kind = record.get("kind", "")
        if not kind.startswith("worker."):
            return
        event = kind.split(".", 1)[1]
        if event == "retry":  # pair-level, carries no worker id
            self.publish()
            return
        uid = record.get("worker")
        w = self._workers.get(uid)
        if w is None:
            w = self._workers[uid] = {
                "alive": True, "state": "spawned", "pair": None,
                "results": 0, "crashes": 0,
            }
        if event == "spawn":
            self._worker_spawns += 1
        elif event == "ready":
            w["state"] = "ready"
        elif event == "dispatch":
            w["state"] = "busy"
            w["pair"] = [record.get("a"), record.get("b")]
        elif event == "result":
            w["state"] = "idle"
            w["pair"] = None
            w["results"] += 1
        elif event == "crash":
            w["alive"] = False
            w["state"] = f"crashed ({record.get('resource', 'crash')})"
            w["pair"] = None
            w["crashes"] += 1
            self._worker_crashes += 1
        elif event == "retire":
            w["alive"] = False
            if not w["state"].startswith("crashed"):
                w["state"] = "retired"
            w["pair"] = None
        self.publish()

    def merge_planner(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker's per-pair planner snapshot into the live
        per-tier table (parallel scans; serial scans use a provider)."""
        if snapshot:
            self._merged_planner.merge(snapshot)

    def merge_profile(self, snapshot: Dict[str, Any]) -> None:
        if snapshot:
            if self._merged_profile is None:
                self._merged_profile = SearchProfile()
            self._merged_profile.merge(snapshot)

    def finish(self, state: str = "done") -> None:
        self._state = state
        self.publish()

    # -- the slot --------------------------------------------------------
    def publish(self) -> None:
        """Build a fresh snapshot and swing the slot to it (one atomic
        reference assignment; readers see old-complete or new-complete,
        never a mix)."""
        self._snapshot = self._build()

    def latest(self) -> Optional[Dict[str, Any]]:
        return self._snapshot

    # -- snapshot construction (scan thread only) ------------------------
    def _build(self) -> Dict[str, Any]:
        now = time.monotonic()
        elapsed = max(0.0, now - self._t0)
        done = sum(self._counts.values())
        remaining = max(0, self._total - done)
        rate = self._fresh_done / elapsed if elapsed > 0 else None
        eta = None
        if remaining == 0:
            eta = 0.0
        elif rate:
            eta = remaining / rate
        budget_doc = None
        if self._budget is not None:
            left = self._budget.remaining_seconds()
            budget_doc = {
                "remaining_seconds": left,
                "max_states": self._budget.max_states,
            }
            if left is not None and eta is not None and left < eta:
                eta = left  # the deadline will cut the scan short
        if self._planner_provider is not None:
            planner = self._planner_provider()
        else:
            planner = self._merged_planner.snapshot()
        if self._profile_provider is not None:
            profile = self._profile_provider()
        elif self._merged_profile is not None:
            profile = self._merged_profile.snapshot()
        else:
            profile = None
        return {
            "service": "repro",
            "status_version": STATUS_VERSION,
            "state": self._state,
            "fingerprint": self._fingerprint,
            "pairs": {
                "total": self._total,
                "done": done,
                "feasible": self._counts.get("feasible", 0),
                "infeasible": self._counts.get("infeasible", 0),
                "unknown": self._counts.get("unknown", 0),
            },
            "planner": planner,
            "profile": profile,
            "workers": {
                str(uid): dict(w) for uid, w in self._workers.items()
            },
            "worker_spawns": self._worker_spawns,
            "worker_crashes": self._worker_crashes,
            "checkpoint_writes": self._checkpoint_writes,
            "engine_states": self._engine_states,
            "elapsed_seconds": elapsed,
            "rate_pairs_per_second": rate,
            "eta_seconds": eta,
            "budget": budget_doc,
            # wall timestamp for humans/log correlation ONLY; staleness
            # is computed from the monotonic stamp below, so an NTP
            # step or DST jump can never make /status age lie
            "updated_at": time.time(),
            "updated_monotonic": now,
        }


# ----------------------------------------------------------------------
def status_document(
    snapshot: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The ``/status`` reply body for a published snapshot.

    Adds a serve-time ``age_seconds`` -- how long ago the scan thread
    published the snapshot -- computed from the snapshot's *monotonic*
    stamp, and drops that stamp from the wire document (a monotonic
    reading is meaningless to any other process).  The wall-clock
    ``updated_at`` stays for human correlation, but consumers checking
    staleness must use ``age_seconds``: it is immune to clock steps.
    """
    if snapshot is None:
        return None
    doc = dict(snapshot)
    stamp = doc.pop("updated_monotonic", None)
    if stamp is not None:
        doc["age_seconds"] = max(0.0, time.monotonic() - stamp)
    return doc


def render_status_metrics(snapshot: Optional[Dict[str, Any]]) -> str:
    """Render a /status snapshot as Prometheus text (the /metrics body).

    A pure function of the snapshot, so handler threads never touch
    mutable scan state.  Shares instrument names with the ``--metrics``
    file snapshots wherever the quantity is the same.
    """
    registry = MetricsRegistry()
    registry.gauge("repro_scan_up", "1 while the scan process serves").set(1)
    if snapshot is None:
        return registry.render()
    pairs = snapshot.get("pairs") or {}
    registry.gauge(
        "repro_scan_pairs_total", "Conflicting pairs in the scan"
    ).set(pairs.get("total", 0))
    registry.gauge(
        "repro_scan_pairs_done", "Pairs classified so far"
    ).set(pairs.get("done", 0))
    for status in ("feasible", "infeasible", "unknown"):
        registry.counter(
            "repro_pairs_classified_total",
            "Conflicting pairs classified, by outcome",
            labels={"status": status},
        ).inc(pairs.get(status, 0))
    planner = snapshot.get("planner")
    if planner:
        planner_metrics(registry, PlannerReport.from_snapshot(planner))
    registry.gauge(
        "repro_scan_elapsed_seconds", "Wall-clock duration of the scan"
    ).set(snapshot.get("elapsed_seconds") or 0.0)
    rate = snapshot.get("rate_pairs_per_second")
    if rate is not None:
        registry.gauge(
            "repro_scan_pairs_per_second", "Observed classification rate"
        ).set(rate)
    eta = snapshot.get("eta_seconds")
    if eta is not None:
        registry.gauge(
            "repro_scan_eta_seconds", "Projected seconds to drain the scan"
        ).set(eta)
    registry.counter(
        "repro_worker_spawns_total", "Supervised workers started"
    ).inc(snapshot.get("worker_spawns", 0))
    registry.counter(
        "repro_worker_crashes_total", "Supervised workers that died"
    ).inc(snapshot.get("worker_crashes", 0))
    registry.counter(
        "repro_checkpoint_writes_total", "Pair records journaled durably"
    ).inc(snapshot.get("checkpoint_writes", 0))
    profile = snapshot.get("profile")
    if profile:
        prof = SearchProfile.from_snapshot(profile)
        registry.counter(
            "repro_profile_states_total",
            "Engine states attributed by the search profiler",
        ).inc(prof.total_states)
    return registry.render()


# ----------------------------------------------------------------------
class QuietHandler(BaseHTTPRequestHandler):
    """Shared handler plumbing for the observability endpoints (and the
    ``repro serve`` daemon): sized replies that tolerate impatient
    clients, optional extra headers (``Retry-After``), silent access
    logging."""

    server_version = "repro-obs"

    def _reply(
        self,
        code: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        data = body.encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # impatient client; the scan/daemon must not care

    def _reply_json(
        self,
        code: int,
        doc: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        self._reply(code, body, "application/json", headers)

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # requests are routine; stderr belongs to the progress line


class _Handler(QuietHandler):
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            # liveness only: the process is up and serving.  Readiness
            # lives at /readyz -- conflating them makes an orchestrator
            # kill an instance that is merely draining.
            self._reply(200, "ok\n")
        elif path == "/readyz":
            if self.server.ready_fn():
                self._reply(200, "ready\n")
            else:
                self._reply(503, "not ready (starting or draining)\n")
        elif path == "/status":
            self._reply_json(200, status_document(self.server.board.latest()))
        elif path == "/metrics":
            body = render_status_metrics(self.server.board.latest())
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._reply(
                404, "not found (try /status, /metrics, /healthz, /readyz)\n"
            )


def _board_ready(board: StatusBoard) -> bool:
    """Default readiness: the board's current state is a serving one."""
    snapshot = board.latest()
    return snapshot is not None and snapshot.get("state") in READY_STATES


class _Server(ThreadingHTTPServer):
    daemon_threads = True  # handler threads never block interpreter exit
    board: StatusBoard
    ready_fn: Callable[[], bool]


class ObsServer:
    """The ``--serve`` endpoint: a daemon-threaded stdlib HTTP server.

    Binds eagerly -- construction raises :class:`OSError` immediately
    when the port is taken, so the CLI can fail loudly *before* the
    scan starts.  ``port=0`` binds an ephemeral port (tests); the bound
    port is in :attr:`port`.  :meth:`close` is idempotent and safe from
    ``finally`` blocks: it stops the accept loop, closes the socket and
    joins the thread.
    """

    def __init__(
        self,
        board: StatusBoard,
        port: int,
        *,
        host: str = "127.0.0.1",
        ready: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.board = board
        self._httpd = _Server((host, port), _Handler)
        self._httpd.board = board
        # /readyz policy: the caller's callable when given (the daemon
        # knows its own lifecycle), else the board's state
        self._httpd.ready_fn = (
            ready if ready is not None else (lambda: _board_ready(board))
        )
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def url(self, path: str = "/status") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


__all__ = [
    "STATUS_VERSION",
    "READY_STATES",
    "StatusBoard",
    "ObsServer",
    "QuietHandler",
    "render_status_metrics",
    "status_document",
]
