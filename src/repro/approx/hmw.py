"""The Helmbold/McDowell/Wang safe-ordering algorithm (semaphore traces).

Section 4 of the paper summarizes the HMW algorithm [5] for computing
*some* of the must-have orderings of a counting-semaphore trace, in
three phases:

1. order the ``i``-th ``V`` before the ``i``-th ``P`` of each semaphore
   in trace order and close with program order -- **unsafe**, because
   another feasible execution may pair the operations differently;
2. replace the accidental pairing with orderings that hold no matter
   how operations pair up -- **safe but overly conservative**;
3. sharpen phase 2 by considering that "only some P events can actually
   execute after certain V events".

The original HMW paper (ICPP 1990) predates easy availability; this
module implements the three phases with the counting argument that
their correctness rests on, documented here precisely:

    For a P event ``p`` on semaphore ``s`` with initial count ``c``,
    let ``K(p)`` be 1 plus the number of P events on ``s`` already
    known to complete before ``p``.  Any execution must complete at
    least ``K(p) - c`` distinct ``V(s)`` events strictly before ``p``.
    Let ``Cand(p)`` be the ``V(s)`` events not already known to
    complete after ``p``.  If ``|Cand(p)|`` equals the requirement
    exactly, every member of ``Cand(p)`` must complete before ``p``.

Phase 2 applies the rule once over the structural (program-order +
fork/join) closure; phase 3 iterates it to a fixpoint, since each new
edge can raise ``K`` or shrink ``Cand`` elsewhere.  Both phases are
*safe*: every edge is an ordering of event completions guaranteed in
all feasible executions (``tests/test_approx_hmw.py`` property-tests
``phase3() issubset exact-must-complete-before``).  They are
incomplete -- orderings enforced only by deadlock avoidance or by
shared-data dependences are invisible to the counting rule, which is
exactly the gap Theorem 1 proves cannot be closed in polynomial time.

All relations returned are over event *completions* (HMW analyse
serial traces), i.e. comparable to
:meth:`repro.core.queries.OrderingQueries.mcb`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.events import EventKind
from repro.model.execution import ProgramExecution, SyncStyle
from repro.util.relations import BinaryRelation


class InfeasibleTraceError(ValueError):
    """The counting rule proved the event set cannot complete."""


class HMWAnalysis:
    """Three-phase safe-ordering computation for a semaphore execution."""

    def __init__(self, exe: ProgramExecution, schedule: Optional[Sequence[int]] = None):
        if exe.sync_style not in (SyncStyle.SEMAPHORE, SyncStyle.NONE):
            raise ValueError(
                "HMW analyses counting-semaphore traces; execution uses "
                f"{exe.sync_style.value} synchronization"
            )
        self.exe = exe
        self._schedule = tuple(schedule) if schedule is not None else exe.observed_schedule
        self._n = len(exe)
        self._structural = self._structural_edges()

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _structural_edges(self) -> List[Tuple[int, int]]:
        exe = self.exe
        edges: List[Tuple[int, int]] = []
        for eids in exe.processes.values():
            for u, v in zip(eids, eids[1:]):
                edges.append((u, v))
        for feid, children in exe.fork_children.items():
            for c in children:
                evs = exe.process_events(c)
                if evs:
                    edges.append((feid, evs[0]))
        for jeid, targets in exe.join_targets.items():
            for t in targets:
                evs = exe.process_events(t)
                if evs:
                    edges.append((evs[-1], jeid))
        return edges

    def _closure(self, edges: Sequence[Tuple[int, int]]) -> Set[Tuple[int, int]]:
        succ: Dict[int, Set[int]] = {i: set() for i in range(self._n)}
        for u, v in edges:
            succ[u].add(v)
        closed: Set[Tuple[int, int]] = set()
        for a in range(self._n):
            seen: Set[int] = set()
            stack = list(succ[a])
            while stack:
                x = stack.pop()
                if x in seen:
                    continue
                seen.add(x)
                stack.extend(succ[x])
            closed.update((a, b) for b in seen)
        return closed

    def _as_relation(self, pairs: Set[Tuple[int, int]]) -> BinaryRelation:
        return BinaryRelation(range(self._n), pairs)

    # ------------------------------------------------------------------
    # phase 1: trace-order pairing (unsafe)
    # ------------------------------------------------------------------
    def phase1(self) -> BinaryRelation:
        """The naive pairing relation: i-th V before i-th P, per trace.

        Correct for the observed execution, *unsafe* as a must-ordering
        claim: the benchmark exhibits traces where phase 1 asserts an
        ordering the exact engine refutes.
        """
        if self._schedule is None:
            raise ValueError("phase 1 needs an observed schedule (it pairs by trace order)")
        exe = self.exe
        edges = list(self._structural)
        v_seen: Dict[str, List[int]] = {s: [] for s in exe.semaphores}
        p_count: Dict[str, int] = {s: 0 for s in exe.semaphores}
        for eid in self._schedule:
            e = exe.event(eid)
            if e.kind is EventKind.SEM_V:
                v_seen[e.obj].append(eid)
            elif e.kind is EventKind.SEM_P:
                i = p_count[e.obj]
                p_count[e.obj] += 1
                k = i - exe.sem_initial(e.obj)
                if 0 <= k < len(v_seen[e.obj]):
                    edges.append((v_seen[e.obj][k], eid))
        return self._as_relation(self._closure(edges))

    # ------------------------------------------------------------------
    # the counting rule
    # ------------------------------------------------------------------
    def _apply_counting_rule(
        self, known: Set[Tuple[int, int]]
    ) -> Tuple[Set[Tuple[int, int]], bool]:
        """One sweep of the safe counting rule over every P event.

        Returns the (transitively closed) enriched relation and whether
        anything new was added.
        """
        exe = self.exe
        new_edges: List[Tuple[int, int]] = []
        for s in exe.semaphores:
            ops = exe.sem_events(s)
            p_events = [e for e in ops if exe.event(e).kind is EventKind.SEM_P]
            v_events = [e for e in ops if exe.event(e).kind is EventKind.SEM_V]
            c = exe.sem_initial(s)
            for p in p_events:
                k = 1 + sum(1 for q in p_events if q != p and (q, p) in known)
                needed = k - c
                if needed <= 0:
                    continue
                cand = [v for v in v_events if (p, v) not in known]
                if len(cand) < needed:
                    raise InfeasibleTraceError(
                        f"P event {p} on {s!r} needs {needed} V completions "
                        f"but only {len(cand)} can precede it"
                    )
                if len(cand) == needed:
                    for v in cand:
                        if (v, p) not in known:
                            new_edges.append((v, p))
        if not new_edges:
            return known, False
        enriched = self._closure(list(known) + new_edges)
        return enriched, True

    # ------------------------------------------------------------------
    def phase2(self) -> BinaryRelation:
        """Safe but conservative: one application of the counting rule
        over the structural closure."""
        base = self._closure(self._structural)
        enriched, _ = self._apply_counting_rule(base)
        return self._as_relation(enriched)

    def phase3(self) -> BinaryRelation:
        """Sharpened: iterate the counting rule to a fixpoint."""
        rel = self._closure(self._structural)
        changed = True
        while changed:
            rel, changed = self._apply_counting_rule(rel)
        return self._as_relation(rel)

    # ------------------------------------------------------------------
    def safe_orderings(self) -> BinaryRelation:
        """The algorithm's final output (phase 3)."""
        return self.phase3()
