"""Deterministic fault injection: one registry of named failpoints.

Every robustness claim in this codebase -- "a full disk degrades the
daemon instead of corrupting the store", "a torn rename leaves the old
snapshot", "a segfaulting worker costs one retry" -- is only as good as
the test that *creates* the failure.  Before this module each subsystem
invented its own way to misbehave (the pool's per-pair ``--fault-spec``
JSON, tests monkeypatching ``atomic_write_text``); this module replaces
them with one seeded, schedule-driven registry that any layer can
consult at a **named failpoint**::

    from repro import faults
    ...
    faults.fire("fileio.fsync")      # no-op unless a schedule arms it

Armed via the ``REPRO_FAILPOINTS`` environment variable (inherited by
spawned worker processes, so one schedule drives the whole process
tree) or programmatically (:func:`arm`), a schedule is a ``;``-separated
list of clauses::

    REPRO_FAILPOINTS='store.flush=enospc@first=2;fileio.replace=eio@nth=3'

Each clause is ``<point>=<action>[@<trigger>]``:

``action``
    ``enospc``            raise ``OSError(ENOSPC)`` (disk full)
    ``eio``               raise ``OSError(EIO)`` (I/O error)
    ``oserror:NAME``      raise ``OSError`` with ``errno.NAME``
    ``error[:msg]``       raise :class:`InjectedFault` (a ``RuntimeError``)
    ``sleep:SECONDS``     block (alias ``hang[:SECONDS]``, default 3600)
    ``segv``              die by ``SIGSEGV`` (crash the process)
    ``exit[:CODE]``       hard ``os._exit`` (default 1) -- a SIGKILL stand-in
    ``oom``               allocate until ``MemoryError`` (see below)
    ``off``               never fire (explicitly disable a point)

``trigger`` (omitted = every hit)
    ``nth=K``             fire exactly on the K-th hit (1-based)
    ``first=K``           fire on hits 1..K, then stop
    ``every=K``           fire on every K-th hit
    ``after=T``           fire on hits more than T seconds after arming
    ``prob=P``            fire with probability P -- *deterministic*:
                          decided by ``sha256(seed, point, hit#)``, so
                          the same seed replays the same schedule

A ``seed=N`` clause seeds the ``prob`` triggers (default 0).  The
``oom`` action allocates for real only under an ``RLIMIT_AS`` cap and
simulates the ``MemoryError`` otherwise, so an uncapped test process
never endangers its host.

Determinism is the point: a chaos schedule names *which* operation
fails, *when* (by hit count, not wall-clock races), and replays
identically -- so the chaos matrix in the tests can assert the
soundness invariant (a faulted run answers like the fault-free run or
an explicit UNKNOWN, never differently) instead of shrugging at flaky
nondeterminism.

Cost when idle: :func:`fire` is one global load, one attribute load and
one falsy check -- no locks, no string parsing, nothing allocated.
Production binaries run with the registry empty; arming it is always an
explicit act (env var or hidden CLI flag).
"""

from __future__ import annotations

import errno as errno_mod
import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class FaultSpecError(ValueError):
    """The ``REPRO_FAILPOINTS`` schedule string is malformed."""


class InjectedFault(RuntimeError):
    """The generic injected failure (the ``error`` action)."""


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
_TRIGGERS = ("nth", "first", "every", "after", "prob")
_ACTIONS = (
    "enospc", "eio", "oserror", "error", "sleep", "hang", "segv",
    "exit", "oom", "off",
)


@dataclass
class Rule:
    """One armed failpoint: what to do and when to do it."""

    point: str
    action: str
    param: Optional[str] = None
    trigger: Optional[str] = None  # one of _TRIGGERS, or None = always
    trigger_arg: float = 0.0
    hits: int = 0
    fired: int = 0

    def should_fire(
        self, count: int, *, seed: int, armed_at: float
    ) -> bool:
        if self.action == "off":
            return False
        if self.trigger is None:
            return True
        if self.trigger == "nth":
            return count == int(self.trigger_arg)
        if self.trigger == "first":
            return count <= int(self.trigger_arg)
        if self.trigger == "every":
            k = max(1, int(self.trigger_arg))
            return count % k == 0
        if self.trigger == "after":
            return time.monotonic() - armed_at >= self.trigger_arg
        # "prob": a deterministic coin derived from (seed, point, hit);
        # sha256, not hash() -- the builtin is salted per process and
        # would make the schedule differ between a run and its replay
        blob = f"{seed}:{self.point}:{count}".encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        coin = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return coin < self.trigger_arg


def _parse_rule(point: str, spec: str) -> Rule:
    action_part, sep, trigger_part = spec.partition("@")
    action, _, param = action_part.partition(":")
    action = action.strip().lower()
    if action not in _ACTIONS:
        raise FaultSpecError(
            f"failpoint {point!r}: unknown action {action!r} "
            f"(one of {', '.join(_ACTIONS)})"
        )
    rule = Rule(point=point, action=action, param=param or None)
    if sep:
        trig, _, arg = trigger_part.partition("=")
        trig = trig.strip().lower()
        if trig not in _TRIGGERS or not arg:
            raise FaultSpecError(
                f"failpoint {point!r}: bad trigger {trigger_part!r} "
                f"(use {', '.join(t + '=N' for t in _TRIGGERS)})"
            )
        try:
            rule.trigger_arg = float(arg)
        except ValueError:
            raise FaultSpecError(
                f"failpoint {point!r}: trigger argument {arg!r} "
                "is not a number"
            )
        rule.trigger = trig
    return rule


def _perform(rule: Rule) -> None:
    """Execute an armed rule's action (the injected failure itself)."""
    action = rule.action
    if action == "enospc":
        raise OSError(
            errno_mod.ENOSPC,
            f"injected: no space left on device [failpoint {rule.point}]",
        )
    if action == "eio":
        raise OSError(
            errno_mod.EIO,
            f"injected: input/output error [failpoint {rule.point}]",
        )
    if action == "oserror":
        num = getattr(errno_mod, (rule.param or "EIO").upper(), None)
        if not isinstance(num, int):
            raise FaultSpecError(
                f"failpoint {rule.point}: unknown errno {rule.param!r}"
            )
        raise OSError(
            num, f"injected: {os.strerror(num)} [failpoint {rule.point}]"
        )
    if action == "error":
        raise InjectedFault(
            rule.param or f"injected fault [failpoint {rule.point}]"
        )
    if action in ("sleep", "hang"):
        time.sleep(float(rule.param) if rule.param else 3600.0)
        return
    if action == "segv":
        os.kill(os.getpid(), signal.SIGSEGV)
        return  # pragma: no cover - the signal lands first
    if action == "exit":
        os._exit(int(rule.param) if rule.param else 1)
    if action == "oom":
        _allocate_past_limit()
    # "off" never reaches here (filtered in should_fire)


def _allocate_past_limit() -> None:
    """The ``oom`` action: drive the heap into the kernel cap.

    Allocates for real only when an ``RLIMIT_AS`` cap is actually set
    (a worker under :mod:`repro.supervise.rlimits`); without one a
    genuine allocation spree would endanger the host, so the exact
    ``MemoryError`` the cap would produce is raised instead.
    """
    try:
        import resource

        soft, _ = resource.getrlimit(resource.RLIMIT_AS)
        rlimited = soft != resource.RLIM_INFINITY
    except (ImportError, OSError, ValueError):  # pragma: no cover
        rlimited = False
    if not rlimited:
        raise MemoryError("injected allocation failure (no rlimit active)")
    hoard = []
    try:
        for _ in range(1 << 16):
            hoard.append(bytearray(8 * 1024 * 1024))
    except MemoryError:
        # free the hoard *before* re-raising: the original exception's
        # traceback pins this frame, and the caller needs headroom to
        # report the failure
        hoard.clear()
        raise MemoryError("rlimit allocation cap hit") from None
    raise MemoryError("allocation cap never hit")  # pragma: no cover


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class FailpointRegistry:
    """Named failpoints with per-point hit counting.

    One module-global instance (:data:`REGISTRY`) serves the whole
    process; private instances serve scoped uses (the worker pool
    compiles its per-pair fault spec into one).
    """

    def __init__(self, spec: Optional[str] = None, *, seed: int = 0) -> None:
        self._lock = threading.Lock()
        self._rules: Dict[str, Rule] = {}
        self.seed = seed
        self.armed_at = 0.0
        if spec:
            self.arm(spec)

    # -- arming --------------------------------------------------------
    def arm(self, spec: str) -> "FailpointRegistry":
        """Parse ``spec`` and activate its clauses (replacing any armed
        schedule).  Raises :class:`FaultSpecError` on a malformed spec
        -- a chaos schedule that silently does nothing is worse than a
        loud refusal."""
        rules: Dict[str, Rule] = {}
        seed = self.seed
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            point, sep, rule_spec = clause.partition("=")
            point = point.strip()
            if not sep or not point or not rule_spec.strip():
                raise FaultSpecError(
                    f"bad failpoint clause {clause!r} "
                    "(use point=action[@trigger])"
                )
            if point == "seed":
                try:
                    seed = int(rule_spec)
                except ValueError:
                    raise FaultSpecError(f"bad seed {rule_spec!r}")
                continue
            rules[point] = _parse_rule(point, rule_spec.strip())
        with self._lock:
            self.seed = seed
            self._rules = rules
            self.armed_at = time.monotonic()
        return self

    def disarm(self) -> None:
        with self._lock:
            self._rules = {}

    @property
    def armed(self) -> bool:
        return bool(self._rules)

    # -- the hot path --------------------------------------------------
    def hit(self, point: str, count: Optional[int] = None) -> None:
        """Evaluate the failpoint ``point``.

        ``count`` overrides the internal hit counter -- callers whose
        notion of "the N-th time" survives process replacement (the
        worker pool's per-pair *attempt* number) pass it explicitly, so
        a fresh worker's counters don't reset the schedule.
        """
        rules = self._rules
        if not rules:
            return
        rule = rules.get(point)
        if rule is None:
            return
        with self._lock:
            rule.hits += 1
            n = rule.hits if count is None else count
            fire_now = rule.should_fire(
                n, seed=self.seed, armed_at=self.armed_at
            )
            if fire_now:
                rule.fired += 1
        if fire_now:
            _perform(rule)

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "armed": bool(self._rules),
                "seed": self.seed,
                "points": {
                    name: {"hits": r.hits, "fired": r.fired}
                    for name, r in sorted(self._rules.items())
                },
            }


#: the process-wide registry; armed from ``REPRO_FAILPOINTS`` at import
#: so spawned workers (which re-import this module with the inherited
#: environment) join the schedule automatically
REGISTRY = FailpointRegistry()
_env_spec = os.environ.get("REPRO_FAILPOINTS")
if _env_spec:
    REGISTRY.arm(_env_spec)
del _env_spec


def fire(point: str, count: Optional[int] = None) -> None:
    """Hit the process-wide failpoint ``point`` (no-op when disarmed)."""
    if not REGISTRY._rules:
        return
    REGISTRY.hit(point, count)


def arm(spec: str) -> FailpointRegistry:
    """Arm the process-wide registry with ``spec`` (and export it to
    ``REPRO_FAILPOINTS`` so spawned workers inherit the schedule)."""
    os.environ["REPRO_FAILPOINTS"] = spec
    return REGISTRY.arm(spec)


def disarm() -> None:
    """Disarm the process-wide registry and clear the environment."""
    os.environ.pop("REPRO_FAILPOINTS", None)
    REGISTRY.disarm()


__all__ = [
    "FailpointRegistry",
    "FaultSpecError",
    "InjectedFault",
    "REGISTRY",
    "Rule",
    "arm",
    "disarm",
    "fire",
]
