"""Tests for apparent vs feasible race detection."""

from repro.lang.ast import Assign, Const, Fork, Join, Post, ProcessDef, Program, SemP, SemV, Shared, Wait
from repro.lang.interpreter import run_program
from repro.lang.scheduler import FixedScheduler, PriorityScheduler
from repro.races.detector import RaceDetector
from repro.workloads.programs import figure1_execution


def sync_free_conflict():
    """Two unsynchronized writers of x: an undeniable race."""
    prog = Program(
        [ProcessDef("w1", [Assign("x", Const(1))]), ProcessDef("w2", [Assign("x", Const(2))])]
    )
    return run_program(prog, FixedScheduler(["w1", "w2"])).to_execution()


def properly_locked_conflict():
    """Two writers under a binary semaphore... but the *handoff* kind:
    w2 can only write after w1's release, so the accesses are ordered
    in every feasible execution."""
    prog = Program(
        [
            ProcessDef("w1", [Assign("x", Const(1)), SemV("lock")]),
            ProcessDef("w2", [SemP("lock"), Assign("x", Const(2))]),
        ]
    )
    return run_program(prog, FixedScheduler(["w1", "w1", "w2", "w2"])).to_execution()


def mutex_conflict():
    """Mutual exclusion (semaphore starts at 1): the writes cannot
    overlap, but can occur in either order."""
    prog = Program(
        [
            ProcessDef("w1", [SemP("m"), Assign("x", Const(1)), SemV("m")]),
            ProcessDef("w2", [SemP("m"), Assign("x", Const(2)), SemV("m")]),
        ],
        sem_initial={"m": 1},
    )
    return run_program(prog, PriorityScheduler(["w1", "w2"])).to_execution()


class TestApparentRaces:
    def test_unsynchronized_writes_race(self):
        report = RaceDetector(sync_free_conflict()).apparent_races()
        assert len(report.races) == 1
        assert report.races[0].variables == {"x"}

    def test_handoff_hides_race(self):
        report = RaceDetector(properly_locked_conflict()).apparent_races()
        assert report.races == []

    def test_mutex_not_apparent_race(self):
        """The observed pairing (V of w1 -> P of w2) orders the writes,
        so vector clocks see no race -- even though the lock does not
        fix the order.  (It is genuinely not a *concurrency* race.)"""
        report = RaceDetector(mutex_conflict()).apparent_races()
        assert report.races == []

    def test_report_formatting(self):
        report = RaceDetector(sync_free_conflict()).apparent_races()
        assert "apparent" in report.summary()
        assert "x" in report.pretty()


class TestFeasibleRaces:
    def test_unsynchronized_writes_feasible_race_with_witness(self):
        report = RaceDetector(sync_free_conflict()).feasible_races()
        assert len(report.races) == 1
        w = report.races[0].witness
        assert w is not None
        assert w.concurrent(report.races[0].a, report.races[0].b)
        w.validate()

    def test_handoff_is_not_feasible_race(self):
        """The V/P handoff orders the writes in every feasible
        execution even with the tested pair's dependence dropped."""
        report = RaceDetector(properly_locked_conflict()).feasible_races()
        assert report.races == []

    def test_mutex_is_not_feasible_race(self):
        report = RaceDetector(mutex_conflict()).feasible_races()
        assert report.races == []

    def test_figure1_feasible_race_found(self):
        """Dropping the tested pair's own dependence exposes the
        write/read race that the F3-frozen view would hide."""
        exe = figure1_execution()
        detector = RaceDetector(exe)
        feasible = detector.feasible_races()
        assert len(feasible.races) == 1
        strict = detector.feasible_races(drop_racing_dependences=False)
        assert strict.races == []

    def test_pairs_listing(self):
        report = RaceDetector(sync_free_conflict()).feasible_races()
        assert len(report.pairs()) == 1


class TestApparentVsFeasibleGap:
    def test_apparent_misses_feasible_race(self):
        """The observed execution's accidental pairing masks a race
        another feasible execution exhibits: P(s) paired with the first
        V in this run, but the second V could have served it."""
        prog = Program(
            [
                ProcessDef("w1", [Assign("x", Const(1)), SemV("s")]),
                ProcessDef("w2", [SemV("s"), Assign("y", Const(0))]),
                ProcessDef("r", [SemP("s"), Assign("z", Shared("x"))]),
            ]
        )
        trace = run_program(
            prog, FixedScheduler(["w1", "w1", "r", "w2", "w2", "r", "r"])
        )
        exe = trace.to_execution()
        detector = RaceDetector(exe)
        apparent = {frozenset(p) for p in detector.apparent_races().pairs()}
        feasible = {frozenset(p) for p in detector.feasible_races().pairs()}
        # the write of x and its read are apparent-ordered via the
        # accidental V/P pairing, but feasibly racy
        assert feasible - apparent, (apparent, feasible)
        w = exe.process_events("w1")[0]
        r = exe.process_events("r")[1]
        assert frozenset((w, r)) in feasible
