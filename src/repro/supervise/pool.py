"""Crash-isolated parallel pair classification (a :data:`PairRunner`).

Why a hand-rolled pool instead of ``concurrent.futures``: a worker
killed by the OS (segfault, OOM kill, CPU rlimit) permanently breaks a
``ProcessPoolExecutor`` -- every pending future dies with
``BrokenProcessPool``.  Here a dead worker is an *expected* event, not
an error: the parent knows exactly which pair each worker holds (one
in-flight task per worker, over a private queue), so when a worker dies
the pair is retried under the :class:`~repro.supervise.retry.RetryPolicy`
(backoff + optional budget escalation) or finalized ``unknown`` with
the resource that killed it (``"crash"``, ``"memory"``, ``"cpu"``,
``"deadline"``), a replacement worker is spawned, and the scan keeps
draining.

Workers are started with the **spawn** context (a fresh interpreter: no
inherited locks, deterministic across platforms), ignore ``SIGINT``
(the parent owns shutdown), install their ``setrlimit`` caps before
touching the execution, and receive the execution as its JSON document
-- the same bytes a checkpoint fingerprint covers.

A ``KeyboardInterrupt`` in the parent drains already-completed results
for a grace period, terminates the workers, and returns the classified
prefix with ``interrupted=True``; the caller (the detector / CLI) turns
that into a partial report and exit status 130.  A *second* interrupt
during that drain means "now": the drain stops, workers are terminated,
and the interrupt propagates -- no more results are folded in and no
further checkpoint records are written, so the journal tail stays
whole (appends themselves are SIGINT-deferred, see
:mod:`repro.supervise.checkpoint`).
"""

from __future__ import annotations

import gc
import itertools
import multiprocessing as mp
import queue as queue_mod
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults as faults_mod
from repro.budget import Budget, DEADLINE
from repro.model import serialize
from repro.obs.profile import SearchProfile
from repro.obs.trace import NULL_SINK, RecordingSink
from repro.races.detector import (
    PairClassification,
    PairScanOptions,
    PairTask,
    UNKNOWN,
    classify_pair,
)
from repro.solve.context import SolveContext
from repro.solve.planner import PlannerReport, QueryPlanner, tier_of
from repro.supervise.retry import RetryPolicy
from repro.supervise.rlimits import CPU, MEMORY, ResourceLimits, apply_limits

CRASH = "crash"

# ----------------------------------------------------------------------
# fault injection (test-only)
#
# ``faults`` maps "a,b" to {"action": ..., "attempts": k} and makes the
# worker misbehave *before* classifying that pair, on attempts < k
# (k omitted = every attempt).  Actions: "segv", "exit" (with "code"),
# "hang" (with "seconds"), "oom".  The spec is compiled onto a private
# :class:`repro.faults.FailpointRegistry` -- one clause
# ``pool.pair.<a>,<b>=<action>@first=<k>`` per pair -- so the pool's
# chaos shares the grammar, actions and determinism of every other
# failpoint in the tree.  The *attempt* number (which survives worker
# replacement) drives the trigger, not the fresh worker's hit counter.
#
# Independent of the per-pair spec, every task dispatch also hits the
# process-wide ``pool.task`` failpoint, so a ``REPRO_FAILPOINTS``
# schedule (inherited through the spawn environment) can crash or stall
# workers without naming pairs.
# ----------------------------------------------------------------------


def _pair_clause(key: str, rule: Dict[str, Any]) -> str:
    """One pair's legacy spec entry as a registry clause string."""
    action = str(rule.get("action"))
    if action == "exit":
        action = f"exit:{int(rule.get('code', 1))}"
    elif action == "hang":
        action = f"hang:{float(rule.get('seconds', 3600.0))}"
    clause = f"pool.pair.{key}={action}"
    attempts = rule.get("attempts")
    if attempts is not None:
        clause += f"@first={int(attempts)}"
    return clause


class _PairFaults:
    """The legacy per-pair fault spec, compiled lazily onto private
    :class:`repro.faults.FailpointRegistry` instances.

    Lazy on purpose: a malformed clause (spec typo) must surface when
    *its* pair is classified -- inside the worker's per-task exception
    isolation, where it finalizes that one pair UNKNOWN -- not break
    the whole worker at startup.
    """

    def __init__(self, spec: Optional[Dict[str, Dict[str, Any]]]) -> None:
        self._spec = dict(spec or {})
        self._compiled: Dict[str, faults_mod.FailpointRegistry] = {}

    def hit(self, a: int, b: int, attempt: int) -> None:
        key = f"{a},{b}"
        rule = self._spec.get(key)
        if not rule:
            return
        registry = self._compiled.get(key)
        if registry is None:
            registry = faults_mod.FailpointRegistry(_pair_clause(key, rule))
            self._compiled[key] = registry
        # count = attempt + 1: the parent's per-pair attempt number
        # survives worker replacement, a fresh worker's counters do not
        registry.hit(f"pool.pair.{key}", count=attempt + 1)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, task_q, result_q, exe_doc, conf) -> None:
    """Worker loop: one pair per message, results by value, no shared
    state.  Runs in a spawned interpreter; must stay importable."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns shutdown
    limits = conf.get("rlimits")
    apply_limits(ResourceLimits(**limits) if limits is not None else None)
    exe = serialize.execution_from_dict(exe_doc)
    drop = bool(conf.get("drop_racing_dependences", True))
    pair_faults = _PairFaults(conf.get("faults"))
    # one planner for the worker's whole task stream: the structural
    # bitsets and conflict index amortize across pairs, and witnesses
    # found for one pair answer later ones without a search
    planner = QueryPlanner(SolveContext(exe, por=conf.get("por", "sleep")))
    # when the parent traces, record spans into a bounded buffer and
    # ship them with each result; bounded because the whole batch rides
    # one queue message (drops are accounted, never blocked on)
    sink: Optional[RecordingSink] = None
    if conf.get("trace"):
        sink = RecordingSink(capacity=int(conf.get("trace_capacity", 4096)))
        planner.attach_tracer(sink)
    # when the parent profiles, attribute this worker's search states to
    # branch choice points; the per-pair snapshot rides each result so a
    # crashed worker loses a pair's profile together with its answer
    profile: Optional[SearchProfile] = None
    if conf.get("profile"):
        profile = SearchProfile()
        planner.attach_profiler(profile)
    # start the result queue's feeder thread NOW: its stack mmap counts
    # against RLIMIT_AS, so it must exist before any memory pressure or
    # an OOM could not even be reported
    result_q.put((worker_id, None, "ready", None))
    while True:
        msg = task_q.get()
        if msg is None:
            return
        task_id, a, b, attempt, max_states, timeout = msg
        try:
            faults_mod.fire("pool.task")
            pair_faults.hit(a, b, attempt)
            budget = None
            if max_states is not None or timeout is not None:
                budget = Budget.of(max_states=max_states, timeout=timeout)
            planner.report = PlannerReport()  # per-pair tier tallies
            if sink is not None:
                sink.drain()  # discard spans of a failed prior attempt
            if profile is not None:
                profile.reset()  # per-pair attribution
            c = classify_pair(
                exe, a, b, drop_racing_dependences=drop, budget=budget,
                planner=planner,
            )
            payload = {
                "classification": serialize.classification_to_dict(c),
                "planner": planner.report.snapshot(),
            }
            if profile is not None:
                payload["profile"] = profile.snapshot()
            if sink is not None:
                # spans travel with the snapshot they mirror: a crashed
                # worker loses both together, so the trace aggregation
                # always matches the merged report
                payload["spans"] = sink.drain()
            result_q.put((worker_id, task_id, "ok", payload))
        except MemoryError:
            # the cap fired.  Drop whatever the search pinned (the
            # handler deliberately does not bind the exception, whose
            # traceback would keep those frames alive), report, then
            # retire: this heap was driven to the limit and is not
            # worth trusting.  Returning (not _exit) lets the queue
            # feeder flush the report.
            gc.collect()
            result_q.put((worker_id, task_id, "memory", None))
            return
        except Exception as exc:  # unexpected bug: isolate, don't die
            result_q.put((worker_id, task_id, "error", repr(exc)))


def _death_resource(exitcode: Optional[int]) -> str:
    """Map a dead worker's exitcode to the classification resource."""
    if exitcode is not None and exitcode < 0 and -exitcode == signal.SIGXCPU:
        return CPU
    return CRASH


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _TaskState:
    a: int
    b: int
    variables: Any
    attempt: int = 0
    failures: int = 0
    not_before: float = 0.0


@dataclass
class _Worker:
    uid: int  # unique across the scan -- slots are reused, uids are not
    proc: Any
    task_q: Any
    busy_task: Optional[int] = None
    ready: bool = False  # sent its warm-up message (interpreter booted)
    kill_at: Optional[float] = None
    kill_after: Optional[float] = None  # wall budget armed once ready
    died_at: Optional[float] = None
    retiring: bool = False  # announced its own exit; never dispatch again


class SupervisedScanner:
    """Classify conflicting pairs in parallel, surviving worker death.

    Usable directly as the ``runner`` argument of
    :meth:`~repro.races.detector.RaceDetector.feasible_races`.

    Parameters
    ----------
    jobs:
        Worker process count (>= 1).
    limits:
        Kernel caps installed in every worker.
    retry:
        Crash/retry policy (default: one retry, mild backoff).
    pair_wall_timeout:
        Hard wall-clock seconds per attempt, enforced by the *parent*
        killing the worker -- the hang backstop.  Defaults to
        ``2 * pair_timeout + 5`` when the scan has a per-pair timeout,
        else off (an unbudgeted scan may legitimately run for days).
    faults:
        Test-only fault-injection spec (see module comment).
    tracer:
        A :class:`~repro.obs.trace.TraceSink`; when enabled, workers
        record their query spans into a bounded in-memory sink and ship
        them home with each result, and the parent adds worker
        lifecycle events (spawn/ready/retry/crash/retire plus
        dispatch/result bounds around every attempt) -- so a parallel
        scan's trace is as complete as a serial one's.
        After :meth:`scan` returns, :attr:`worker_restarts` counts the
        workers that were replaced after dying mid-pair.
    board:
        A :class:`~repro.obs.server.StatusBoard` (duck-typed:
        ``observe``/``merge_planner``/``merge_profile``).  Every worker
        lifecycle record is mirrored to it and each result's planner /
        profile snapshot is merged as it lands, so a ``--serve``
        endpoint shows per-worker liveness, the current pair and
        restart counts while the scan is still running.  Also settable
        after construction via the :attr:`board` attribute.
    """

    def __init__(
        self,
        jobs: int = 2,
        *,
        limits: Optional[ResourceLimits] = None,
        retry: Optional[RetryPolicy] = None,
        pair_wall_timeout: Optional[float] = None,
        faults: Optional[Dict[str, Dict[str, Any]]] = None,
        poll_interval: float = 0.02,
        drain_grace: float = 1.0,
        tracer=NULL_SINK,
        board=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.limits = limits
        self.retry = retry if retry is not None else RetryPolicy()
        self.pair_wall_timeout = pair_wall_timeout
        self.faults = dict(faults or {})
        self.poll_interval = poll_interval
        self.drain_grace = drain_grace
        self.tracer = tracer if tracer is not None else NULL_SINK
        self.board = board
        self.worker_restarts = 0  # of the most recent scan

    # ------------------------------------------------------------------
    def __call__(self, exe, tasks, options, on_classified=None):
        return self.scan(exe, tasks, options, on_classified)

    def scan(
        self,
        exe,
        tasks: Sequence[PairTask],
        options: PairScanOptions,
        on_classified: Optional[Callable[[PairClassification], None]] = None,
    ) -> Tuple[List[PairClassification], bool, Dict[str, Any]]:
        """Returns ``(classifications, interrupted, tier_snapshot)`` --
        the third element aggregates each worker's per-pair
        :class:`~repro.solve.planner.PlannerReport` so the parent's race
        report still says which tiers answered."""
        self.worker_restarts = 0
        if not tasks:
            return [], False, PlannerReport().snapshot()
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        board = self.board

        def emit(record: Dict[str, Any]) -> None:
            if traced:
                tracer.emit(record)
            if board is not None:
                board.observe(record)

        ctx = mp.get_context("spawn")
        exe_doc = serialize.execution_to_dict(exe)
        conf = {
            "drop_racing_dependences": options.drop_racing_dependences,
            "rlimits": (
                {
                    "max_memory_mb": self.limits.max_memory_mb,
                    "max_cpu_seconds": self.limits.max_cpu_seconds,
                }
                if self.limits is not None
                else None
            ),
            "faults": self.faults,
            "trace": traced,
            "profile": options.profile,
            "por": options.por,
        }
        result_q = ctx.Queue()
        state: Dict[int, _TaskState] = {
            tid: _TaskState(a, b, variables)
            for tid, (a, b, variables) in enumerate(tasks)
        }
        pending = deque(range(len(tasks)))
        done: Dict[int, PairClassification] = {}
        workers: List[Optional[_Worker]] = [None] * self.jobs
        by_uid: Dict[int, _Worker] = {}
        next_uid = [0]
        interrupted = False
        hard_interrupt = False
        slots_used: set = set()
        tier_report = PlannerReport()  # aggregated from worker payloads
        scan_profile = SearchProfile() if options.profile else None

        def finalize(tid: int, c: PairClassification) -> None:
            done[tid] = c
            if on_classified is not None:
                on_classified(c)

        def fail(tid: int, resource: str) -> None:
            st = state[tid]
            st.failures += 1
            past_deadline = (
                options.deadline is not None
                and time.monotonic() >= options.deadline
            )
            if self.retry.should_retry(st.failures) and not past_deadline:
                st.attempt += 1
                st.not_before = time.monotonic() + self.retry.delay(
                    st.attempt, key=(st.a, st.b)
                )
                pending.append(tid)
                emit(
                    {"kind": "worker.retry", "a": st.a, "b": st.b,
                     "attempt": st.attempt}
                )
            else:
                finalize(
                    tid,
                    PairClassification(
                        st.a, st.b, UNKNOWN, st.variables, resource=resource
                    ),
                )

        def handle_result(msg) -> None:
            uid, tid, kind, payload = msg
            if kind == "ready":
                # the worker's interpreter is booted; only now does any
                # pending wall-clock budget start ticking (spawn +
                # import time is machine load, not pair difficulty)
                w = by_uid.get(uid)
                if w is not None:
                    w.ready = True
                    if w.kill_after is not None:
                        w.kill_at = time.monotonic() + w.kill_after
                        w.kill_after = None
                emit({"kind": "worker.ready", "worker": uid})
                return
            w = by_uid.get(uid)  # None once we've given up on that worker
            if w is not None and w.busy_task == tid:
                w.busy_task = None
                w.kill_at = None
                w.kill_after = None
                w.died_at = None
            if w is not None and kind == "memory":
                # a memory report doubles as the worker's retirement
                # notice -- it exits right after sending it
                w.retiring = True
                emit({"kind": "worker.crash", "worker": uid, "resource": MEMORY})
            if tid in done or tid not in state:
                return
            if kind == "ok":
                if tid in pending:
                    # late answer from an incarnation we had given up on:
                    # still a valid answer, so cancel the redo
                    pending.remove(tid)
                if isinstance(payload, dict) and "classification" in payload:
                    planner_snap = payload.get("planner") or {}
                    tier_report.merge(planner_snap)
                    profile_snap = payload.get("profile")
                    if scan_profile is not None and profile_snap:
                        scan_profile.merge(profile_snap)
                    if board is not None:
                        board.merge_planner(planner_snap)
                        if profile_snap:
                            board.merge_profile(profile_snap)
                    if traced:
                        # fold the worker's spans into the scan trace,
                        # tagged with the uid that produced them
                        for span in payload.get("spans") or ():
                            span.setdefault("worker", uid)
                            tracer.emit(span)
                    payload = payload["classification"]
                st = state[tid]
                emit(
                    {"kind": "worker.result", "worker": uid,
                     "a": st.a, "b": st.b}
                )
                finalize(tid, serialize.classification_from_dict(exe, payload))
            else:  # "memory" or "error"
                if tid in pending:
                    return  # this failure was already counted at death time
                fail(tid, MEMORY if kind == "memory" else CRASH)

        def spawn(slot: int) -> _Worker:
            uid = next_uid[0]
            next_uid[0] += 1
            task_q = ctx.Queue()
            proc = ctx.Process(
                target=_worker_main,
                args=(uid, task_q, result_q, exe_doc, conf),
                daemon=True,
            )
            proc.start()
            w = _Worker(uid, proc, task_q)
            by_uid[uid] = w
            if slot in slots_used:
                # this slot hosted a worker before: the spawn replaces
                # one that died or retired mid-scan
                self.worker_restarts += 1
            slots_used.add(slot)
            emit({"kind": "worker.spawn", "worker": uid})
            return w

        def retire(slot: int) -> None:
            w = workers[slot]
            w.proc.join()
            by_uid.pop(w.uid, None)
            workers[slot] = None
            emit({"kind": "worker.retire", "worker": w.uid})

        def dispatchable(now: float) -> Optional[int]:
            for _ in range(len(pending)):
                tid = pending.popleft()
                if state[tid].not_before <= now:
                    return tid
                pending.append(tid)
            return None

        try:
            while len(done) < len(state):
                now = time.monotonic()
                # scan-wide deadline: never start pairs past it
                if options.deadline is not None and now >= options.deadline:
                    while pending:
                        tid = pending.popleft()
                        st = state[tid]
                        finalize(
                            tid,
                            PairClassification(
                                st.a,
                                st.b,
                                UNKNOWN,
                                st.variables,
                                resource=DEADLINE,
                            ),
                        )
                # reap idle deaths (e.g. a worker that retired after an
                # OOM report) and assign work to idle workers
                for slot in range(self.jobs):
                    w = workers[slot]
                    if w is not None and w.busy_task is None and (
                        w.retiring or not w.proc.is_alive()
                    ):
                        if w.proc.is_alive():
                            continue  # retiring, not yet gone: stand by
                        retire(slot)
                        w = None
                    if w is None:
                        if len(pending) == 0:
                            continue
                        workers[slot] = w = spawn(slot)
                    if w.busy_task is None and pending:
                        tid = dispatchable(now)
                        if tid is None:
                            continue
                        st = state[tid]
                        max_states = self.retry.escalated_states(
                            options.max_states, st.attempt
                        )
                        timeout = options.pair_timeout
                        if options.deadline is not None:
                            remaining = max(0.001, options.deadline - now)
                            timeout = (
                                remaining
                                if timeout is None
                                else min(timeout, remaining)
                            )
                        w.task_q.put(
                            (tid, st.a, st.b, st.attempt, max_states, timeout)
                        )
                        w.busy_task = tid
                        emit(
                            {"kind": "worker.dispatch", "worker": w.uid,
                             "a": st.a, "b": st.b}
                        )
                        wall = self.pair_wall_timeout
                        if wall is None and options.pair_timeout is not None:
                            wall = 2.0 * options.pair_timeout + 5.0
                        if w.ready:
                            w.kill_at = (now + wall) if wall is not None else None
                            w.kill_after = None
                        else:  # cold worker: arm the clock on its ready message
                            w.kill_at = None
                            w.kill_after = wall
                # collect results (the blocking get is also our sleep);
                # drain everything already queued so a burst of answers
                # -- e.g. an OOM worker's final "memory" report landing
                # behind several "ok"s -- is folded in before the
                # drain_grace clock below can misread the clean exit as
                # an abandoned task
                try:
                    handle_result(result_q.get(timeout=self.poll_interval))
                    while True:
                        handle_result(result_q.get_nowait())
                except queue_mod.Empty:
                    pass
                # crash + hang supervision of busy workers
                now = time.monotonic()
                for slot in range(self.jobs):
                    w = workers[slot]
                    if w is None or w.busy_task is None:
                        continue
                    if not w.proc.is_alive():
                        exitcode = w.proc.exitcode
                        if w.died_at is None:
                            w.died_at = now
                        if exitcode == 0 and now - w.died_at < self.drain_grace:
                            # a clean exit never abandons a task: its
                            # final ("memory") report is still in flight
                            continue
                        tid = w.busy_task
                        resource = _death_resource(exitcode)
                        emit(
                            {"kind": "worker.crash", "worker": w.uid,
                             "resource": resource}
                        )
                        retire(slot)
                        fail(tid, resource)
                    elif w.kill_at is not None and now >= w.kill_at:
                        tid = w.busy_task
                        w.proc.kill()
                        emit(
                            {"kind": "worker.crash", "worker": w.uid,
                             "resource": DEADLINE}
                        )
                        retire(slot)
                        fail(tid, DEADLINE)
        except KeyboardInterrupt:
            interrupted = True
            if board is not None:
                # flips /readyz to 503 while the prefix is folded in
                board.set_state("draining")
            # drain results that already completed, briefly; a SECOND
            # interrupt during the drain means "now" -- stop draining,
            # let the finally terminate the workers, then re-raise so
            # the process exits 130 without writing another record
            try:
                stop_at = time.monotonic() + self.drain_grace
                while time.monotonic() < stop_at:
                    try:
                        handle_result(result_q.get(timeout=self.poll_interval))
                    except queue_mod.Empty:
                        break
            except KeyboardInterrupt:
                hard_interrupt = True
        finally:
            self._shutdown(workers, result_q)
        if hard_interrupt:
            raise KeyboardInterrupt
        results = [done[tid] for tid in sorted(done)]
        snap = tier_report.snapshot()
        if scan_profile is not None:
            # piggyback on the tier snapshot (the detector pops it back
            # out): the runner protocol stays a 3-tuple
            snap["profile"] = scan_profile.snapshot()
        return results, interrupted, snap

    # ------------------------------------------------------------------
    @staticmethod
    def _shutdown(workers: List[Optional[_Worker]], result_q) -> None:
        for w in workers:
            if w is None:
                continue
            try:
                w.task_q.put_nowait(None)
            except Exception:  # full/closed: terminate below anyway
                pass
        deadline = time.monotonic() + 1.0
        for w in workers:
            if w is None:
                continue
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=0.5)
            if w.proc.is_alive():  # pragma: no cover - stubborn child
                w.proc.kill()
                w.proc.join(timeout=0.5)
            # never let an unflushed feeder thread block interpreter exit
            w.task_q.cancel_join_thread()
            w.task_q.close()
        result_q.cancel_join_thread()
        result_q.close()


# ----------------------------------------------------------------------
# long-lived query evaluation (the ``repro serve`` daemon's pool)
# ----------------------------------------------------------------------
#: relations a query request may name; each maps to a planner facade
#: (``<name>_verdict``), plus the two composite forms
QUERY_RELATIONS = frozenset(
    {"mhb", "chb", "mcb", "ccb", "mow", "cow", "mcw", "ccw",
     "feasible", "race"}
)

#: outcome resource when the pool is torn down with the job unfinished
SHUTDOWN = "shutdown"


def _unknown_outcome(resource: str) -> Dict[str, Any]:
    """The degraded answer shape: explicitly UNKNOWN, never a guess."""
    return {
        "verdict": "UNKNOWN",
        "decided_by": None,
        "resource": resource,
        "planner": {},
        "witnesses_found": [],
    }


def _verdict_payload(verdict) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "verdict": str(verdict.truth),
        "decided_by": (
            None if verdict.is_unknown else tier_of(verdict.provenance)
        ),
        "resource": verdict.resource,
    }
    if verdict.witness is not None:
        doc["witness"] = serialize.witness_to_dict(verdict.witness)
    return doc


def _query_worker_main(worker_id: int, task_q, result_q, conf) -> None:
    """Daemon-side worker loop: one *query* per message, executions by
    fingerprint.  Runs in a spawned interpreter; must stay importable.

    Unlike :func:`_worker_main` (one execution for a whole scan), a
    query worker serves many executions over its lifetime: it keeps a
    small FIFO of warm :class:`~repro.solve.planner.QueryPlanner`
    contexts keyed by fingerprint, so consecutive queries against the
    same stored execution reuse the structural bitsets and every
    witness already found.  Each request ships the execution document
    anyway -- a worker fresh from a crash replacement must be able to
    answer without any shared state.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns shutdown
    signal.signal(signal.SIGTERM, signal.SIG_IGN)  # ... and drain
    limits = conf.get("rlimits")
    apply_limits(ResourceLimits(**limits) if limits is not None else None)
    pair_faults = _PairFaults(conf.get("faults"))
    plan = conf.get("plan")
    capacity = max(1, int(conf.get("context_capacity", 8)))
    planners: Dict[str, QueryPlanner] = {}  # fp -> planner, FIFO-bounded
    # when the daemon traces, record query spans into a bounded buffer
    # and ship them with each result (the scan pool's idiom): the
    # parent tags them with the request id only it knows
    sink: Optional[RecordingSink] = None
    if conf.get("trace"):
        sink = RecordingSink(capacity=int(conf.get("trace_capacity", 4096)))
    # feeder thread first: its stack counts against RLIMIT_AS (see
    # _worker_main)
    result_q.put((worker_id, None, "ready", None))
    while True:
        msg = task_q.get()
        if msg is None:
            return
        task_id, req, attempt = msg
        try:
            faults_mod.fire("pool.task")
            eval_t0 = time.monotonic()
            if sink is not None:
                sink.drain()  # discard spans of a failed prior attempt
            a, b = req.get("a"), req.get("b")
            if a is not None and b is not None:
                pair_faults.hit(int(a), int(b), attempt)
            fp = req["fingerprint"]
            planner = planners.get(fp)
            if planner is None:
                exe = serialize.execution_from_dict(req["execution"])
                ctx = SolveContext(exe)
                planner = (
                    QueryPlanner(ctx, tuple(plan)) if plan else QueryPlanner(ctx)
                )
                if sink is not None:
                    planner.attach_tracer(sink)
                planners[fp] = planner
                while len(planners) > capacity:
                    planners.pop(next(iter(planners)))
            # seed the persistent store's schedules (each re-validated
            # by the cache) and remember the watermark: only witnesses
            # *this* query discovers ship home for persisting
            mark = planner.ctx.seed_witnesses(req.get("witnesses") or ())
            planner.report = PlannerReport()  # per-query tier tallies
            budget = None
            max_states, timeout = req.get("max_states"), req.get("timeout")
            if max_states is not None or timeout is not None:
                budget = Budget.of(max_states=max_states, timeout=timeout)
            relation = req.get("relation", "race")
            if relation == "race":
                c = classify_pair(
                    planner.ctx.exe,
                    int(a),
                    int(b),
                    drop_racing_dependences=bool(req.get("drop_racing", True)),
                    budget=budget,
                    planner=planner,
                )
                payload: Dict[str, Any] = {
                    "verdict": c.status.upper()
                    if c.status == UNKNOWN
                    else c.status,
                    "decided_by": c.decided_by,
                    "resource": c.resource,
                    "classification": serialize.classification_to_dict(c),
                }
                if c.witness is not None:
                    payload["witness"] = serialize.witness_to_dict(c.witness)
            elif relation == "feasible":
                payload = _verdict_payload(planner.feasible_verdict(budget=budget))
            else:
                method = getattr(planner, f"{relation}_verdict")
                payload = _verdict_payload(method(int(a), int(b), budget=budget))
            payload["planner"] = planner.report.snapshot()
            payload["witnesses_found"] = planner.ctx.witnesses.points_since(mark)
            if sink is not None:
                # the query spans plus this worker's evaluation bound;
                # the parent adds "request_id"/"worker" provenance
                spans = sink.drain()
                spans.append(
                    {
                        "kind": "serve.worker.eval",
                        "t": eval_t0,
                        "elapsed": time.monotonic() - eval_t0,
                    }
                )
                payload["spans"] = spans
            result_q.put((worker_id, task_id, "ok", payload))
        except MemoryError:
            # see _worker_main: report without binding the exception,
            # then retire this driven-to-the-limit heap
            planners.clear()
            gc.collect()
            result_q.put((worker_id, task_id, "memory", None))
            return
        except Exception as exc:  # unexpected bug: isolate, don't die
            result_q.put((worker_id, task_id, "error", repr(exc)))


@dataclass
class _QueryJob:
    request: Dict[str, Any]
    done: threading.Event = field(default_factory=threading.Event)
    outcome: Optional[Dict[str, Any]] = None
    attempt: int = 0
    failures: int = 0
    not_before: float = 0.0
    #: monotonic retry cutoff (mirrors the request timeout): past it a
    #: failure finalizes UNKNOWN instead of re-queueing
    deadline: Optional[float] = None


class QueryWorkerPool:
    """Crash-isolated evaluation for the ``repro serve`` daemon.

    The scan pool answers one batch and exits; this pool lives as long
    as the daemon, evaluating independent query requests against many
    executions.  It inherits the scan pool's robustness invariants --
    spawn-context workers under kernel rlimits, dead workers replaced
    and their job retried under the :class:`RetryPolicy` (jittered
    backoff keyed by job), hangs killed at a wall deadline, degraded
    answers explicitly ``UNKNOWN`` with the resource that ran out --
    and adds a thread-safe ``submit``/``result`` surface driven by one
    supervisor thread.

    A request is a dict: ``fingerprint`` + ``execution`` (its JSON
    document), ``relation`` (one of :data:`QUERY_RELATIONS`), event ids
    ``a``/``b`` for pair relations, optional ``drop_racing``,
    ``max_states``/``timeout`` (the per-query budget -- the *caller*
    clamps, see :func:`repro.budget.clamp_request`), and optional
    ``witnesses`` (stored schedules to seed the worker's cache).  The
    outcome is a dict: ``verdict`` / ``decided_by`` / ``resource``,
    optional ``witness`` and ``classification``, the per-query
    ``planner`` tier snapshot, and ``witnesses_found`` -- newly
    discovered schedules the caller should persist.  A pool built with
    ``trace=True`` additionally ships ``spans``: the worker's in-memory
    query trace (bounded by ``trace_capacity``, scan-pool idiom) plus a
    ``serve.worker.eval`` bound, each tagged with the worker uid -- the
    caller adds the request id and emits them to its sink.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        limits: Optional[ResourceLimits] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Dict[str, Dict[str, Any]]] = None,
        plan: Optional[Sequence[str]] = None,
        poll_interval: float = 0.02,
        drain_grace: float = 1.0,
        wall_grace: float = 5.0,
        context_capacity: int = 8,
        trace: bool = False,
        trace_capacity: int = 4096,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.limits = limits
        self.retry = retry if retry is not None else RetryPolicy(jitter=0.5)
        self.faults = dict(faults or {})
        self.plan = list(plan) if plan is not None else None
        self.poll_interval = poll_interval
        self.drain_grace = drain_grace
        self.wall_grace = wall_grace
        self.context_capacity = context_capacity

        self._ctx = mp.get_context("spawn")
        self._result_q = self._ctx.Queue()
        self._conf = {
            "rlimits": (
                {
                    "max_memory_mb": limits.max_memory_mb,
                    "max_cpu_seconds": limits.max_cpu_seconds,
                }
                if limits is not None
                else None
            ),
            "faults": self.faults,
            "plan": self.plan,
            "context_capacity": context_capacity,
            "trace": bool(trace),
            "trace_capacity": trace_capacity,
        }
        self._lock = threading.Lock()
        self._jobs: Dict[int, _QueryJob] = {}
        self._pending: deque = deque()
        self._task_ids = itertools.count()
        self._slots: List[Optional[_Worker]] = [None] * workers
        self._by_uid: Dict[int, _Worker] = {}
        self._next_uid = itertools.count()
        self._slots_used: set = set()
        self._stop = threading.Event()
        self._drain_deadline: Optional[float] = None
        self._closed = threading.Event()
        # counters (read under _lock by stats())
        self._submitted = 0
        self._answered = 0
        self._retries = 0
        self._spawns = 0
        self._restarts = 0
        self._crashes = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-query-pool", daemon=True
        )
        self._thread.start()

    # -- client surface (any thread) -----------------------------------
    def submit(self, request: Dict[str, Any]) -> int:
        """Enqueue one query request; returns its task id."""
        with self._lock:
            if self._stop.is_set():
                raise RuntimeError("pool is shutting down")
            tid = next(self._task_ids)
            job = _QueryJob(request=dict(request))
            timeout = request.get("timeout")
            if timeout is not None:
                job.deadline = time.monotonic() + float(timeout)
            self._jobs[tid] = job
            self._pending.append(tid)
            self._submitted += 1
        return tid

    def result(self, task_id: int, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block for one outcome (and forget the job)."""
        with self._lock:
            job = self._jobs.get(task_id)
        if job is None:
            raise KeyError(f"unknown task {task_id}")
        if not job.done.wait(timeout):
            raise TimeoutError(f"task {task_id} not done within {timeout}s")
        with self._lock:
            self._jobs.pop(task_id, None)
        assert job.outcome is not None
        return job.outcome

    def close(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the pool.  ``drain=True`` lets in-flight and queued jobs
        finish (bounded by ``timeout``); either way, every unfinished
        job is finalized ``UNKNOWN (shutdown)`` so no waiter hangs."""
        with self._lock:
            if self._stop.is_set():
                drain = False  # already closing; just wait below
            else:
                self._drain_deadline = (
                    time.monotonic() + timeout if drain else time.monotonic()
                )
                self._stop.set()
        self._closed.wait(timeout + 10.0)
        self._thread.join(timeout=5.0)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            busy = sum(
                1 for w in self._slots if w is not None and w.busy_task is not None
            )
            return {
                "workers": self.workers,
                "busy": busy,
                "queued": len(self._pending),
                "submitted": self._submitted,
                "answered": self._answered,
                "retries": self._retries,
                "spawns": self._spawns,
                "restarts": self._restarts,
                "crashes": self._crashes,
            }

    def __enter__(self) -> "QueryWorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- supervisor thread ---------------------------------------------
    def _finalize(self, tid: int, outcome: Dict[str, Any]) -> None:
        with self._lock:
            job = self._jobs.get(tid)
            if job is None or job.outcome is not None:
                return
            job.outcome = outcome
            self._answered += 1
        job.done.set()

    def _fail(self, tid: int, resource: str) -> None:
        with self._lock:
            job = self._jobs.get(tid)
            if job is None or job.outcome is not None:
                return
            job.failures += 1
            now = time.monotonic()
            past = job.deadline is not None and now >= job.deadline
            retry = (
                self.retry.should_retry(job.failures)
                and not past
                and not self._stop.is_set()
            )
            if retry:
                job.attempt += 1
                self._retries += 1
                key = (job.request.get("a"), job.request.get("b"), tid)
                job.not_before = now + self.retry.delay(job.attempt, key=key)
                self._pending.append(tid)
        if not retry:
            self._finalize(tid, _unknown_outcome(resource))

    def _spawn(self, slot: int) -> _Worker:
        uid = next(self._next_uid)
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_query_worker_main,
            args=(uid, task_q, self._result_q, self._conf),
            daemon=True,
        )
        proc.start()
        w = _Worker(uid, proc, task_q)
        self._by_uid[uid] = w
        with self._lock:
            self._spawns += 1
            if slot in self._slots_used:
                self._restarts += 1
            self._slots_used.add(slot)
        return w

    def _retire(self, slot: int) -> None:
        w = self._slots[slot]
        w.proc.join()
        self._by_uid.pop(w.uid, None)
        self._slots[slot] = None

    def _next_dispatchable(self, now: float) -> Optional[int]:
        with self._lock:
            for _ in range(len(self._pending)):
                tid = self._pending.popleft()
                job = self._jobs.get(tid)
                if job is None or job.outcome is not None:
                    continue  # cancelled or already finalized
                if job.deadline is not None and now >= job.deadline:
                    # expired while queued: answer without dispatching
                    expired = tid
                    break
                if job.not_before <= now:
                    return tid
                self._pending.append(tid)
            else:
                return None
        self._fail(expired, DEADLINE)
        return self._next_dispatchable(now)

    def _handle_result(self, msg) -> None:
        uid, tid, kind, payload = msg
        if kind == "ready":
            w = self._by_uid.get(uid)
            if w is not None:
                w.ready = True
                if w.kill_after is not None:
                    w.kill_at = time.monotonic() + w.kill_after
                    w.kill_after = None
            return
        w = self._by_uid.get(uid)
        if w is not None and w.busy_task == tid:
            w.busy_task = None
            w.kill_at = None
            w.kill_after = None
            w.died_at = None
        if w is not None and kind == "memory":
            w.retiring = True
            with self._lock:
                self._crashes += 1
        with self._lock:
            job = self._jobs.get(tid)
            settled = job is None or job.outcome is not None
            requeued = tid in self._pending
        if settled:
            return
        if kind == "ok":
            if isinstance(payload, dict):
                # shipped spans carry the provenance the pool knows (the
                # worker uid); the daemon adds the request id and emits
                for span in payload.get("spans") or ():
                    span.setdefault("worker", uid)
            if requeued:
                # late answer from an incarnation we had given up on
                with self._lock:
                    try:
                        self._pending.remove(tid)
                    except ValueError:
                        pass
            self._finalize(tid, payload)
        elif not requeued:  # "memory"/"error" not already counted at death
            self._fail(tid, MEMORY if kind == "memory" else CRASH)

    def _run(self) -> None:
        slots = self._slots
        try:
            while True:
                now = time.monotonic()
                with self._lock:
                    unfinished = any(
                        j.outcome is None for j in self._jobs.values()
                    )
                    stopping = self._stop.is_set()
                    drain_deadline = self._drain_deadline
                if stopping and (
                    not unfinished
                    or (drain_deadline is not None and now >= drain_deadline)
                ):
                    return
                for slot in range(self.workers):
                    w = slots[slot]
                    if w is not None and w.busy_task is None and (
                        w.retiring or not w.proc.is_alive()
                    ):
                        if w.proc.is_alive():
                            continue  # retiring, not yet gone: stand by
                        self._retire(slot)
                        w = None
                    if w is None:
                        # keep the bench warm: a daemon's first query
                        # should not pay interpreter spawn time, and a
                        # replacement must exist before the next crash
                        slots[slot] = w = self._spawn(slot)
                    if w.busy_task is None:
                        tid = self._next_dispatchable(now)
                        if tid is None:
                            continue
                        job = self._jobs[tid]
                        w.task_q.put((tid, job.request, job.attempt))
                        w.busy_task = tid
                        wall = None
                        if job.deadline is not None:
                            wall = max(0.1, job.deadline - now) + self.wall_grace
                        if w.ready:
                            w.kill_at = (now + wall) if wall is not None else None
                            w.kill_after = None
                        else:  # cold worker: arm on its ready message
                            w.kill_at = None
                            w.kill_after = wall
                try:
                    self._handle_result(
                        self._result_q.get(timeout=self.poll_interval)
                    )
                    while True:
                        self._handle_result(self._result_q.get_nowait())
                except queue_mod.Empty:
                    pass
                now = time.monotonic()
                for slot in range(self.workers):
                    w = slots[slot]
                    if w is None or w.busy_task is None:
                        continue
                    if not w.proc.is_alive():
                        exitcode = w.proc.exitcode
                        if w.died_at is None:
                            w.died_at = now
                        if exitcode == 0 and now - w.died_at < self.drain_grace:
                            continue  # clean exit: final report in flight
                        tid = w.busy_task
                        resource = _death_resource(exitcode)
                        with self._lock:
                            self._crashes += 1
                        self._retire(slot)
                        self._fail(tid, resource)
                    elif w.kill_at is not None and now >= w.kill_at:
                        tid = w.busy_task
                        w.proc.kill()
                        with self._lock:
                            self._crashes += 1
                        self._retire(slot)
                        self._fail(tid, DEADLINE)
        finally:
            # answer every waiter, then tear the workers down
            with self._lock:
                leftovers = [
                    tid for tid, j in self._jobs.items() if j.outcome is None
                ]
            for tid in leftovers:
                self._finalize(tid, _unknown_outcome(SHUTDOWN))
            SupervisedScanner._shutdown(slots, self._result_q)
            self._closed.set()


__all__ = [
    "SupervisedScanner",
    "QueryWorkerPool",
    "QUERY_RELATIONS",
    "CRASH",
    "SHUTDOWN",
]
