"""Golden tests: every example script runs and makes its key claims.

The examples are documentation; these tests keep them from rotting.
Each is executed in-process (runpy) with stdout captured and checked
for the load-bearing lines.
"""

import runpy
import sys
from contextlib import redirect_stdout
from io import StringIO
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Is the execution's event set feasible at all? True" in out
        assert "must-have-happened-before matrix" in out
        assert "overlaps" in out  # the V/P overlap witness

    def test_figure1_taskgraph(self):
        out = run_example("figure1_taskgraph.py")
        assert "post_left MHB post_right ?  True" in out
        assert "post_left  -> post_right ?  False" in out
        assert "wait_else" in out  # the alternate-schedule else branch

    def test_sat_oracle(self):
        out = run_example("sat_oracle.py")
        assert out.count("agrees with DPLL") == 6  # 3 formulas x 2 styles
        assert "DISAGREES" not in out
        assert "formula satisfied by it: True" in out

    def test_race_hunt(self):
        out = run_example("race_hunt.py")
        assert "races the apparent detector MISSED: 1" in out
        assert "feasible races: 1" in out

    def test_trace_analysis(self):
        out = run_example("trace_analysis.py")
        assert "unsound claim(s)" in out
        assert "(sound)" in out
        assert "phase 1 wrongly claims" in out

    def test_program_exploration(self):
        out = run_example("program_exploration.py")
        assert "'deadlocked': 0" in out
        assert "signal_ready -> consume" in out


@pytest.mark.parametrize(
    "name",
    [p.name for p in sorted(EXAMPLES.glob("*.py"))],
)
def test_every_example_exits_cleanly(name):
    run_example(name)  # raises on any error
