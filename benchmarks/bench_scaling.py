"""Experiment X1 -- the intractability picture, plus engine ablations.

The theorems say exact ordering decisions cannot be uniformly fast, and
the engine's behaviour shows exactly that shape:

* on *hard* instances (the Theorem 1 family over growing formulas) the
  explored state count grows super-linearly in the event count;
* on *easy* instances (independent processes; handoff pipelines) cost
  stays near-linear -- hardness is a property of the synchronization
  structure, not of size.

Ablations (DESIGN.md Section 6):

* memoization on/off -- the failure-memo is what keeps the exhaustive
  (UNSAT) side feasible at all;
* partial-order reduction measured via the hoisted-action fraction.
"""

import time

from conftest import report, table

from repro.core.engine import FeasibilityEngine, SearchBudgetExceeded, SearchStats, begin_point, end_point
from repro.reductions import semaphore_reduction
from repro.sat.generators import random_ksat
from repro.workloads.generators import independent_processes_execution
from repro.workloads.programs import pipeline_program
from repro.lang.interpreter import run_program


def measure_query(exe, a, b, *, memoize=True, max_states=None):
    stats = SearchStats()
    engine = FeasibilityEngine(exe)
    t0 = time.perf_counter()
    try:
        engine.search(
            constraints=[(end_point(a), begin_point(b))],
            stats=stats,
            memoize=memoize,
            max_states=max_states,
        )
        exceeded = False
    except SearchBudgetExceeded:
        exceeded = True
    return stats, time.perf_counter() - t0, exceeded


def hard_instances():
    """UNSAT-side CHB(b, a) queries on the Theorem 1 family: the search
    must exhaust the space (an UNSAT formula is picked per size by
    scanning seeds with DPLL)."""
    from repro.sat.dpll import solve

    out = []
    for n, m in [(3, 10), (3, 14), (4, 14), (4, 18)]:
        f = None
        for seed in range(200):
            cand = random_ksat(n, m, seed=seed)
            if solve(cand) is None:
                f = cand
                break
        assert f is not None, f"no UNSAT instance found at n={n}, m={m}"
        red = semaphore_reduction(f)
        out.append((f"thm1-unsat n={n} m={m}", red.execution, red.b, red.a))
    return out


def easy_instances():
    out = []
    for k in (4, 8, 12):
        exe = independent_processes_execution(processes=k, events_per_process=3)
        out.append((f"independent x{k}", exe, 0, len(exe) - 1))
    for k in (4, 8):
        exe = run_program(pipeline_program(k), 0).to_execution()
        out.append((f"pipeline x{k}", exe, 0, len(exe) - 1))
    return out


def run_scaling():
    rows = []
    for name, exe, a, b in hard_instances() + easy_instances():
        stats, seconds, exceeded = measure_query(exe, a, b)
        rows.append(
            dict(name=name, events=len(exe), states=stats.states_visited,
                 hoisted=stats.hoisted, seconds=seconds, exceeded=exceeded)
        )
    return rows


def test_scaling_hard_vs_easy(benchmark):
    rows = benchmark(run_scaling)

    hard = [r for r in rows if r["name"].startswith("thm1")]
    easy = [r for r in rows if not r["name"].startswith("thm1")]
    # easy instances explore ~one state per schedule point
    for r in easy:
        assert r["states"] <= 4 * r["events"] + 8
    # hard instances pay many states per event; easy ones do not
    hard_cost = max(r["states"] / r["events"] for r in hard)
    easy_cost = max(r["states"] / r["events"] for r in easy)
    assert hard_cost > 5 * easy_cost

    body = [
        [r["name"], r["events"], r["states"], r["hoisted"],
         f"{r['states'] / r['events']:.1f}", f"{r['seconds'] * 1e3:.1f}ms"]
        for r in rows
    ]
    lines = table(["instance", "|E|", "states", "hoisted", "states/|E|", "time"], body)
    lines.append("")
    lines.append("hard (reduction) instances grow super-linearly; unsynchronized")
    lines.append("and pipeline instances stay at ~1 state per event")
    report("scaling_hard_vs_easy", lines)


def test_ablation_serialization_fast_path(benchmark):
    """The serialization lemma ablation: a CHB query answered in the
    serial space (events atomic -- the engine's default) vs the full
    begin/end point space.  Same answers (asserted), very different
    costs."""
    from repro.workloads.generators import random_semaphore_execution

    cases = [
        random_semaphore_execution(
            processes=3, events_per_process=3, semaphores=2, seed=s
        )
        for s in range(4)
    ]

    def run_both():
        rows = []
        for exe in cases:
            # an unsatisfiable CHB (against program order): both searches
            # must exhaust their whole space, showing the size gap
            p0 = exe.process_events(exe.process_names[0])
            a, b = p0[0], p0[-1]
            constraint = [(end_point(b), begin_point(a))]
            serial_stats = SearchStats()
            t0 = time.perf_counter()
            serial_ans = (
                FeasibilityEngine(exe).search(
                    constraints=constraint, stats=serial_stats
                )
                is not None
            )
            t_serial = time.perf_counter() - t0
            point_stats = SearchStats()
            t0 = time.perf_counter()
            point_ans = (
                FeasibilityEngine(exe).search(
                    constraints=constraint,
                    interval_events=range(len(exe)),
                    stats=point_stats,
                )
                is not None
            )
            t_point = time.perf_counter() - t0
            rows.append(
                dict(
                    events=len(exe), serial_ans=serial_ans, point_ans=point_ans,
                    serial_states=serial_stats.states_visited,
                    point_states=point_stats.states_visited,
                    t_serial=t_serial, t_point=t_point,
                )
            )
        return rows

    rows = benchmark(run_both)
    for r in rows:
        assert r["serial_ans"] == r["point_ans"]  # the lemma, engine-level
        assert r["point_states"] >= r["serial_states"]

    body = [
        [r["events"], r["serial_ans"], r["serial_states"], r["point_states"],
         f"{r['t_serial'] * 1e3:.1f}ms", f"{r['t_point'] * 1e3:.1f}ms"]
        for r in rows
    ]
    lines = table(
        ["|E|", "answer", "serial states", "point states", "serial time", "point time"],
        body,
    )
    lines.append("")
    lines.append("identical answers on an exhaustive (unsatisfiable) query --")
    lines.append("the serialization lemma, checked at engine level.  With the")
    lines.append("begin-hoisting POR active the point space costs only ~2x the")
    lines.append("serial space (without POR the gap is combinatorial: every")
    lines.append("interleaving of begins multiplies the state count); the serial")
    lines.append("fast path keeps the constant factor and guarantees exactness.")
    report("ablation_serialization", lines)


def test_ablation_memoization(benchmark):
    """Failure memoization ablation on a moderate hard instance."""
    f = random_ksat(3, 9, seed=2)
    red = semaphore_reduction(f)
    exe, b, a = red.execution, red.b, red.a

    def run_both():
        on, t_on, _ = measure_query(exe, b, a, memoize=True)
        off, t_off, exceeded = measure_query(
            exe, b, a, memoize=False, max_states=300_000
        )
        return on, t_on, off, t_off, exceeded

    on, t_on, off, t_off, exceeded = benchmark(run_both)
    assert exceeded or off.states_visited >= on.states_visited

    lines = table(
        ["variant", "states", "time"],
        [
            ["memoized", on.states_visited, f"{t_on * 1e3:.1f}ms"],
            [
                "no memo",
                f">{off.states_visited}" if exceeded else off.states_visited,
                f"{t_off * 1e3:.1f}ms" + (" (budget hit)" if exceeded else ""),
            ],
        ],
    )
    lines.append("")
    lines.append("failure memoization is what makes exhaustive (must-side)")
    lines.append("queries terminate in practice")
    report("ablation_memoization", lines)
