"""Tests for exhaustive schedule-tree exploration."""

import pytest

from repro.analysis.explore import ProgramAnalysis, explore_program
from repro.lang.ast import Assign, Const, ProcessDef, Program, SemP, SemV, Skip
from repro.lang.parser import parse_program
from repro.workloads.programs import figure1_program


class TestExploreProgram:
    def test_single_process_single_run(self):
        prog = Program([ProcessDef("p", [Skip(), Skip()])])
        res = explore_program(prog)
        assert len(res.runs) == 1
        assert not res.runs[0].deadlocked
        assert res.runs[0].schedule == ("p", "p")

    def test_two_independent_events_two_runs(self):
        prog = Program([ProcessDef("a", [Skip()]), ProcessDef("b", [Skip()])])
        res = explore_program(prog)
        assert sorted(r.schedule for r in res.runs) == [("a", "b"), ("b", "a")]

    def test_interleaving_count(self):
        # 2 processes x 2 steps: C(4,2) = 6 interleavings
        prog = Program(
            [ProcessDef("a", [Skip(), Skip()]), ProcessDef("b", [Skip(), Skip()])]
        )
        assert len(explore_program(prog).runs) == 6

    def test_blocking_prunes_schedules(self):
        prog = Program(
            [ProcessDef("w", [SemP("s")]), ProcessDef("s_", [SemV("s")])]
        )
        res = explore_program(prog)
        assert all(r.schedule == ("s_", "w") for r in res.runs)

    def test_deadlock_recorded(self):
        src = "proc a { wait v1; post v2 }\nproc b { wait v2; post v1 }"
        res = explore_program(parse_program(src))
        assert len(res.runs) == 1
        assert res.runs[0].deadlocked
        assert res.runs[0].blocked == ("a", "b")

    def test_partial_deadlock_mix(self):
        # a and b race to P the single token; loser blocks forever
        src = "sem s = 1\nproc a { P(s) }\nproc b { P(s) }"
        res = explore_program(parse_program(src))
        assert len(res.deadlocked_runs) == 2
        assert len(res.complete_runs) == 0

    def test_max_runs_truncates(self):
        prog = Program(
            [ProcessDef("a", [Skip()] * 3), ProcessDef("b", [Skip()] * 3)]
        )
        res = explore_program(prog, max_runs=2)
        assert res.truncated and len(res.runs) == 2

    def test_traces_are_replayable_runs(self):
        res = explore_program(figure1_program())
        for run in res.complete_runs:
            assert len(run.trace) == len(run.schedule)


class TestProgramAnalysis:
    def test_figure1_two_signatures(self):
        ana = ProgramAnalysis(figure1_program())
        assert not ana.can_deadlock
        sigs = ana.event_signatures()
        assert len(sigs) == 2  # then-branch and else-branch event sets
        assert sum(sigs.values()) == len(ana.result.complete_runs)

    def test_figure1_guaranteed_orderings(self):
        ana = ProgramAnalysis(figure1_program())
        guaranteed = ana.guaranteed_orderings()
        # post_left precedes t3's wait in every complete run: either the
        # wait was triggered by it, or by the data-dependent right post,
        # which itself needs X:=1 after post_left
        assert ("post_left", "wait_t3") in guaranteed
        # ... but the converse never holds
        assert ("wait_t3", "post_left") not in guaranteed

    def test_branch_dependent_labels_excluded(self):
        ana = ProgramAnalysis(figure1_program())
        common = ana.labels_in_all_runs()
        # the right post only exists in then-branch runs
        assert "post_right" not in common
        assert "post_left" in common

    def test_sequential_program_totally_ordered(self):
        src = "proc p { skip @a; skip @b; skip @c }"
        ana = ProgramAnalysis(parse_program(src))
        assert ana.guaranteed_orderings() == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_unordered_pair_detected(self):
        src = "proc a { skip @x }\nproc b { skip @y }"
        ana = ProgramAnalysis(parse_program(src))
        assert ana.guaranteed_orderings() == set()

    def test_semaphore_forces_program_level_ordering(self):
        src = "proc a { V(s) @sig }\nproc b { P(s) @ack }"
        ana = ProgramAnalysis(parse_program(src))
        assert ("sig", "ack") in ana.guaranteed_orderings()

    def test_budget_exhaustion_raises(self):
        prog = Program(
            [ProcessDef("a", [Skip()] * 4), ProcessDef("b", [Skip()] * 4)]
        )
        with pytest.raises(RuntimeError, match="max_runs"):
            ProgramAnalysis(prog, max_runs=3)

    def test_summary_keys(self):
        ana = ProgramAnalysis(parse_program("proc p { skip @a }"))
        assert set(ana.summary()) == {
            "runs", "complete", "deadlocked", "event_signatures",
            "guaranteed_orderings",
        }
