"""Choice-point attribution for the exact feasibility search.

The paper's whole point is that every ordering query is worst-case
exponential; this module answers the operator's next question -- *which*
events make a particular scan exponential.  A :class:`SearchProfile` is
an opt-in observer for :meth:`FeasibilityEngine.search
<repro.core.engine.FeasibilityEngine.search>`: whenever the DFS faces a
real choice (more than one enabled action), every state visited inside
the chosen subtree is attributed to that frontier action -- the event
id, its operation kind and its synchronization object.  Dead-ends and
backtracks are charged the same way, so the profile names the
semaphores and event variables whose interleavings the search is
actually paying for, not merely the events that exist.

Attribution keys are plain ``(eid, kind, obj)`` tuples so the engine
(which sits below :mod:`repro.obs` in the import layering) never
imports this module; it only calls the ``charge_*`` methods on whatever
object it was handed.  States visited before the first branch -- the
forced prefix every schedule shares -- are charged to :data:`ROOT_KEY`.

Like ``SearchStats`` and ``PlannerReport``, profiles are associative:
:meth:`SearchProfile.merge` combines profiles from any split of the
same work (across queries, pairs, or pool workers) into the same
totals, and :meth:`snapshot`/:meth:`from_snapshot` round-trip through
JSON so profiles travel in trace records and worker result payloads.
Profiling defaults off everywhere and is a pure observer: it never
changes which states the search visits, only counts them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Pseudo choice point for states visited before the search's first
#: real branch (and for searches that never branch at all).
ROOT_KEY: Tuple[int, str, str] = (-1, "(root)", "")

#: Snapshot schema version, bumped if the key or counter layout changes.
PROFILE_VERSION = 1

_COUNTERS = ("chosen", "states", "dead_ends", "backtracks")


class ChoiceTally:
    """Counters attributed to one frontier action ``(eid, kind, obj)``.

    ``chosen`` counts how often the action was picked at a branch;
    ``states`` every state visited while the search was inside a
    subtree rooted at the action; ``dead_ends`` and ``backtracks`` the
    failures charged to it.
    """

    __slots__ = _COUNTERS

    def __init__(self, chosen: int = 0, states: int = 0,
                 dead_ends: int = 0, backtracks: int = 0) -> None:
        self.chosen = chosen
        self.states = states
        self.dead_ends = dead_ends
        self.backtracks = backtracks

    def merge(self, other: "ChoiceTally") -> None:
        self.chosen += other.chosen
        self.states += other.states
        self.dead_ends += other.dead_ends
        self.backtracks += other.backtracks

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _COUNTERS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChoiceTally(chosen={self.chosen}, states={self.states}, "
            f"dead_ends={self.dead_ends}, backtracks={self.backtracks})"
        )


def _key_to_str(key: Tuple[int, str, str]) -> str:
    return f"{key[0]}|{key[1]}|{key[2]}"


def _key_from_str(text: str) -> Tuple[int, str, str]:
    eid, kind, obj = text.split("|", 2)
    return (int(eid), kind, obj)


class SearchProfile:
    """Mergeable per-choice-point search cost, keyed ``(eid, kind, obj)``."""

    def __init__(self) -> None:
        self.searches = 0
        self.tallies: Dict[Tuple[int, str, str], ChoiceTally] = {}

    # -- charging (hot path: called from the engine's DFS) --------------
    def tally(self, key: Tuple[int, str, str]) -> ChoiceTally:
        t = self.tallies.get(key)
        if t is None:
            t = self.tallies[key] = ChoiceTally()
        return t

    def charge_search(self) -> None:
        self.searches += 1

    def charge_state(self, key: Tuple[int, str, str]) -> None:
        self.tally(key).states += 1

    def charge_choice(self, key: Tuple[int, str, str]) -> None:
        self.tally(key).chosen += 1

    def charge_dead_end(self, key: Tuple[int, str, str]) -> None:
        self.tally(key).dead_ends += 1

    def charge_backtrack(self, key: Tuple[int, str, str]) -> None:
        self.tally(key).backtracks += 1

    # -- aggregation -----------------------------------------------------
    def reset(self) -> None:
        """Forget everything (pool workers reuse one profile per pair)."""
        self.searches = 0
        self.tallies.clear()

    def merge(self, other) -> "SearchProfile":
        """Fold another profile (or a snapshot dict) into this one."""
        if isinstance(other, dict):
            other = SearchProfile.from_snapshot(other)
        self.searches += other.searches
        for key, tally in other.tallies.items():
            self.tally(key).merge(tally)
        return self

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy; ``from_snapshot`` round-trips it."""
        return {
            "version": PROFILE_VERSION,
            "searches": self.searches,
            "choices": {
                _key_to_str(key): tally.snapshot()
                for key, tally in sorted(self.tallies.items())
            },
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, object]) -> "SearchProfile":
        prof = cls()
        prof.searches = int(snap.get("searches", 0))
        for text, counters in dict(snap.get("choices", {})).items():
            prof.tallies[_key_from_str(text)] = ChoiceTally(
                **{name: int(counters.get(name, 0)) for name in _COUNTERS}
            )
        return prof

    # -- reading ---------------------------------------------------------
    @property
    def total_states(self) -> int:
        return sum(t.states for t in self.tallies.values())

    def hot_events(
        self, top: int = 10
    ) -> List[Tuple[Tuple[int, str, str], ChoiceTally]]:
        """The ``top`` branch actions by attributed states (root excluded).

        Ties break on event id so the table is deterministic across
        runs, workers and merge orders.
        """
        rows = [
            (key, tally)
            for key, tally in self.tallies.items()
            if key != ROOT_KEY
        ]
        rows.sort(key=lambda kv: (-kv[1].states, kv[0]))
        return rows[:top]

    def hot_objects(
        self, top: int = 10
    ) -> List[Tuple[Tuple[str, str], ChoiceTally]]:
        """Per-sync-object rollup of :meth:`hot_events` (root excluded)."""
        by_obj: Dict[Tuple[str, str], ChoiceTally] = {}
        for (eid, kind, obj), tally in self.tallies.items():
            if (eid, kind, obj) == ROOT_KEY:
                continue
            agg = by_obj.get((obj, kind))
            if agg is None:
                agg = by_obj[(obj, kind)] = ChoiceTally()
            agg.merge(tally)
        rows = sorted(by_obj.items(), key=lambda kv: (-kv[1].states, kv[0]))
        return rows[:top]

    def describe(self, top: int = 10) -> List[str]:
        """The "hot events" table: top-k choice points by attributed states."""
        total = self.total_states
        lines = [
            f"profile: {self.searches} search(es), "
            f"{total} attributed state(s)"
        ]
        if not self.tallies:
            return lines
        root = self.tallies.get(ROOT_KEY)
        hot = self.hot_events(top)
        if hot:
            width = max(len(_label(key)) for key, _ in hot)
            for key, tally in hot:
                share = 100.0 * tally.states / total if total else 0.0
                lines.append(
                    f"  {_label(key):<{width}}  states={tally.states}"
                    f" ({share:.0f}%)  chosen={tally.chosen}"
                    f"  dead_ends={tally.dead_ends}"
                    f"  backtracks={tally.backtracks}"
                )
        if root is not None and root.states:
            lines.append(
                f"  (forced prefix)  states={root.states}"
                f"  dead_ends={root.dead_ends}"
            )
        objs = self.hot_objects(min(top, 5))
        if objs:
            ranked = ", ".join(
                f"{obj or '(none)'}:{kind}={tally.states}"
                for (obj, kind), tally in objs
            )
            lines.append(f"  hot objects: {ranked}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchProfile(searches={self.searches}, "
            f"choice_points={len(self.tallies)}, "
            f"states={self.total_states})"
        )


def _label(key: Tuple[int, str, str]) -> str:
    eid, kind, obj = key
    if obj:
        return f"e{eid}:{kind}({obj})"
    return f"e{eid}:{kind}"


def merge_profiles(snapshots: Iterable[Optional[Dict[str, object]]]) -> SearchProfile:
    """Fold an iterable of snapshot dicts (Nones skipped) into one profile."""
    prof = SearchProfile()
    for snap in snapshots:
        if snap:
            prof.merge(snap)
    return prof


__all__ = [
    "ChoiceTally",
    "PROFILE_VERSION",
    "ROOT_KEY",
    "SearchProfile",
    "merge_profiles",
]
