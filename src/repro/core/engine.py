"""Exact feasibility search over begin/end point schedules.

The paper's temporal ordering ``T`` is interval-based: ``a ->T b`` iff
``a`` *completes* before ``b`` *begins*; events whose intervals overlap
executed concurrently.  On a sequentially consistent machine the
legality of an execution depends only on the discrete order of
operation begins and completions, so every distinct ``T`` a feasible
execution can exhibit corresponds to a legal total order of the
``2|E|`` *points* ``begin(e)``/``end(e)``.  The engine searches this
space.

Point-schedule legality (DESIGN.md Section 4.2):

* ``begin(e) < end(e)``;
* program order: ``end(pred(e)) < begin(e)`` within a process;
* ``end(fork) < begin(first event of created process)``;
* ``end(last event of each joined process) < end(join)`` (a join
  *completes* only when the joined processes have completed);
* ``P(s)`` completes only when count(s) > 0; counts change at ``P``/``V``
  completion;
* ``Wait(v)`` completes only when ``v`` is posted; ``Post``/``Clear``
  take effect at completion;
* every dependence ``a ->D b`` requires ``end(a) < begin(b)`` (F3: the
  dependence must recur, so ``a`` must still causally precede ``b``).

Two exactness-preserving reductions of the point space (proved in
DESIGN.md, exercised by ``tests/test_serialization_lemma.py``):

1. *Serialization lemma* -- an ``end(a) < begin(b)`` constraint is
   satisfiable by some legal point schedule iff it is satisfiable by a
   legal **serial** schedule (every event atomic).  Ordering events by
   their end points collapses any legal point schedule to a legal
   serial one and preserves every ``end < begin`` constraint.
2. *Interval-event restriction* -- for an overlap query about events
   ``a, b`` only those two events need distinct begin/end points; all
   other events can be treated atomically (delaying a begin toward its
   end never invalidates a schedule, and no constraint mentions the
   other events' begins).

So the engine is parameterized by the set of *interval events*: those
get separate begin/end actions, the rest execute atomically.  With an
empty set it is a serial-schedule searcher; with the full event set it
enumerates genuine point schedules (used by the reference enumerator).

States are triples of integer bitmasks (begun, ended, posted-vars) plus
a tuple of semaphore counts; monotone progress makes the state graph a
DAG, so memoizing visited states is sound and the search is a plain
DFS with failure memoization.

Partial-order reduction (action hoisting)
-----------------------------------------
The searches answer *completability* questions, so a classic ample-set
argument applies: if an enabled action ``t`` is **free** -- executing
it cannot disable any other current or future action, and its effect
commutes leftward past every other action -- then some completion
exists from state ``s`` iff one exists from ``s . t``, because any
completion containing ``t`` can be reordered to perform ``t`` first
(``t``'s gates are already satisfied at ``s``; its points moving
earlier can only help gates in which they are "before" points; its
semantic effect, if any, is monotone).  Free actions:

* computation, fork, join and *enabled* Wait completions (no semantic
  effect at all);
* ``V`` completions on counting semaphores (counts only grow, and
  ``P``-enabledness is monotone in prior ``V`` count) -- **not** free
  for binary semaphores, where an early ``V`` can be swallowed by the
  clamp;
* ``Post`` completions on variables that no event ever Clears (the
  posted state is then monotone);
* begin points of interval events (begins have no semantic effect).

Only ``P``, ``Clear``, and ``Post``-with-``Clear``-around remain
branching choices.  On the Theorem 1 construction this cuts the
explored state count by multiple orders of magnitude while preserving
exactness; ``tests/test_core_engine.py`` cross-checks hoisted searches
against the unreduced reference enumerator.

Partial-order reduction (sleep sets)
------------------------------------
Hoisting only collapses states with a *free* action; at genuine branch
points the search still explores every enabled action, so two
independent branching actions ``t``/``u`` cost both interleavings
``t.u`` and ``u.t``.  With ``por="sleep"`` the engine additionally
runs Godefroid-style sleep sets over a static independence relation
``I`` derived from the dependence edges, the sync structure
(semaphores, post/wait/clear, fork/join) and the active memory model's
program-order constraints: after exploring branch ``t``, later sibling
branches carry ``t`` in their sleep set for as long as only
``I``-independent actions execute, so the commuted interleaving is
never re-explored.  The failure memo becomes sleep-aware (an entry
records the sleep set it failed under and is reused only for supersets)
and hoisted singletons either filter the sleep set (when the hoisted
action is *persistent* -- nothing dependent with it can run first) or
wake every sleeper (when hoist exactness is the only argument).
DESIGN.md Section 4.3 proves verdicts are preserved exactly, including
under ``memoize``/``memo_cap`` and budget aborts; the reference
enumerator stays unreduced as the differential oracle.

``por="hoist"`` keeps only the free-action hoisting above and
``por="off"`` disables both reductions (every search is the plain
memoized DFS) -- the ladder the benchmarks use to measure each layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.budget import Budget, DEADLINE, STATES
from repro.model.events import EventKind
from repro.model.execution import ProgramExecution

try:  # int.bit_count is 3.10+; fall back for the 3.9 CI lane
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9
    def _popcount(x: int) -> int:
        return bin(x).count("1")


class Point(NamedTuple):
    """One schedule point: the begin or the end of an event."""

    eid: int
    is_end: bool

    def __repr__(self) -> str:
        return f"{'E' if self.is_end else 'B'}({self.eid})"


def begin_point(eid: int) -> Point:
    return Point(eid, False)


def end_point(eid: int) -> Point:
    return Point(eid, True)


class SearchBudgetExceeded(RuntimeError):
    """The search exhausted its budget (states or wall-clock deadline).

    ``resource`` names what ran out: ``"states"`` or ``"deadline"``.
    Callers must treat this as "unknown", never as a boolean answer.
    """

    def __init__(self, message: str = "search budget exceeded", *, resource: str = STATES):
        super().__init__(message)
        self.resource = resource


# SearchStats.termination values
TERMINATED_COMPLETE = "completed"
TERMINATED_STATES = "states-exhausted"
TERMINATED_DEADLINE = "deadline-exceeded"

# merge precedence: a deadline abort outranks a states abort outranks a
# completion, so N-way merges are order-independent (jobs=N reports
# must not depend on worker arrival order)
_TERMINATION_RANK = {
    TERMINATED_COMPLETE: 0,
    TERMINATED_STATES: 1,
    TERMINATED_DEADLINE: 2,
}


@dataclass
class SearchStats:
    """Counters describing one search (used by the benchmark harness).

    ``termination`` records why the most recent search charged to this
    object stopped: ``"completed"`` (ran to an answer),
    ``"states-exhausted"``, or ``"deadline-exceeded"`` -- so budgeted
    benchmark runs can distinguish timeouts from completions.
    """

    states_visited: int = 0
    actions_tried: int = 0
    memo_hits: int = 0
    dead_ends: int = 0
    hoisted: int = 0
    memo_suppressed: int = 0
    found: bool = False
    termination: str = TERMINATED_COMPLETE
    elapsed: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        self.states_visited += other.states_visited
        self.actions_tried += other.actions_tried
        self.memo_hits += other.memo_hits
        self.dead_ends += other.dead_ends
        self.hoisted += other.hoisted
        self.memo_suppressed += other.memo_suppressed
        self.elapsed += other.elapsed
        self.found = self.found or other.found
        if (
            _TERMINATION_RANK.get(other.termination, 0)
            > _TERMINATION_RANK.get(self.termination, 0)
        ):
            self.termination = other.termination


# Internal action encoding: (eid, phase) with phase 0 = begin of an
# interval event, 1 = end of an interval event, 2 = atomic execution.
_BEGIN, _END, _ATOMIC = 0, 1, 2

# Attribution key for search states visited before the first real
# branch.  Must match ``repro.obs.profile.ROOT_KEY`` -- duplicated here
# because core sits below obs in the import layering.
_PROFILE_ROOT = (-1, "(root)", "")


class FeasibilityEngine:
    """Decides completability of an execution under point constraints.

    Parameters
    ----------
    exe:
        The execution whose feasible schedules are searched.
    include_dependences:
        When False, the Section 5.3 variant is used: ``D`` imposes no
        constraints and all executions over the same events are
        considered feasible.
    binary_semaphores:
        Interpret every semaphore as binary (count clamped at 1).
    por:
        Partial-order reduction level: ``"sleep"`` (free-action
        hoisting plus sleep sets, the default), ``"hoist"`` (hoisting
        only -- the pre-sleep behavior), or ``"off"`` (the plain
        memoized DFS).  All three return identical verdicts; they
        differ only in how many states they visit.
    """

    POR_MODES = ("sleep", "hoist", "off")

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        include_dependences: bool = True,
        binary_semaphores: bool = False,
        por: str = "sleep",
    ) -> None:
        if por not in self.POR_MODES:
            raise ValueError(
                f"unknown por mode {por!r} (expected one of {', '.join(self.POR_MODES)})"
            )
        self.exe = exe
        self.include_dependences = include_dependences
        self.binary_semaphores = binary_semaphores
        self.por = por
        n = len(exe)
        self._n = n
        self._full_mask = (1 << n) - 1

        # --- begin prerequisites: mask of events whose END must precede
        # this event's BEGIN.  Program-order edges come from the
        # execution's memory model (under SC the adjacent predecessor;
        # under TSO the reduced constraint set with W->R pairs relaxed).
        pre = [0] * n
        for eid in range(n):
            for p in exe.po_begin_predecessors(eid):
                pre[eid] |= 1 << p
        for feid, children in exe.fork_children.items():
            for c in children:
                evs = exe.process_events(c)
                if evs:
                    pre[evs[0]] |= 1 << feid
        if include_dependences:
            for a, b in exe.dependences:
                pre[b] |= 1 << a
        self._begin_pre = pre

        # --- end semantics ---------------------------------------------------
        sems = exe.semaphores
        self._sem_index: Dict[str, int] = {s: i for i, s in enumerate(sems)}
        self._sem_initial: Tuple[int, ...] = tuple(exe.sem_initial(s) for s in sems)
        evars = exe.event_variables
        self._var_index: Dict[str, int] = {v: i for i, v in enumerate(evars)}
        self._var_initial_mask = 0
        for v in evars:
            if exe.var_initially_posted(v):
                self._var_initial_mask |= 1 << self._var_index[v]

        # per-event dispatch data
        self._kind: List[EventKind] = [exe.event(i).kind for i in range(n)]
        self._sem_of: List[int] = [-1] * n
        self._var_of: List[int] = [-1] * n
        self._join_need: List[int] = [0] * n
        cleared_vars = {e.obj for e in exe.events if e.kind is EventKind.CLEAR}
        for e in exe.events:
            if e.kind.is_semaphore_op:
                self._sem_of[e.eid] = self._sem_index[e.obj]
            elif e.kind.is_event_var_op:
                self._var_of[e.eid] = self._var_index[e.obj]
            elif e.kind is EventKind.JOIN:
                need = 0
                for t in exe.join_targets[e.eid]:
                    for x in exe.process_events(t):
                        need |= 1 << x
                self._join_need[e.eid] = need

        # partial-order reduction: which completions are "free" (see
        # module docstring).  P consumes, Clear erases, and a Post on a
        # clearable variable does not commute past the Clear.
        self._free_end: List[bool] = []
        for e in exe.events:
            k = e.kind
            if k in (
                EventKind.COMPUTATION,
                EventKind.FORK,
                EventKind.JOIN,
                EventKind.WAIT,
                EventKind.FENCE,  # ordering lives in begin_pre, not state
            ):
                self._free_end.append(True)
            elif k is EventKind.SEM_V:
                self._free_end.append(not binary_semaphores)
            elif k is EventKind.POST:
                self._free_end.append(e.obj not in cleared_vars)
            else:  # SEM_P, CLEAR, POST on a clearable variable
                self._free_end.append(False)

        # masks for the *dynamic* freeness rules and dead-end pruning:
        #  - a P(s) is free once count(s) covers every remaining P(s):
        #    count - remaining_P only grows (each V adds, each P removes
        #    one of each), so no P(s) can ever block again;
        #  - a Post(v) is free once no Clear(v) remains, a Clear(v) once
        #    no Wait(v) remains (their effects are then monotone /
        #    inconsequential);
        #  - a state with v cleared, Waits on v remaining and no Post(v)
        #    remaining is a dead end.
        nsem = len(sems)
        nvar = len(evars)
        self._p_mask = [0] * nsem
        self._v_mask = [0] * nsem
        self._post_mask = [0] * nvar
        self._clear_mask = [0] * nvar
        self._wait_mask = [0] * nvar
        for e in exe.events:
            if e.kind is EventKind.SEM_P:
                self._p_mask[self._sem_index[e.obj]] |= 1 << e.eid
            elif e.kind is EventKind.SEM_V:
                self._v_mask[self._sem_index[e.obj]] |= 1 << e.eid
            elif e.kind is EventKind.POST:
                self._post_mask[self._var_index[e.obj]] |= 1 << e.eid
            elif e.kind is EventKind.CLEAR:
                self._clear_mask[self._var_index[e.obj]] |= 1 << e.eid
            elif e.kind is EventKind.WAIT:
                self._wait_mask[self._var_index[e.obj]] |= 1 << e.eid

        # sleep sets need the static independence relation; the other
        # modes never read it
        self._sync_dep_mask: Optional[List[int]] = None
        self._indep_mask: Optional[List[int]] = None
        if por == "sleep":
            self._build_independence()

    # ------------------------------------------------------------------
    # static independence (sleep-set partial-order reduction)
    # ------------------------------------------------------------------
    def _build_independence(self) -> None:
        """Per-eid bitmasks of the static independence relation ``I``.

        Two actions are *independent* when, from any state where both
        are enabled, executing either leaves the other enabled and both
        orders reach the same state (the diamond property) -- and
        neither can newly *enable* the other (so an occurrence can be
        commuted backward past independent predecessors).  The
        complement is assembled from three sources:

        * **ordering** edges -- program order under the active memory
          model, fork edges, dependences (all via ``_begin_pre``) and
          join prerequisites, in both directions;
        * **semaphores** -- ``P``/``P`` on one semaphore can disable
          each other and ``V`` enables ``P``, so every ``P`` depends on
          every other ``P`` and every ``V`` of its semaphore; ``V``/``V``
          commute (increments, clamped or not) and stay independent;
        * **event variables** -- ``Post``/``Clear`` reach different
          states, ``Post`` enables ``Wait`` and ``Clear`` disables it,
          so all three cross-kind pairs depend; same-kind pairs
          (``Post``/``Post``, ``Clear``/``Clear``, ``Wait``/``Wait``)
          commute and stay independent.

        Query constraints never enter the relation: a gate only blocks
        its target until the gating point is scheduled, and scheduled
        points are monotone, so a pair of simultaneously *enabled*
        actions always has inert gates between them.

        ``_sync_dep_mask`` keeps the sync-object component separately:
        a hoisted completion is *persistent* (safe to filter a sleep
        set through) exactly when no un-ended event of that component
        remains -- ordering-linked events are blocked behind the hoisted
        action and cannot run first anyway.
        """
        n = self._n
        sync_dep = [0] * n

        def spread(members: int, partners: int) -> None:
            m = members
            while m:
                low = m & -m
                eid = low.bit_length() - 1
                m ^= low
                sync_dep[eid] |= partners & ~low

        for si in range(len(self._p_mask)):
            ps, vs = self._p_mask[si], self._v_mask[si]
            spread(ps, ps | vs)
            spread(vs, ps)
        for vi in range(len(self._post_mask)):
            posts = self._post_mask[vi]
            clears = self._clear_mask[vi]
            waits = self._wait_mask[vi]
            spread(posts, clears | waits)
            spread(clears, posts | waits)
            spread(waits, posts | clears)

        order_dep = [0] * n
        for eid in range(n):
            linked = self._begin_pre[eid] | self._join_need[eid]
            order_dep[eid] |= linked
            m = linked
            while m:
                low = m & -m
                other = low.bit_length() - 1
                m ^= low
                order_dep[other] |= 1 << eid

        full = self._full_mask
        self._sync_dep_mask = sync_dep
        self._indep_mask = [
            full & ~(1 << eid) & ~sync_dep[eid] & ~order_dep[eid]
            for eid in range(n)
        ]

    # ------------------------------------------------------------------
    # constraint preprocessing
    # ------------------------------------------------------------------
    def _prepare_constraints(
        self, constraints: Iterable[Tuple[Point, Point]]
    ) -> Tuple[Dict[Tuple[int, int], List[Point]], bool]:
        """Map each gated point to the points that must precede it.

        Returns ``(gates, trivially_unsat)``; a constraint of the form
        ``end(x) < begin(x)`` can never be satisfied.
        """
        gates: Dict[Tuple[int, int], List[Point]] = {}
        for before, after in constraints:
            if before.eid == after.eid and before.is_end and not after.is_end:
                return {}, True
            key = (after.eid, 1 if after.is_end else 0)
            gates.setdefault(key, []).append(before)
        return gates, False

    @staticmethod
    def _point_scheduled(p: Point, begun: int, ended: int) -> bool:
        if p.is_end:
            return bool((ended >> p.eid) & 1)
        return bool((begun >> p.eid) & 1)

    def _profile_keys(self) -> List[Tuple[int, str, str]]:
        """Per-eid profiler attribution keys ``(eid, kind, obj)``.

        Built lazily and cached: the engine is immutable after
        construction, and un-profiled searches must never pay for it.
        """
        keys = getattr(self, "_profile_key_cache", None)
        if keys is None:
            keys = [
                (e.eid, e.kind.value, e.obj or "") for e in self.exe.events
            ]
            self._profile_key_cache = keys
        return keys

    # ------------------------------------------------------------------
    # the search
    # ------------------------------------------------------------------
    def search(
        self,
        *,
        interval_events: Iterable[int] = (),
        constraints: Sequence[Tuple[Point, Point]] = (),
        max_states: Optional[int] = None,
        budget: Optional[Budget] = None,
        stats: Optional[SearchStats] = None,
        memoize: bool = True,
        on_progress=None,
        profile=None,
    ) -> Optional[List[Point]]:
        """Find one legal complete point schedule satisfying ``constraints``.

        Returns the schedule as a list of points (atomic events appear
        as their begin immediately followed by their end), or ``None``
        when no feasible execution satisfies the constraints.  Raises
        :class:`SearchBudgetExceeded` when ``max_states`` or the
        ``budget`` (states cap or wall-clock deadline, whichever hits
        first) is exhausted -- callers must treat that as "unknown",
        never as "no".  The deadline is read once per
        ``budget.check_interval`` visited states so the inner loop
        stays cheap; a ``budget.max_memo_entries`` cap never aborts,
        it only stops memoizing once the table is full.

        ``on_progress``, when given, is called with the live
        :class:`SearchStats` at the same amortized cadence as the
        deadline check (every ``check_interval`` visited states) --
        the tracing hook for long searches.  One final call is always
        made when the search leaves (success, failure, or budget
        abort), so even searches shorter than one interval emit at
        least one tick; only the expired-before-starting deadline
        raise skips it, since no search ran.

        How aggressively the search prunes commuting interleavings is
        fixed at construction time by the engine's ``por`` mode; see
        the class docstring.

        ``profile``, when given, must provide the ``charge_*`` methods
        of :class:`repro.obs.profile.SearchProfile`; every visited
        state, dead-end and backtrack is attributed to the frontier
        action ``(eid, kind, obj)`` chosen at the innermost enclosing
        branch (states before the first branch go to the root pseudo
        key).  Profiling is a pure observer: it never changes which
        states are visited, and with ``profile=None`` (the default)
        every hook site is a single ``is not None`` test.
        """
        if stats is None:
            stats = SearchStats()
        if budget is not None:
            if budget.max_states is not None and (
                max_states is None or budget.max_states < max_states
            ):
                max_states = budget.max_states
            deadline = budget.deadline
            check_interval = budget.check_interval
            memo_cap = budget.max_memo_entries
        else:
            deadline = None
            check_interval = 256
            memo_cap = None
        stats.termination = TERMINATED_COMPLETE
        if deadline is not None and time.monotonic() >= deadline:
            stats.termination = TERMINATED_DEADLINE
            raise SearchBudgetExceeded(
                "search deadline already expired before starting",
                resource=DEADLINE,
            )
        interval = 0
        for eid in interval_events:
            interval |= 1 << eid
        gates, unsat = self._prepare_constraints(constraints)
        if unsat:
            return None

        n = self._n
        full = self._full_mask
        kind = self._kind
        sem_of = self._sem_of
        var_of = self._var_of
        join_need = self._join_need
        begin_pre = self._begin_pre
        binary = self.binary_semaphores

        # state: (begun, ended, varmask, semcounts).  The failure memo
        # maps each failed state to the *sleep set* (an eid bitmask) the
        # failure was established under: failing while more actions
        # sleep is the weaker fact, so an entry is reusable exactly when
        # the stored mask is a subset of the current sleep set.  Without
        # sleep sets every mask is 0 and the dict degenerates to the
        # plain visited-set of the hoist-only engine.
        start = (0, 0, self._var_initial_mask, self._sem_initial)
        failed: Dict[Tuple[int, int, int, Tuple[int, ...]], int] = {}
        path: List[Point] = []
        por_sleep = self.por == "sleep"
        reduce_free = self.por != "off"
        indep = self._indep_mask
        sync_dep = self._sync_dep_mask
        # count of sleep-set consultations (skips, prunes, conditional
        # memo hits).  A failed subtree that never consulted the sleep
        # set failed unconditionally, so its memo entry can store mask 0
        # and be reused under any future sleep set.
        sleep_consults = [0]

        if profile is not None:
            profile.charge_search()
            profile_keys = self._profile_keys()
            # Stack of attribution keys: the chosen action at each
            # enclosing *branch* (free/hoisted actions don't push).
            profile_stack = [_PROFILE_ROOT]
        else:
            profile_keys = None
            profile_stack = None

        free_end = self._free_end
        p_mask = self._p_mask
        post_mask = self._post_mask
        clear_mask = self._clear_mask
        wait_mask = self._wait_mask
        nvar = len(post_mask)

        def dynamically_free(eid: int, ended: int, counts) -> bool:
            k = kind[eid]
            if k is EventKind.SEM_P:
                si = sem_of[eid]
                return counts[si] >= _popcount(p_mask[si] & ~ended)
            if k is EventKind.SEM_V:
                # only reached in binary mode (counting V is statically
                # free): once no P on s remains, the clamp cannot matter
                return not (p_mask[sem_of[eid]] & ~ended)
            if k is EventKind.POST:
                return not (clear_mask[var_of[eid]] & ~ended)
            if k is EventKind.CLEAR:
                return not (wait_mask[var_of[eid]] & ~ended)
            return False

        v_mask = self._v_mask
        nsem = len(p_mask)
        binary = self.binary_semaphores

        def dead_end(ended: int, varmask: int, counts) -> bool:
            # some Wait can never be satisfied again
            for vi in range(nvar):
                if (
                    not ((varmask >> vi) & 1)
                    and (wait_mask[vi] & ~ended)
                    and not (post_mask[vi] & ~ended)
                ):
                    return True
            if binary:
                # with clamping, token supply can only shrink: once the
                # current count plus all remaining Vs cannot cover the
                # remaining Ps, completion is impossible.  (For counting
                # semaphores this quantity is invariant, so the check
                # would never fire -- skip it.)
                for si in range(nsem):
                    if counts[si] + _popcount(v_mask[si] & ~ended) < _popcount(
                        p_mask[si] & ~ended
                    ):
                        return True
            return False

        # enabled_actions hoist classification: 0 = genuine branch list,
        # 1 = persistent singleton hoist (nothing dependent with the
        # action can run before it -- safe to filter a sleep set
        # through), 2 = singleton hoist justified by exactness alone
        # (sleep sets must wake every sleeper).
        _BRANCH, _HOIST_PERSISTENT, _HOIST_WAKE = 0, 1, 2

        def enabled_actions(state):
            """Enabled actions; a singleton when a free action exists
            (partial-order reduction, see module docstring)."""
            begun, ended, varmask, counts = state
            acts: List[Tuple[int, int]] = []
            not_begun = full & ~begun
            # begins / atomic executions
            m = not_begun
            while m:
                low = m & -m
                eid = low.bit_length() - 1
                m ^= low
                if begin_pre[eid] & ~ended:
                    continue
                g = gates.get((eid, 0))
                if g and not all(self._point_scheduled(p, begun, ended) for p in g):
                    continue
                if interval & low:
                    if reduce_free:
                        stats.hoisted += 1
                        # begins have no effect and enable nothing but
                        # their own end: free AND persistent
                        return [(eid, _BEGIN)], _HOIST_PERSISTENT
                    acts.append((eid, _BEGIN))
                    continue
                # atomic: also needs end-side legality
                if self._end_ok(eid, ended, varmask, counts, kind, sem_of, var_of, join_need):
                    ge = gates.get((eid, 1))
                    if ge and not all(self._point_scheduled(p, begun | low, ended) for p in ge):
                        continue
                    if reduce_free and (free_end[eid] or dynamically_free(eid, ended, counts)):
                        stats.hoisted += 1
                        if not por_sleep or not (sync_dep[eid] & ~ended):
                            return [(eid, _ATOMIC)], _HOIST_PERSISTENT
                        return [(eid, _ATOMIC)], _HOIST_WAKE
                    acts.append((eid, _ATOMIC))
            # ends of begun interval events
            m = begun & ~ended
            while m:
                low = m & -m
                eid = low.bit_length() - 1
                m ^= low
                if not self._end_ok(eid, ended, varmask, counts, kind, sem_of, var_of, join_need):
                    continue
                ge = gates.get((eid, 1))
                if ge and not all(self._point_scheduled(p, begun, ended) for p in ge):
                    continue
                if reduce_free and (free_end[eid] or dynamically_free(eid, ended, counts)):
                    stats.hoisted += 1
                    if not por_sleep or not (sync_dep[eid] & ~ended):
                        return [(eid, _END)], _HOIST_PERSISTENT
                    return [(eid, _END)], _HOIST_WAKE
                acts.append((eid, _END))
            return acts, _BRANCH

        def apply(state, act):
            begun, ended, varmask, counts = state
            eid, phase = act
            bit = 1 << eid
            if phase == _BEGIN:
                return (begun | bit, ended, varmask, counts)
            # end or atomic: apply completion effect
            k = kind[eid]
            if k is EventKind.SEM_P:
                si = sem_of[eid]
                counts = counts[:si] + (counts[si] - 1,) + counts[si + 1 :]
            elif k is EventKind.SEM_V:
                si = sem_of[eid]
                newc = counts[si] + 1
                if binary and newc > 1:
                    newc = 1
                counts = counts[:si] + (newc,) + counts[si + 1 :]
            elif k is EventKind.POST:
                varmask |= 1 << var_of[eid]
            elif k is EventKind.CLEAR:
                varmask &= ~(1 << var_of[eid])
            return (begun | bit, ended | bit, varmask, counts)

        def dfs(state, sleep: int) -> bool:
            stats.states_visited += 1
            if profile is not None:
                profile.charge_state(profile_stack[-1])
            if max_states is not None and stats.states_visited > max_states:
                stats.termination = TERMINATED_STATES
                raise SearchBudgetExceeded(
                    f"search exceeded {max_states} states "
                    f"(visited={stats.states_visited})",
                    resource=STATES,
                )
            if (
                deadline is not None or on_progress is not None
            ) and stats.states_visited % check_interval == 0:
                if on_progress is not None:
                    on_progress(stats)
                if deadline is not None and time.monotonic() >= deadline:
                    stats.termination = TERMINATED_DEADLINE
                    raise SearchBudgetExceeded(
                        f"search deadline expired after {stats.states_visited} states",
                        resource=DEADLINE,
                    )
            begun, ended, varmask, counts = state
            if ended == full:
                return True
            if dead_end(ended, varmask, counts):
                stats.dead_ends += 1
                if profile is not None:
                    profile.charge_dead_end(profile_stack[-1])
                return False
            acts, hoist = enabled_actions(state)
            if not acts:
                stats.dead_ends += 1
                if profile is not None:
                    profile.charge_dead_end(profile_stack[-1])
                return False
            branching = profile is not None and len(acts) > 1
            explored = 0
            for act in acts:
                eid, phase = act
                bit = 1 << eid
                if por_sleep:
                    if hoist == _HOIST_WAKE:
                        # the hoist is exact but not persistent: a
                        # dependent partner may run before eid on some
                        # completion, so wake every sleeper below
                        child_sleep = 0
                    elif sleep & bit:
                        sleep_consults[0] += 1
                        if hoist:
                            # persistent singleton asleep: every
                            # completion from here starts with an action
                            # a sibling branch already covered
                            return False
                        continue
                    else:
                        child_sleep = (sleep | explored) & indep[eid]
                else:
                    child_sleep = 0
                stats.actions_tried += 1
                nxt = apply(state, act)
                if memoize:
                    prev = failed.get(nxt)
                    if prev is not None and not (prev & ~child_sleep):
                        stats.memo_hits += 1
                        if prev:
                            sleep_consults[0] += 1
                        explored |= bit
                        continue
                if phase == _BEGIN:
                    path.append(Point(eid, False))
                elif phase == _END:
                    path.append(Point(eid, True))
                else:
                    path.append(Point(eid, False))
                    path.append(Point(eid, True))
                if branching:
                    choice_key = profile_keys[eid]
                    profile.charge_choice(choice_key)
                    profile_stack.append(choice_key)
                mark = sleep_consults[0]
                subtree_found = dfs(nxt, child_sleep)
                if branching:
                    profile_stack.pop()
                    if not subtree_found:
                        profile.charge_backtrack(choice_key)
                if subtree_found:
                    return True
                explored |= bit
                if phase == _ATOMIC:
                    path.pop()
                path.pop()
                if memoize:
                    # a subtree that never consulted its sleep set
                    # failed unconditionally: store mask 0 so the entry
                    # is reusable under any future sleep set
                    entry = child_sleep if sleep_consults[0] != mark else 0
                    prev = failed.get(nxt)
                    if prev is None:
                        if memo_cap is None or len(failed) < memo_cap:
                            failed[nxt] = entry
                        else:
                            stats.memo_suppressed += 1
                    elif not (entry & ~prev):
                        # strictly stronger (subset) fact: replace
                        failed[nxt] = entry
            return False

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * n + 100))
        t0 = time.monotonic()
        try:
            found = dfs(start, 0)
        finally:
            sys.setrecursionlimit(old_limit)
            stats.elapsed += time.monotonic() - t0
            # guarantee at least one progress tick per search: short
            # searches never hit the amortized interval above, and
            # consumers (status board, trace) key off ticks
            if on_progress is not None:
                on_progress(stats)
        stats.found = found
        return list(path) if found else None

    @staticmethod
    def _end_ok(eid, ended, varmask, counts, kind, sem_of, var_of, join_need) -> bool:
        k = kind[eid]
        if k is EventKind.SEM_P:
            return counts[sem_of[eid]] > 0
        if k is EventKind.WAIT:
            return bool((varmask >> var_of[eid]) & 1)
        if k is EventKind.JOIN:
            return not (join_need[eid] & ~ended)
        return True

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    def find_feasible_schedule(self, **kw) -> Optional[List[Point]]:
        """Any legal serial schedule (all events atomic), or None."""
        return self.search(**kw)

    def is_completable(self, **kw) -> bool:
        return self.search(**kw) is not None
