"""Observability: trace sinks, metrics, progress, and the guarantee
that a trace re-aggregates into exactly the live planner report.

The load-bearing property is exactness: every ``query`` span carries
the same per-tier increments the scan's
:class:`~repro.solve.planner.PlannerReport` accumulated, so
``repro trace summarize`` reproduces the report byte-for-byte --
including spans shipped home by supervised pool workers.
"""

import json
import signal
import threading

import pytest

from repro.budget import Budget
from repro.cli import main as cli_main
from repro.lang.ast import Assign, Const, ProcessDef, Program, SemP, SemV
from repro.lang.interpreter import run_program
from repro.lang.scheduler import FixedScheduler
from repro.model import serialize
from repro.obs import (
    SERVE_PHASE_KINDS,
    FailsafeSink,
    JsonlTraceSink,
    MetricsRegistry,
    NullSink,
    RecordingSink,
    ScanProgress,
    SearchProfile,
    TraceError,
    iter_trace,
    merge_profiles,
    planner_metrics,
    read_trace,
    scan_metrics,
    summarize_serve_trace,
    summarize_trace,
    validate_record,
)
from repro.obs.profile import ROOT_KEY
from repro.races.detector import RaceDetector
from repro.solve.planner import PlannerReport, QueryPlanner
from repro.solve.context import SolveContext
from repro.supervise import SupervisedScanner
from repro.supervise.checkpoint import _defer_sigint
from repro.util.fileio import atomic_write_text

from tests.test_supervise import masking_execution


def ordered_pipeline(width: int = 4):
    """``width`` writers of one variable chained by semaphores -- every
    conflicting pair is *infeasible*, and proving each one costs the
    engine an exhaustive (pair-local) search.  Engine-heavy, with no
    cross-pair state, so serial and parallel scans must produce
    byte-identical search profiles."""
    procs = [ProcessDef("w0", [Assign("x", Const(0)), SemV("s0")])]
    for k in range(1, width):
        procs.append(
            ProcessDef(
                f"w{k}",
                [SemP(f"s{k-1}"), Assign("x", Const(k)), SemV(f"s{k}")],
            )
        )
    schedule = ["w0", "w0"]
    for k in range(1, width):
        schedule += [f"w{k}"] * 3
    return run_program(
        Program(procs), FixedScheduler(schedule)
    ).to_execution()


# ----------------------------------------------------------------------
class TestRecordValidation:
    def test_accepts_extra_fields(self):
        validate_record(
            {"kind": "pair", "t": 1.0, "a": 0, "b": 1, "status": "feasible",
             "worker": 3, "resource": "crash"}
        )

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceError, match="unknown trace record kind"):
            validate_record({"kind": "nope", "t": 0.0})

    def test_rejects_missing_timestamp(self):
        with pytest.raises(TraceError, match="timestamp"):
            validate_record({"kind": "engine.tick", "states": 5})

    def test_rejects_wrong_field_type(self):
        with pytest.raises(TraceError, match="states"):
            validate_record({"kind": "engine.tick", "t": 0.0, "states": "5"})

    def test_checks_tier_entries(self):
        rec = {
            "kind": "query", "t": 0.0, "relation": "CCW", "decided": True,
            "tiers": [{"tier": "engine", "states": 1, "elapsed": "fast",
                       "answered": True}],
        }
        with pytest.raises(TraceError, match="elapsed"):
            validate_record(rec)


class TestRecordingSink:
    def test_bounded_with_drop_accounting(self):
        sink = RecordingSink(capacity=2)
        for n in range(5):
            sink.emit({"kind": "engine.tick", "states": n})
        drained = sink.drain()
        assert [r["states"] for r in drained[:-1]] == [0, 1]
        assert drained[-1] == {
            "kind": "trace.drops", "dropped": 3, "t": drained[-1]["t"]
        }
        # drain resets: the next batch starts clean
        assert sink.drain() == []

    def test_no_drops_record_when_nothing_dropped(self):
        sink = RecordingSink()
        sink.emit({"kind": "engine.tick", "states": 1})
        drained = sink.drain()
        assert len(drained) == 1 and drained[0]["kind"] == "engine.tick"

    def test_null_sink_is_disabled(self):
        assert not NullSink().enabled
        NullSink().emit({"anything": True})  # never raises


class TestJsonlTraceSink:
    def test_header_then_records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path) as sink:
            sink.emit({"kind": "engine.tick", "states": 7})
        records = read_trace(path)
        assert records[0]["kind"] == "trace.start"
        assert records[1] == {"kind": "engine.tick", "states": 7,
                              "t": records[1]["t"]}

    def test_max_records_drops_and_accounts(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path, max_records=3) as sink:
            for n in range(10):
                sink.emit({"kind": "engine.tick", "states": n})
        records = read_trace(path)
        # header + 2 ticks fit the cap; the accounting record bypasses it
        assert [r["kind"] for r in records] == [
            "trace.start", "engine.tick", "engine.tick", "trace.drops"
        ]
        assert records[-1]["dropped"] == 8

    def test_read_trace_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(json.dumps(
            {"kind": "engine.tick", "t": 0.0, "states": 1}) + "\n")
        with pytest.raises(TraceError, match="not a repro-trace"):
            read_trace(str(path))

    def test_read_trace_rejects_corruption(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path) as sink:
            sink.emit({"kind": "engine.tick", "states": 1})
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(TraceError, match="corrupt"):
            read_trace(path)


# ----------------------------------------------------------------------
class TestPlannerReportRoundTrips:
    def _report(self, seed):
        r = PlannerReport()
        for k in range(seed):
            r.queries += 1
            r.record_answer("engine", states=10 * k, elapsed=0.25 * k)
            r.record_cost("hmw", states=k, elapsed=0.125)
        r.unknown = seed // 2
        return r

    def test_snapshot_round_trip_is_exact(self):
        r = self._report(5)
        assert PlannerReport.from_snapshot(r.snapshot()).snapshot() == r.snapshot()

    def test_merge_is_associative_over_snapshots(self):
        a, b, c = self._report(2), self._report(3), self._report(4)
        left = PlannerReport()
        left.merge(a.snapshot()); left.merge(b.snapshot()); left.merge(c.snapshot())
        bc = PlannerReport()
        bc.merge(b.snapshot()); bc.merge(c.snapshot())
        right = PlannerReport()
        right.merge(a.snapshot()); right.merge(bc.snapshot())
        assert left.snapshot() == right.snapshot()

    def test_snapshot_floats_survive_json(self):
        r = self._report(7)
        redone = json.loads(json.dumps(r.snapshot()))
        assert PlannerReport.from_snapshot(redone).snapshot() == r.snapshot()


# ----------------------------------------------------------------------
class TestTraceMatchesReport:
    """The acceptance criterion: summarize(trace) == live report, exactly."""

    def test_serial_scan(self, tmp_path):
        exe = masking_execution(3)
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path) as sink:
            report = RaceDetector(exe).feasible_races(tracer=sink)
        summary = summarize_trace(path)
        assert summary.planner.snapshot() == report.planner.snapshot()
        assert summary.pairs == {"feasible": 3}
        assert not summary.interrupted

    def test_parallel_scan_folds_worker_spans(self, tmp_path):
        exe = masking_execution(3)
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path) as sink:
            scanner = SupervisedScanner(jobs=2, tracer=sink)
            report = RaceDetector(exe).feasible_races(
                runner=scanner, tracer=sink
            )
        summary = summarize_trace(path)
        assert summary.planner.snapshot() == report.planner.snapshot()
        assert summary.worker_events.get("spawn", 0) >= 1
        # every query span came from a worker and says which one
        queries = [r for r in read_trace(path) if r["kind"] == "query"]
        assert queries and all("worker" in r for r in queries)

    def test_query_planner_traces_memo_hits_too(self):
        exe = masking_execution(2)
        sink = RecordingSink()
        planner = QueryPlanner(SolveContext(exe), tracer=sink)
        planner.feasible_verdict()
        planner.feasible_verdict()  # memo hit: still one span per call
        queries = [r for r in sink.drain() if r["kind"] == "query"]
        assert len(queries) == 2
        rebuilt = PlannerReport()
        for rec in queries:
            rebuilt.queries += 1
            if not rec["decided"]:
                rebuilt.unknown += 1
            for entry in rec["tiers"]:
                if entry["answered"]:
                    rebuilt.record_answer(entry["tier"], states=entry["states"],
                                          elapsed=entry["elapsed"])
                else:
                    rebuilt.record_cost(entry["tier"], states=entry["states"],
                                        elapsed=entry["elapsed"])
        assert rebuilt.snapshot() == planner.report.snapshot()

    def test_engine_on_progress_fires_at_check_interval(self):
        from repro.core.engine import FeasibilityEngine

        exe = masking_execution(3)
        seen = []
        FeasibilityEngine(exe).search(
            budget=Budget.of(check_interval=2),
            on_progress=lambda stats: seen.append(stats.states_visited),
        )
        # amortized ticks land on interval multiples; the final tick
        # (guaranteed, wherever the search ends) is exempt
        assert seen and all(n % 2 == 0 for n in seen[:-1])

    def test_attach_tracer_throttles_engine_ticks(self):
        exe = masking_execution(3)
        sink = RecordingSink()
        planner = QueryPlanner(SolveContext(exe), tracer=sink)
        planner.attach_tracer(sink, tick_min_interval=3600.0)
        assert planner.ctx.on_progress is not None

        class _Stats:
            states_visited = 512

        planner.ctx.on_progress(_Stats())  # first tick always emits
        planner.ctx.on_progress(_Stats())  # throttled away
        ticks = [r for r in sink.drain() if r["kind"] == "engine.tick"]
        assert len(ticks) == 1 and ticks[0]["states"] == 512

    def test_untraced_planner_emits_nothing(self):
        exe = masking_execution(2)
        planner = QueryPlanner(SolveContext(exe))
        planner.feasible_verdict()
        assert planner.tracer is None
        assert planner.ctx.on_progress is None


# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_render(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", labels={"x": "1"}).inc(2)
        reg.gauge("g", "a gauge").set(1.5)
        h = reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.render()
        assert '# TYPE c_total counter' in text
        assert 'c_total{x="1"} 2' in text
        assert "g 1.5" in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_count 2" in text

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_scan_metrics_from_report(self):
        exe = masking_execution(2)
        report = RaceDetector(exe).feasible_races()
        reg = scan_metrics(
            MetricsRegistry(), report, elapsed=1.25,
            worker_restarts=2, checkpoint_writes=3,
        )
        text = reg.render()
        assert 'repro_pairs_classified_total{status="feasible"} 2' in text
        assert f"repro_planner_queries_total {report.planner.queries}" in text
        assert "repro_worker_restarts_total 2" in text
        assert "repro_checkpoint_writes_total 3" in text
        assert "repro_scan_elapsed_seconds 1.25" in text
        assert "repro_scan_interrupted 0" in text

    def test_planner_metrics_alone(self):
        exe = masking_execution(2)
        report = RaceDetector(exe).feasible_races()
        text = planner_metrics(MetricsRegistry(), report.planner).render()
        assert "repro_tier_answered_total" in text


# ----------------------------------------------------------------------
class _FakeStream:
    def __init__(self):
        self.chunks = []

    def write(self, s):
        self.chunks.append(s)

    def flush(self):
        pass

    def isatty(self):
        return False


class TestScanProgress:
    class _C:
        def __init__(self, status):
            self.status = status

    def test_line_counts_and_rate(self):
        p = ScanProgress(10, stream=_FakeStream(), enabled=True,
                         min_interval=0.0)
        for status in ("feasible", "feasible", "infeasible", "unknown"):
            p.update(self._C(status))
        line = p.line()
        assert "scan 4/10" in line
        assert "feasible=2 infeasible=1 unknown=1" in line
        assert "pairs/s" in line and "eta" in line

    def test_eta_capped_by_budget(self):
        budget = Budget.of(timeout=0.0)  # already expired
        p = ScanProgress(100, budget=budget, stream=_FakeStream(),
                         enabled=True, min_interval=0.0)
        p.update(self._C("feasible"))
        assert "budget caps" in p.line()

    def test_disabled_without_tty(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        p = ScanProgress(5, stream=_FakeStream())
        assert not p.enabled

    def test_env_forces_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        stream = _FakeStream()
        p = ScanProgress(2, stream=stream, min_interval=0.0)
        assert p.enabled
        p.update(self._C("feasible"))
        p.finish()
        assert any("scan 1/2" in c for c in stream.chunks)


# ----------------------------------------------------------------------
class TestDeferSigint:
    def test_holds_handler_until_block_exits(self):
        if threading.current_thread() is not threading.main_thread():
            pytest.skip("needs the main thread")
        calls = []
        old = signal.signal(signal.SIGINT, lambda s, f: calls.append(s))
        try:
            with _defer_sigint():
                signal.raise_signal(signal.SIGINT)
                assert calls == []  # held across the critical section
            assert calls == [signal.SIGINT]
        finally:
            signal.signal(signal.SIGINT, old)

    def test_reraises_keyboard_interrupt_after_block(self):
        if threading.current_thread() is not threading.main_thread():
            pytest.skip("needs the main thread")
        old = signal.signal(signal.SIGINT, signal.default_int_handler)
        try:
            with pytest.raises(KeyboardInterrupt):
                with _defer_sigint():
                    signal.raise_signal(signal.SIGINT)
                    witnessed_inside = True  # the write completes first
            assert witnessed_inside
        finally:
            signal.signal(signal.SIGINT, old)


# ----------------------------------------------------------------------
class TestCliObservability:
    @pytest.fixture
    def exe_file(self, tmp_path):
        path = tmp_path / "exe.json"
        serialize.save(masking_execution(3), str(path))
        return str(path)

    def test_races_trace_summarize_matches_report(
        self, exe_file, tmp_path, capsys
    ):
        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.txt")
        rc = cli_main([
            "races", exe_file, "--jobs", "2",
            "--trace", trace, "--metrics", metrics,
        ])
        assert rc == 0
        scan_out = capsys.readouterr().out
        assert cli_main(["trace", "summarize", trace]) == 0
        summary_out = capsys.readouterr().out
        # the per-tier planner block is reproduced verbatim
        planner_block = scan_out[scan_out.index("planner:"):].strip()
        assert planner_block in summary_out
        for rec in read_trace(trace):
            validate_record(rec)
        text = open(metrics).read()
        assert 'repro_pairs_classified_total{status="feasible"} 3' in text

    def test_races_trace_references_saved_report(self, exe_file, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        saved = tmp_path / "report.json"
        rc = cli_main([
            "races", exe_file, "--trace", trace, "--save", str(saved),
        ])
        assert rc == 0
        doc = json.loads(saved.read_text())
        assert doc["trace"] == {"path": trace, "format": "repro-trace"}

    def test_analyze_pair_trace_and_metrics(self, tmp_path, capsys):
        src = tmp_path / "fig1.rp"
        src.write_text(
            "shared X = 0\n"
            "proc main {\n"
            "  fork {\n"
            "    proc t1 { post ev @post_left; X := 1 }\n"
            "    proc t2 { if X == 1 { post ev @post_right } else { wait ev } }\n"
            "    proc t3 { wait ev @w3 }\n"
            "  }\n"
            "  join\n"
            "}\n"
        )
        exe_file = str(tmp_path / "fig1.json")
        assert cli_main(["run", str(src), "--priority", "main,t1,t2,t3",
                         "--save", exe_file]) == 0
        capsys.readouterr()
        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.txt")
        rc = cli_main([
            "analyze", exe_file, "--pair", "post_left", "w3",
            "--relation", "ccw", "--trace", trace, "--metrics", metrics,
        ])
        assert rc == 0
        assert any(r["kind"] == "query" for r in read_trace(trace))
        assert "repro_planner_queries_total" in open(metrics).read()

    def test_resume_with_changed_plan_is_refused(
        self, exe_file, tmp_path, capsys
    ):
        journal = str(tmp_path / "scan.jsonl")
        assert cli_main(["races", exe_file, "--checkpoint", journal]) == 0
        capsys.readouterr()
        rc = cli_main([
            "races", exe_file, "--checkpoint", journal, "--resume",
            "--plan", "best-effort",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "solver plan" in err and "refusing to resume" in err
        assert err.strip().count("\n") == 0  # one loud line, not a traceback

    def test_resume_with_same_plan_succeeds(self, exe_file, tmp_path, capsys):
        journal = str(tmp_path / "scan.jsonl")
        assert cli_main(["races", exe_file, "--checkpoint", journal]) == 0
        rc = cli_main(["races", exe_file, "--checkpoint", journal, "--resume"])
        assert rc == 0
        assert "resume: reusing 3 journaled pair(s)" in capsys.readouterr().out


# ----------------------------------------------------------------------
class TestSearchProfile:
    def test_charge_snapshot_roundtrip_and_merge(self):
        p = SearchProfile()
        p.charge_search()
        key = (4, "P", "sem")
        p.charge_choice(key)
        p.charge_state(key)
        p.charge_state(key)
        p.charge_dead_end(key)
        p.charge_backtrack(key)
        p.charge_state(ROOT_KEY)
        snap = p.snapshot()
        assert snap["searches"] == 1
        assert snap["choices"]["4|P|sem"] == {
            "chosen": 1, "states": 2, "dead_ends": 1, "backtracks": 1,
        }
        assert SearchProfile.from_snapshot(snap).snapshot() == snap
        # merging a snapshot dict and a profile object both work
        q = SearchProfile()
        q.merge(snap)
        q.merge(p)
        assert q.searches == 2
        assert q.tally(key).states == 4
        assert merge_profiles([snap, None, snap]).total_states == 6

    def test_hot_events_excludes_forced_prefix(self):
        p = SearchProfile()
        p.charge_state(ROOT_KEY)
        p.charge_state((1, "V", "s"))
        hot = p.hot_events()
        assert [key for key, _ in hot] == [(1, "V", "s")]
        text = "\n".join(p.describe())
        assert "e1:V(s)" in text and "(forced prefix)" in text

    def test_describe_orders_by_states_then_eid(self):
        p = SearchProfile()
        for _ in range(3):
            p.charge_state((7, "P", "a"))
        p.charge_state((2, "P", "b"))
        p.charge_state((5, "P", "b"))
        hot = p.hot_events(top=2)
        assert [key for key, _ in hot] == [(7, "P", "a"), (2, "P", "b")]


class TestProfilerIsAPureObserver:
    def test_serial_scan_unchanged_by_profiling(self):
        exe = ordered_pipeline(4)
        plain = RaceDetector(exe).feasible_races()
        profile = SearchProfile()
        profiled = RaceDetector(exe).feasible_races(profile=profile)
        assert [(c.a, c.b, c.status) for c in profiled.classifications] == [
            (c.a, c.b, c.status) for c in plain.classifications
        ]
        # identical work, state for state -- not merely the same verdicts
        assert (
            profiled.planner.tiers["engine"].states
            == plain.planner.tiers["engine"].states
        )
        # and the profiler accounted for every one of those states
        assert profile.total_states == plain.planner.tiers["engine"].states
        assert profile.searches > 0
        assert profiled.profile is profile

    def test_parallel_profile_equals_serial_profile(self):
        exe = ordered_pipeline(4)
        serial = SearchProfile()
        RaceDetector(exe).feasible_races(profile=serial)
        parallel = SearchProfile()
        RaceDetector(exe).feasible_races(
            runner=SupervisedScanner(jobs=2), profile=parallel
        )
        assert serial.total_states > 0
        assert parallel.snapshot() == serial.snapshot()

    def test_profile_record_lands_in_trace(self, tmp_path):
        exe = ordered_pipeline(3)
        trace = str(tmp_path / "t.jsonl")
        profile = SearchProfile()
        with JsonlTraceSink(trace) as sink:
            RaceDetector(exe).feasible_races(tracer=sink, profile=profile)
        records = [r for r in read_trace(trace) if r["kind"] == "profile"]
        assert len(records) == 1
        assert records[0]["profile"] == profile.snapshot()


# ----------------------------------------------------------------------
class TestIterTrace:
    def test_streams_the_same_records_read_trace_returns(self, tmp_path):
        exe = masking_execution(2)
        trace = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(trace) as sink:
            RaceDetector(exe).feasible_races(tracer=sink)
        streamed = list(iter_trace(trace))
        assert streamed == read_trace(trace)
        assert streamed[0]["kind"] == "trace.start"

    def test_is_lazy(self, tmp_path):
        # a deliberately corrupt tail must not stop the reader from
        # yielding the good prefix -- proof the file is not slurped
        path = tmp_path / "t.jsonl"
        good = json.dumps(
            {"kind": "trace.start", "format": "repro-trace",
             "version": 2, "t": 0.0}
        )
        path.write_text(good + "\n" + "{corrupt\n")
        it = iter_trace(str(path))
        assert next(it)["kind"] == "trace.start"
        with pytest.raises(TraceError, match="line 2"):
            next(it)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty trace"):
            list(iter_trace(str(path)))

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "pair", "t": 0.0, "a": 0, "b": 1,
                        "status": "feasible"}) + "\n"
        )
        with pytest.raises(TraceError, match="not a repro-trace file"):
            list(iter_trace(str(path)))

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "trace.start", "format": "repro-trace",
                        "version": 99, "t": 0.0}) + "\n"
        )
        with pytest.raises(TraceError, match="unsupported trace version"):
            list(iter_trace(str(path)))


# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_replaces_whole_file_and_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old content that is much longer than the new one")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]

    def test_metrics_write_is_atomic(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        path = tmp_path / "m.txt"
        reg.write(str(path))
        assert "g 1" in path.read_text()
        assert list(tmp_path.iterdir()) == [path]

    def test_report_save_is_atomic(self, tmp_path):
        exe = masking_execution(2)
        report = RaceDetector(exe).feasible_races()
        path = tmp_path / "report.json"
        serialize.save_report(report, str(path))
        assert serialize.load_report(str(path)).pairs() == report.pairs()
        assert list(tmp_path.iterdir()) == [path]


# ----------------------------------------------------------------------
class TestProgressEtaAndNewline:
    class _C:
        def __init__(self, status):
            self.status = status

    def test_eta_from_rate_without_budget(self):
        p = ScanProgress(10, stream=_FakeStream(), enabled=True,
                         min_interval=0.0)
        p.update(self._C("feasible"))
        line = p.line()
        assert "eta " in line and "eta ?" not in line

    def test_eta_unknown_before_first_pair(self):
        p = ScanProgress(10, stream=_FakeStream(), enabled=True,
                         min_interval=0.0)
        p.done = 0
        assert "eta ?" in p.line(p._t0)  # zero elapsed, zero rate

    def test_finish_always_terminates_the_line(self):
        stream = _FakeStream()
        p = ScanProgress(2, stream=stream, enabled=True, min_interval=0.0)
        p.update(self._C("feasible"))
        p.update(self._C("feasible"))  # renders immediately (done==total)
        p.finish()
        assert stream.chunks[-1] == "\n"
        assert "".join(stream.chunks).count("\n") == 1

    def test_finish_writes_nothing_when_never_rendered(self):
        stream = _FakeStream()
        p = ScanProgress(5, stream=stream, enabled=True, min_interval=0.0)
        p.finish()
        assert stream.chunks == []


# ----------------------------------------------------------------------
class TestCliProfile:
    @pytest.fixture
    def exe_file(self, tmp_path):
        path = tmp_path / "exe.json"
        serialize.save(ordered_pipeline(4), str(path))
        return str(path)

    def _hot_table(self, out):
        return out[out.index("profile:"):].strip()

    def test_parallel_cli_profile_matches_serial(
        self, exe_file, tmp_path, capsys
    ):
        """The acceptance criterion: `repro trace profile` on a
        2-worker scan's trace prints the same hot-events table as the
        serial scan's."""
        outputs = {}
        for label, jobs in (("serial", []), ("parallel", ["--jobs", "2"])):
            trace = str(tmp_path / f"{label}.jsonl")
            prof = str(tmp_path / f"{label}.json")
            rc = cli_main(
                ["races", exe_file, "--trace", trace, "--profile", prof]
                + jobs
            )
            assert rc == 0
            scan_out = capsys.readouterr().out
            assert cli_main(["trace", "profile", trace]) == 0
            outputs[label] = self._hot_table(capsys.readouterr().out)
            # the table printed at scan end is the one in the trace
            assert outputs[label] in scan_out
            assert json.load(open(prof))["searches"] > 0
        assert outputs["parallel"] == outputs["serial"]

    def test_trace_without_profile_records_fails_loudly(
        self, exe_file, tmp_path, capsys
    ):
        trace = str(tmp_path / "t.jsonl")
        assert cli_main(["races", exe_file, "--trace", trace]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "profile", trace]) == 2
        assert "no profile records" in capsys.readouterr().err

    def test_trace_timeline_reports_workers(
        self, exe_file, tmp_path, capsys
    ):
        trace = str(tmp_path / "t.jsonl")
        assert cli_main(
            ["races", exe_file, "--jobs", "2", "--trace", trace]
        ) == 0
        capsys.readouterr()
        assert cli_main(["trace", "timeline", trace]) == 0
        out = capsys.readouterr().out
        assert "worker timeline: 2 worker(s)" in out
        assert "worker 0:" in out and "worker 1:" in out

    def test_trace_timeline_serial_fallback(
        self, exe_file, tmp_path, capsys
    ):
        trace = str(tmp_path / "t.jsonl")
        assert cli_main(["races", exe_file, "--trace", trace]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "timeline", trace]) == 0
        assert "serial scan" in capsys.readouterr().out


# ----------------------------------------------------------------------
def _serve_trace(path, records):
    """Write a trace file holding ``records`` (header added by sink)."""
    with JsonlTraceSink(str(path)) as sink:
        for rec in records:
            sink.emit(dict(rec))
    return str(path)


def _request_span(rid, *, endpoint="POST /query", status=200,
                  elapsed=0.25, **extra):
    rec = {"kind": "serve.request", "request_id": rid,
           "endpoint": endpoint, "status": status, "elapsed": elapsed}
    rec.update(extra)
    return rec


class TestServeTraceV3:
    """Round-trip and validation coverage for the serve.* span kinds."""

    def test_every_serve_kind_round_trips(self, tmp_path):
        records = [_request_span("req-1", query_kind="hb")]
        records += [
            {"kind": kind, "request_id": "req-1", "elapsed": 0.01}
            for kind in SERVE_PHASE_KINDS
        ]
        path = _serve_trace(tmp_path / "t.jsonl", records)
        back = list(iter_trace(path))
        assert back[0]["kind"] == "trace.start"
        assert back[0]["version"] == 3
        body = back[1:]
        assert [rec["kind"] for rec in body] == (
            ["serve.request"] + list(SERVE_PHASE_KINDS)
        )
        for rec in body:
            assert rec["request_id"] == "req-1"
        # extra fields (query_kind) survive the round trip
        assert body[0]["query_kind"] == "hb"

    def test_missing_request_id_rejected(self):
        with pytest.raises(TraceError, match="request_id"):
            validate_record(
                {"kind": "serve.dispatch", "t": 0.0, "elapsed": 0.1}
            )

    def test_missing_status_rejected(self):
        with pytest.raises(TraceError, match="status"):
            validate_record(
                {"kind": "serve.request", "t": 0.0, "request_id": "r",
                 "endpoint": "POST /query", "elapsed": 0.1}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError, match="unknown trace record kind"):
            validate_record({"kind": "serve.teapot", "t": 0.0})

    def test_wrong_type_rejected(self):
        with pytest.raises(TraceError, match="elapsed"):
            validate_record(
                {"kind": "serve.response", "t": 0.0, "request_id": "r",
                 "elapsed": "fast"}
            )

    def test_v2_scan_trace_still_loads_and_summarizes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"kind": "trace.start", "format": "repro-trace",
             "version": 2, "t": 0.0},
            {"kind": "query", "t": 1.0, "relation": "CCW", "a": 0, "b": 1,
             "decided": True,
             "tiers": [{"tier": "structural", "states": 0,
                        "elapsed": 0.001, "answered": True}]},
        ]
        path.write_text(
            "".join(json.dumps(rec) + "\n" for rec in lines)
        )
        assert [r["kind"] for r in iter_trace(str(path))] == [
            "trace.start", "query",
        ]
        summary = summarize_trace(str(path))
        assert summary.planner.queries == 1
        assert summary.planner.tiers["structural"].answered == 1


class _ExplodingSink:
    enabled = True
    dropped = 0

    def __init__(self):
        self.closed = False

    def emit(self, record):
        raise OSError("disk on fire")

    def close(self):
        self.closed = True
        raise OSError("close failed too")


class TestFailsafeSink:
    def test_converts_emit_failures_into_counted_drops(self):
        sink = FailsafeSink(_ExplodingSink())
        for _ in range(3):
            sink.emit({"kind": "serve.response"})  # must not raise
        assert sink.dropped == 3
        assert sink.total_dropped() == 3

    def test_total_dropped_includes_inner_bounded_drops(self):
        inner = RecordingSink(capacity=1)
        sink = FailsafeSink(inner)
        sink.emit({"kind": "pair.start", "t": 0.0, "a": 0, "b": 1})
        sink.emit({"kind": "pair.start", "t": 0.0, "a": 0, "b": 2})
        assert sink.dropped == 0  # nothing *failed*; the bound shed one
        assert inner.dropped == 1
        assert sink.total_dropped() == 1

    def test_close_failure_swallowed(self):
        inner = _ExplodingSink()
        FailsafeSink(inner).close()  # must not raise
        assert inner.closed

    def test_delegates_enabled_and_passes_records_through(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(str(path)) as inner:
            sink = FailsafeSink(inner)
            assert sink.enabled
            sink.emit(_request_span("req-9"))
        back = list(iter_trace(str(path)))
        assert back[-1]["request_id"] == "req-9"
        assert FailsafeSink(NullSink()).enabled is False


class TestServeTraceSummary:
    def _trace(self, tmp_path):
        records = []
        # 20 queries at 10ms..200ms, one slow outlier, one PUT
        for i in range(1, 21):
            records.append(
                _request_span(f"q-{i:02d}", elapsed=i / 100.0,
                              query_kind="hb")
            )
            records.append({"kind": "serve.dispatch",
                            "request_id": f"q-{i:02d}", "elapsed": i / 200.0})
        records.append(
            _request_span("slowpoke", elapsed=9.0, status=422,
                          query_kind="race")
        )
        records.append(
            _request_span("put-1", endpoint="POST /executions",
                          elapsed=0.05)
        )
        records.append(
            {"kind": "query", "t": 0.0, "relation": "CCW", "a": 0, "b": 1,
             "decided": True,
             "tiers": [{"tier": "engine", "states": 42,
                        "elapsed": 0.5, "answered": True}]}
        )
        records.append({"kind": "trace.drops", "dropped": 7})
        return _serve_trace(tmp_path / "t.jsonl", records)

    def test_counts_percentiles_and_phases(self, tmp_path):
        s = summarize_serve_trace(self._trace(tmp_path))
        assert s.requests == {"POST /query": 21, "POST /executions": 1}
        assert s.total_requests == 22
        assert s.statuses["POST /query"] == {"200": 20, "422": 1}
        assert s.kinds == {"hb": 20, "race": 1, "-": 1}
        p50, p95, p99 = s.percentiles("POST /query")
        assert p50 == pytest.approx(0.11)
        assert p95 == pytest.approx(0.20)
        assert p99 == pytest.approx(9.0)
        count, total = s.phases["serve.dispatch"]
        assert count == 20
        assert total == pytest.approx(sum(i / 200.0 for i in range(1, 21)))
        assert s.planner.tiers["engine"].states == 42
        assert s.dropped == 7

    def test_slowest_is_bounded_and_sorted(self, tmp_path):
        s = summarize_serve_trace(self._trace(tmp_path), slowest=3)
        assert len(s.slowest) == 3
        assert [rec["request_id"] for rec in s.slowest] == [
            "slowpoke", "q-20", "q-19",
        ]

    def test_describe_names_the_culprit(self, tmp_path):
        text = summarize_serve_trace(self._trace(tmp_path)).describe()
        assert "POST /query: count=21" in text
        assert "id=slowpoke" in text
        assert "dispatch" in text
        assert "dropped" in text

    def test_cli_serve_summary(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert cli_main(["trace", "serve-summary", trace]) == 0
        out = capsys.readouterr().out
        assert "requests: 22" in out
        assert "id=slowpoke" in out

    def test_cli_serve_summary_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        assert cli_main(["trace", "serve-summary", str(path)]) == 2
        assert "corrupt" in capsys.readouterr().err


class TestPrometheusLabelEscaping:
    def test_reserved_characters_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "c_total", labels={"path": 'she said "hi"\\\n'}
        ).inc()
        out = registry.render()
        assert 'c_total{path="she said \\"hi\\"\\\\\\n"} 1' in out

    def test_plain_values_untouched(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"x": "plain.value-1"}).inc(2)
        assert 'c_total{x="plain.value-1"} 2' in registry.render()
