"""Crash/retry policy for supervised pair classification.

A worker death is not always the pair's fault -- the host may have been
under memory pressure, the CPU cap may have been marginal -- so a
failed pair gets a bounded number of fresh attempts, spaced by
exponential backoff (so a systematically crashing pair cannot hot-loop
worker churn) and optionally with an *escalated* state budget, on the
theory that a pair which died near its cap may well be decidable just
past it.  When the attempts are spent, the pair is classified
``unknown`` with the resource that killed it, and the scan moves on.

Backoff is *jittered*: when several workers die of one shared cause (a
host-wide memory squeeze OOM-kills half the pool at once), pure
exponential backoff makes every replacement retry at the same instant
and re-create the very stampede that killed them.  Each retry's delay
is therefore scattered inside ``[delay * (1 - jitter), delay]`` by a
hash of ``(jitter_seed, key, attempt)`` -- fully deterministic, so
supervised scans stay reproducible (the same scan replays the same
delays), yet different tasks spread out instead of thundering back in
lockstep.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


def _jitter_fraction(seed: int, key: object, attempt: int) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` derived
    from the policy seed, the task key and the attempt number.

    sha256 rather than :func:`hash`: the builtin is salted per process
    (``PYTHONHASHSEED``), which would make delays differ between a scan
    and its resume -- exactly the nondeterminism jitter must not add.
    """
    blob = f"{seed}:{key!r}:{attempt}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised scan reacts to a failed pair attempt.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first failure (0 = fail immediately).
    backoff_base / backoff_factor:
        The ``k``-th retry is delayed ``base * factor**(k-1)`` seconds.
    state_escalation:
        Multiplier applied to the per-pair ``max_states`` cap on each
        retry (1.0 = same budget every attempt).
    jitter:
        Fraction of each delay scattered deterministically: retry
        ``k`` of task ``key`` waits between ``delay * (1 - jitter)``
        and the full ``delay``.  0.0 restores exact exponential
        backoff (and is the default so pre-jitter callers see
        identical timing).
    jitter_seed:
        Seed mixed into the jitter hash, so two pools supervising the
        same keys can still de-correlate from each other.
    """

    max_retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    state_escalation: float = 1.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def should_retry(self, failures: int) -> bool:
        """True when a pair that has failed ``failures`` times (>= 1)
        deserves another attempt."""
        return failures <= self.max_retries

    def delay(self, attempt: int, key: object = None) -> float:
        """Seconds to wait before dispatching retry ``attempt``
        (1-based).  ``key`` identifies the task (e.g. the pair) so
        concurrent retries of *different* tasks land at different
        instants; without one, jitter still varies by attempt only.
        """
        if attempt <= 0:
            return 0.0
        base = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        if self.jitter <= 0.0:
            return base
        frac = _jitter_fraction(self.jitter_seed, key, attempt)
        return base * (1.0 - self.jitter * frac)

    def escalated_states(
        self, max_states: Optional[int], attempt: int
    ) -> Optional[int]:
        """The per-pair state cap for ``attempt`` (0 = first try)."""
        if max_states is None or attempt <= 0 or self.state_escalation == 1.0:
            return max_states
        return max(1, int(max_states * (self.state_escalation ** attempt)))


__all__ = ["RetryPolicy"]
