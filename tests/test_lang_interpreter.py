"""Tests for the mini-language interpreter (sequential consistency)."""

import pytest

from repro.lang.ast import (
    Assign, BinOp, Clear, Const, Fork, If, Join, Local, LocalAssign,
    Post, ProcessDef, Program, SemP, SemV, Shared, Skip, UnOp, Wait, While,
)
from repro.lang.interpreter import DeadlockError, Interpreter, StepLimitExceeded, run_program
from repro.lang.scheduler import FixedScheduler, PriorityScheduler, RandomScheduler
from repro.model.events import EventKind


def single(name, *stmts):
    return Program([ProcessDef(name, list(stmts))])


class TestSequentialExecution:
    def test_assignment_and_arithmetic(self):
        prog = single(
            "p",
            Assign("x", Const(2)),
            Assign("y", BinOp("+", Shared("x"), Const(3))),
        )
        trace = run_program(prog)
        assert trace.final_shared == {"x": 2, "y": 5}

    def test_local_variables_not_shared(self):
        prog = single(
            "p",
            LocalAssign("t", Const(7)),
            Assign("x", Local("t")),
        )
        trace = run_program(prog)
        assert trace.final_shared == {"x": 7}
        # the local assignment performs no shared accesses
        assert trace.steps[0].accesses == ()

    def test_if_branches(self):
        prog = single(
            "p",
            Assign("x", Const(1)),
            If(BinOp("==", Shared("x"), Const(1)), [Assign("y", Const(10))], [Assign("y", Const(20))]),
        )
        assert run_program(prog).final_shared["y"] == 10
        prog2 = single(
            "p",
            Assign("x", Const(0)),
            If(BinOp("==", Shared("x"), Const(1)), [Assign("y", Const(10))], [Assign("y", Const(20))]),
        )
        assert run_program(prog2).final_shared["y"] == 20

    def test_while_loop(self):
        prog = single(
            "p",
            Assign("i", Const(0)),
            While(
                BinOp("<", Shared("i"), Const(4)),
                [Assign("i", BinOp("+", Shared("i"), Const(1)))],
            ),
        )
        assert run_program(prog).final_shared["i"] == 4

    def test_unop(self):
        prog = single("p", Assign("x", UnOp("not", Const(0))), Assign("y", UnOp("-", Const(5))))
        t = run_program(prog)
        assert t.final_shared == {"x": 1, "y": -5}

    def test_condition_reads_recorded(self):
        prog = single("p", Assign("x", Const(1)), If(BinOp(">", Shared("x"), Const(0)), [Skip()]))
        trace = run_program(prog)
        cond_step = trace.steps[1]
        assert any(a.variable == "x" and not a.is_write for a in cond_step.accesses)

    def test_step_limit(self):
        prog = single("p", While(Const(1), [Skip()]))
        with pytest.raises(StepLimitExceeded):
            run_program(prog, max_steps=50)


class TestSynchronization:
    def test_semaphore_blocks_until_signal(self):
        waiter = ProcessDef("waiter", [SemP("s"), Assign("done", Const(1))])
        signaler = ProcessDef("signaler", [Skip(), Skip(), SemV("s")])
        prog = Program([waiter, signaler])
        trace = run_program(prog, PriorityScheduler(["waiter", "signaler"]))
        kinds = [(s.process, s.kind) for s in trace.steps]
        # despite waiter priority, its P completes only after the V
        assert kinds.index(("signaler", EventKind.SEM_V)) < kinds.index(("waiter", EventKind.SEM_P))

    def test_wait_blocks_until_post(self):
        waiter = ProcessDef("waiter", [Wait("v"), Assign("done", Const(1))])
        poster = ProcessDef("poster", [Post("v")])
        trace = run_program(Program([waiter, poster]), PriorityScheduler(["waiter", "poster"]))
        assert trace.final_shared["done"] == 1

    def test_clear_reblocks(self):
        prog = Program(
            [ProcessDef("p", [Post("v"), Clear("v"), Wait("v")])]
        )
        with pytest.raises(DeadlockError):
            run_program(prog)

    def test_initially_posted_variable(self):
        prog = Program([ProcessDef("p", [Wait("v")])], var_initial={"v"})
        assert len(run_program(prog)) == 1

    def test_semaphore_initial_count(self):
        prog = Program([ProcessDef("p", [SemP("s"), SemP("s")])], sem_initial={"s": 2})
        assert len(run_program(prog)) == 2

    def test_deadlock_detected_with_trace(self):
        prog = Program([ProcessDef("p", [SemP("s")])])
        with pytest.raises(DeadlockError) as exc:
            run_program(prog)
        assert exc.value.blocked == ("p",)
        assert len(exc.value.trace) == 0


class TestForkJoin:
    def test_fork_runs_children(self):
        child = ProcessDef("child", [Assign("x", Const(1))])
        prog = Program([ProcessDef("main", [Fork([child]), Join()])])
        trace = run_program(prog)
        assert trace.final_shared["x"] == 1
        assert trace.steps[0].created == ("child",)
        assert trace.steps[-1].joined == ("child",)

    def test_join_waits_for_children(self):
        child = ProcessDef("child", [Skip(), Skip(), Assign("x", Const(1))])
        prog = Program([ProcessDef("main", [Fork([child]), Join(), Assign("y", Shared("x"))])])
        # main has priority; its join must still wait for the child
        trace = run_program(prog, PriorityScheduler(["main", "child"]))
        assert trace.final_shared["y"] == 1

    def test_join_without_fork_is_error(self):
        prog = Program([ProcessDef("main", [Join()])])
        with pytest.raises(RuntimeError, match="join without"):
            run_program(prog)

    def test_duplicate_child_names_get_suffixes(self):
        child = ProcessDef("w", [Skip()])
        prog = Program(
            [ProcessDef("main", [Fork([child, child]), Join()])]
        )
        trace = run_program(prog)
        assert set(trace.steps[0].created) == {"w", "w#2"}

    def test_nested_fork_join(self):
        inner = ProcessDef("inner", [Assign("z", Const(3))])
        outer = ProcessDef("outer", [Fork([inner]), Join(), Assign("w", Shared("z"))])
        prog = Program([ProcessDef("main", [Fork([outer]), Join()])])
        assert run_program(prog).final_shared == {"z": 3, "w": 3}

    def test_parent_of_recorded(self):
        child = ProcessDef("c", [Skip()])
        prog = Program([ProcessDef("main", [Fork([child]), Join()])])
        trace = run_program(prog)
        assert trace.parent_of["c"][0] == "main"


class TestSchedulers:
    def test_random_scheduler_reproducible(self):
        child1 = ProcessDef("a", [Assign("x", Const(1)), Skip(), Skip()])
        child2 = ProcessDef("b", [Assign("x", Const(2)), Skip(), Skip()])
        prog = Program([child1, child2])
        t1 = run_program(prog, 42)
        t2 = run_program(prog, 42)
        assert [s.process for s in t1.steps] == [s.process for s in t2.steps]

    def test_different_seeds_can_differ(self):
        child1 = ProcessDef("a", [Skip(), Skip(), Skip()])
        child2 = ProcessDef("b", [Skip(), Skip(), Skip()])
        prog = Program([child1, child2])
        orders = {
            tuple(s.process for s in run_program(prog, seed).steps)
            for seed in range(20)
        }
        assert len(orders) > 1

    def test_fixed_scheduler_replays_exactly(self):
        prog = Program([ProcessDef("a", [Skip()]), ProcessDef("b", [Skip()])])
        trace = run_program(prog, FixedScheduler(["b", "a"]))
        assert [s.process for s in trace.steps] == ["b", "a"]

    def test_fixed_scheduler_rejects_non_runnable(self):
        prog = Program([ProcessDef("a", [SemP("s")]), ProcessDef("b", [SemV("s")])])
        with pytest.raises(RuntimeError, match="runnable"):
            run_program(prog, FixedScheduler(["a", "b"]))

    def test_fixed_scheduler_exhaustion(self):
        prog = Program([ProcessDef("a", [Skip(), Skip()])])
        with pytest.raises(RuntimeError, match="exhausted"):
            run_program(prog, FixedScheduler(["a"]))

    def test_round_robin_cycles(self):
        from repro.lang.scheduler import RoundRobinScheduler

        prog = Program([ProcessDef("a", [Skip(), Skip()]), ProcessDef("b", [Skip(), Skip()])])
        trace = run_program(prog, RoundRobinScheduler())
        assert [s.process for s in trace.steps] == ["a", "b", "a", "b"]
