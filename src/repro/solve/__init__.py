"""Solver-portfolio backend layer: one tiered planner for every query.

Public surface:

* :class:`~repro.solve.query.RelationQuery` / ``BackendAnswer`` /
  ``Backend`` -- the backend protocol;
* :data:`~repro.solve.backends.BACKENDS`,
  :data:`~repro.solve.backends.DEFAULT_PLAN`,
  :data:`~repro.solve.backends.BEST_EFFORT_PLAN`,
  :func:`~repro.solve.backends.resolve_plan` -- the registry;
* :class:`~repro.solve.context.SolveContext` -- shared per-execution
  precomputation (reachability bitsets, conflict index, witness cache);
* :class:`~repro.solve.planner.QueryPlanner` /
  :class:`~repro.solve.planner.PlannerReport` -- the escalation ladder
  and its accounting.
"""

from repro.solve.backends import (
    BACKENDS,
    BEST_EFFORT_PLAN,
    DEFAULT_PLAN,
    resolve_plan,
)
from repro.solve.context import EMPTY_DROP, SolveContext
from repro.solve.planner import PlannerReport, QueryPlanner, TierTally, tier_of
from repro.solve.query import (
    CCB,
    CCW,
    CHB,
    FEASIBLE,
    PRIMITIVES,
    Backend,
    BackendAnswer,
    RelationQuery,
)
from repro.solve.witnesses import WitnessCache

__all__ = [
    "BACKENDS",
    "BEST_EFFORT_PLAN",
    "Backend",
    "BackendAnswer",
    "CCB",
    "CCW",
    "CHB",
    "DEFAULT_PLAN",
    "EMPTY_DROP",
    "FEASIBLE",
    "PRIMITIVES",
    "PlannerReport",
    "QueryPlanner",
    "RelationQuery",
    "SolveContext",
    "TierTally",
    "WitnessCache",
    "resolve_plan",
    "tier_of",
]
