"""Cross-cutting property-based tests: the Table 1 algebra.

The dualities here are consequences of the *definitions* (Section 3.2),
so they must hold for every execution regardless of synchronization
style, dependence structure or feasibility:

* per-execution trichotomy lifts to: ``MCW = not COW``, ``MOW = not CCW``,
  ``MHB(a,b) = not CHB(b,a) and not CCW(a,b)``;
* symmetry of the CW/OW relations;
* MHB is a strict partial order (intersection of strict partial orders);
* CHB contains MHB; CCW contains MCW; COW contains MOW (could-have
  generalizes must-have whenever F is non-empty);
* monotonicity in ``D``: ignoring dependences enlarges ``F``, so
  must-relations shrink and could-relations grow.
"""

from hypothesis import given, settings

from repro.core.queries import OrderingQueries
from repro.core.relations import OrderingAnalyzer, RelationName
from repro.util.relations import is_strict_partial_order, is_symmetric

from tests.strategies import (
    medium_semaphore_executions,
    overlay_executions,
    small_event_executions,
)


class TestDualities:
    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_mcw_is_complement_of_cow(self, exe):
        ana = OrderingAnalyzer(exe)
        assert ana.relation(RelationName.MCW) == ana.relation(RelationName.COW).complement()

    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_mow_is_complement_of_ccw(self, exe):
        ana = OrderingAnalyzer(exe)
        assert ana.relation(RelationName.MOW) == ana.relation(RelationName.CCW).complement()

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_mhb_decomposition(self, exe):
        q = OrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b:
                    assert q.mhb(a, b) == ((not q.chb(b, a)) and (not q.ccw(a, b)))

    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_cow_decomposition(self, exe):
        q = OrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b:
                    assert q.cow(a, b) == (q.chb(a, b) or q.chb(b, a))


class TestShapeProperties:
    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_symmetric_relations(self, exe):
        ana = OrderingAnalyzer(exe)
        for name in (RelationName.MCW, RelationName.CCW, RelationName.MOW, RelationName.COW):
            assert is_symmetric(ana.relation(name)), name

    @given(medium_semaphore_executions())
    @settings(max_examples=20, deadline=None)
    def test_mhb_strict_partial_order(self, exe):
        assert is_strict_partial_order(OrderingAnalyzer(exe).relation(RelationName.MHB))

    @given(small_event_executions())
    @settings(max_examples=20, deadline=None)
    def test_could_contains_must(self, exe):
        ana = OrderingAnalyzer(exe)
        q = ana.queries
        if not q.has_feasible_execution():
            return
        assert ana.relation(RelationName.MHB).issubset(ana.relation(RelationName.CHB))
        assert ana.relation(RelationName.MCW).issubset(ana.relation(RelationName.CCW))
        assert ana.relation(RelationName.MOW).issubset(ana.relation(RelationName.COW))

    @given(medium_semaphore_executions())
    @settings(max_examples=15, deadline=None)
    def test_mhb_implies_mcb(self, exe):
        q = OrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b and q.mhb(a, b):
                    assert q.mcb(a, b)

    @given(medium_semaphore_executions())
    @settings(max_examples=15, deadline=None)
    def test_static_order_implies_mhb(self, exe):
        q = OrderingQueries(exe)
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b and q.statically_ordered(a, b):
                    assert q.mhb(a, b)


class TestDependenceMonotonicity:
    @given(overlay_executions())
    @settings(max_examples=15, deadline=None)
    def test_ignoring_d_shrinks_must_grows_could(self, exe):
        with_d = OrderingAnalyzer(exe, include_dependences=True)
        without_d = OrderingAnalyzer(exe, include_dependences=False)
        assert without_d.relation(RelationName.MHB).issubset(with_d.relation(RelationName.MHB))
        assert with_d.relation(RelationName.CHB).issubset(without_d.relation(RelationName.CHB))
        assert with_d.relation(RelationName.CCW).issubset(without_d.relation(RelationName.CCW))


class TestObservedExecutionMembership:
    @given(medium_semaphore_executions())
    @settings(max_examples=15, deadline=None)
    def test_observed_schedule_consistent_with_must_relations(self, exe):
        """The observed execution is a member of F, so every must-have
        ordering must hold in it."""
        q = OrderingQueries(exe)
        pos = {eid: i for i, eid in enumerate(exe.observed_schedule)}
        n = len(exe)
        for a in range(n):
            for b in range(n):
                if a != b and q.mcb(a, b):
                    assert pos[a] < pos[b]
