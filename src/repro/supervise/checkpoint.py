"""Append-only JSONL checkpoint journal for long race scans.

A feasible-race scan is a batch of independent NP-hard queries; on real
workloads it runs for hours, and losing the batch to a Ctrl-C, an OOM
kill or a power cut is the single worst failure mode.  The journal
makes every classified pair durable the moment it is known:

* line 1 is a **header** carrying a fingerprint of the execution plus
  the budget options that affect classification, so a journal can never
  silently be replayed against a different scan;
* every further line is one
  :class:`~repro.races.detector.PairClassification` (witness included),
  written as a single short ``write()`` call, flushed and fsync'ed --
  a crash loses at most the line being written.  ``SIGINT`` is held
  for the duration of each append (and re-raised immediately after),
  so even an impatient double Ctrl-C can never tear the journal tail;
* on ``--resume`` a truncated *final* line (the torn write of the
  crash) is tolerated and dropped; corruption anywhere else fails
  loudly, as does a fingerprint mismatch.

The journal stores raw dicts and rebuilds objects against the caller's
execution, so it needs no pickling and stays human-greppable.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.model import serialize
from repro.model.execution import ProgramExecution
from repro.races.detector import PairClassification

JOURNAL_FORMAT = "repro-scan-journal"
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """The journal file is unusable (corrupt, wrong format/version)."""


class JournalMismatchError(JournalError):
    """The journal belongs to a different execution, budget or plan."""


#: signals held across a journal write.  SIGTERM rides along with
#: SIGINT: a supervisor (systemd, CI, the daemon's own drain) asking a
#: scan to stop must not tear the journal tail any more than a Ctrl-C.
_DEFERRED_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextmanager
def _defer_sigint():
    """Hold ``SIGINT`` *and* ``SIGTERM`` across one journal write.

    A first Ctrl-C (or a supervisor's SIGTERM) lands between records
    (the handler runs only after the write+fsync completes, via the
    immediate re-delivery below); a second impatient signal therefore
    can never interleave with a record and tear the journal tail.  Off
    the main thread -- or for a signal whose handler is not a Python
    callable -- signals cannot be swapped, and the plain write is
    already as safe as it was.  (Kept under its historical name; it
    now defers every signal in ``_DEFERRED_SIGNALS``.)
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    swapped: List[tuple] = []  # (signum, previous handler)
    pending: List[tuple] = []
    for signum in _DEFERRED_SIGNALS:
        previous = signal.getsignal(signum)
        if not callable(previous):
            # SIG_IGN/SIG_DFL/unknown: no Python handler would fire
            # mid-write for this signal, nothing to defer
            continue
        signal.signal(signum, lambda s, f: pending.append((s, f)))
        swapped.append((signum, previous))
    try:
        yield
    finally:
        handlers = {}
        for signum, previous in swapped:
            signal.signal(signum, previous)
            handlers[signum] = previous
        if pending:
            # deliver the first pending signal through its own previous
            # handler (normally raises KeyboardInterrupt / the daemon's
            # drain exception); later duplicates are dropped, matching
            # kernel coalescing of standard signals
            s, f = pending[0]
            handlers[s](s, f)


def scan_fingerprint(
    exe: ProgramExecution,
    *,
    drop_racing_dependences: bool = True,
    max_states: Optional[int] = None,
    per_pair_max_states: Optional[int] = None,
    plan: Optional[Sequence[str]] = None,
    por: str = "sleep",
) -> str:
    """Identity of one scan: the execution plus every option that can
    change a pair's classification, including the resolved solver
    ``plan`` (tier ladders differ in what they can decide, so replaying
    a journal written under another plan would silently mix verdicts
    of different strength) and the engine's ``por`` mode (reduction
    changes which searches fit a states budget, so resuming under a
    different mode would mix UNKNOWN verdicts of different meaning).

    Wall-clock timeouts are deliberately excluded -- they are
    nondeterministic across runs anyway, and a killed scan is normally
    resumed with a *fresh* time budget.
    """
    doc = {
        "execution": serialize.execution_to_dict(exe),
        "options": {
            "drop_racing_dependences": drop_racing_dependences,
            "max_states": max_states,
            "per_pair_max_states": per_pair_max_states,
            "plan": list(plan) if plan is not None else None,
            "por": por,
        },
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _parse_lines(
    path: str, *, expect_fingerprint: Optional[str] = None
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], int]:
    """Parse the journal at ``path``.

    Returns ``(header, pair records, valid_end)`` where ``valid_end``
    is the byte offset of the durable prefix -- everything past it is
    the torn final write of a killed scan (a record is only durable
    once its newline is).  Corruption *inside* the prefix fails loudly.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    segments = raw.split(b"\n")
    complete, tail = segments[:-1], segments[-1]
    valid_end = len(raw) - len(tail)
    if not complete:
        raise JournalError(f"{path}: empty or headerless journal")
    try:
        header = json.loads(complete[0])
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise JournalError(f"{path}: corrupt journal header")
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        raise JournalError(f"{path}: not a {JOURNAL_FORMAT} file")
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: unsupported journal version {header.get('version')!r} "
            f"(this library reads version {JOURNAL_VERSION})"
        )
    if (
        expect_fingerprint is not None
        and header.get("fingerprint") != expect_fingerprint
    ):
        raise JournalMismatchError(
            f"{path}: journal was written by a different scan (execution, "
            "budget options or solver plan changed); refusing to resume"
        )
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(complete[1:], start=2):
        try:
            rec = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise JournalError(f"{path}: corrupt journal line {lineno}")
        if isinstance(rec, dict) and rec.get("type") == "pair":
            records.append(rec)
    return header, records, valid_end


class CheckpointJournal:
    """Durable per-pair classification log; see the module docstring."""

    def __init__(self, path: str, fingerprint: str, fh, resumed=None) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._fh = fh
        #: raw pair records replayed from an existing journal (resume only)
        self.resumed_records: List[Dict[str, Any]] = list(resumed or [])

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str, fingerprint: str, *, resume: bool = False
    ) -> "CheckpointJournal":
        """Create a fresh journal at ``path``, or (``resume=True``, file
        exists) verify it and reopen for appending."""
        if resume and os.path.exists(path):
            _, records, valid_end = _parse_lines(
                path, expect_fingerprint=fingerprint
            )
            if valid_end < os.path.getsize(path):
                # chop the torn final write so appends start on a fresh line
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
            fh = open(path, "a")
            return cls(path, fingerprint, fh, resumed=records)
        fh = open(path, "w")
        journal = cls(path, fingerprint, fh)
        journal._append_record(
            {
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
        )
        return journal

    # ------------------------------------------------------------------
    def _append_record(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with _defer_sigint():
            # failpoint *inside* the signal deferral: an injected ENOSPC
            # exercises exactly the window a real write failure hits
            faults.fire("checkpoint.append")
            self._fh.write(line + "\n")
            self.flush()

    def append(self, classification: PairClassification) -> None:
        rec = serialize.classification_to_dict(classification)
        rec["type"] = "pair"
        self._append_record(rec)

    def flush(self) -> None:
        self._fh.flush()
        faults.fire("checkpoint.fsync")
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            with _defer_sigint():
                self.flush()
                self._fh.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def classifications(
        self, exe: ProgramExecution
    ) -> Dict[Tuple[int, int], PairClassification]:
        """The resumed records as real objects, keyed ``(a, b)`` (later
        duplicates win, though a well-formed journal has none)."""
        out: Dict[Tuple[int, int], PairClassification] = {}
        for rec in self.resumed_records:
            c = serialize.classification_from_dict(exe, rec)
            out[(c.a, c.b)] = c
        return out


def pair_count(path: str) -> int:
    """Number of pair records journaled at ``path`` (for tests/CI)."""
    _, records, _ = _parse_lines(path)
    return len(records)


__all__ = [
    "CheckpointJournal",
    "JournalError",
    "JournalMismatchError",
    "pair_count",
    "scan_fingerprint",
]
