"""Unit tests for the six relation queries (Table 1 semantics)."""

import pytest

from repro.core.queries import OrderingQueries
from repro.model.builder import ExecutionBuilder


class TestVPSemantics:
    """The canonical V/P pair on a zero semaphore (paper's interval T)."""

    def test_v_could_precede_p(self, vp_execution):
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        assert q.chb(v, p)

    def test_p_never_precedes_v(self, vp_execution):
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        assert not q.chb(p, v)

    def test_blocked_p_overlaps_v(self, vp_execution):
        """A P issued before the V completes has *begun*: the two
        operations can run concurrently (interval semantics)."""
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        assert q.ccw(v, p)

    def test_hence_no_must_happened_before(self, vp_execution):
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        assert not q.mhb(v, p)
        assert not q.mhb(p, v)

    def test_but_v_must_complete_before_p(self, vp_execution):
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        assert q.mcb(v, p)
        assert not q.mcb(p, v)
        assert q.ccb(v, p)
        assert not q.ccb(p, v)


class TestIndependentPair:
    def test_fully_unordered(self, independent_pair):
        exe, x, y = independent_pair
        q = OrderingQueries(exe)
        assert q.chb(x, y) and q.chb(y, x)
        assert q.ccw(x, y)
        assert q.cow(x, y)
        assert not q.mhb(x, y) and not q.mhb(y, x)
        assert not q.mcw(x, y)
        assert not q.mow(x, y)


class TestProgramOrder:
    def test_same_process_must_order(self):
        b = ExecutionBuilder()
        proc = b.process("p")
        x, y = proc.skip(), proc.skip()
        q = OrderingQueries(b.build())
        assert q.mhb(x, y)
        assert not q.chb(y, x)
        assert not q.ccw(x, y)
        assert q.mow(x, y)
        assert q.cow(x, y)


class TestEmptyFeasibleSet:
    """Universal relations hold vacuously; existentials are false."""

    def test_vacuous_semantics(self, deadlocked_execution):
        exe, x, y = deadlocked_execution
        q = OrderingQueries(exe)
        assert not q.has_feasible_execution()
        assert q.mhb(x, y) and q.mhb(y, x)
        assert q.mcw(x, y) and q.mow(x, y)
        assert not q.chb(x, y) and not q.ccw(x, y) and not q.cow(x, y)
        assert q.mcb(x, y) and not q.ccb(x, y)


class TestSelfPairs:
    def test_degenerate_self_semantics(self, independent_pair):
        exe, x, _ = independent_pair
        q = OrderingQueries(exe)
        assert not q.chb(x, x)
        assert not q.mhb(x, x)
        assert q.ccw(x, x)  # an event overlaps itself
        assert q.mcw(x, x)
        assert not q.cow(x, x)
        assert not q.mow(x, x)


class TestForkJoinOrderings:
    def test_fork_before_children_before_join(self, fork_join_execution):
        exe, f, c1, c2, j = fork_join_execution
        q = OrderingQueries(exe)
        # children begin only after the fork completes: interval ordering
        assert q.mhb(f.eid, c1) and q.mhb(f.eid, c2)
        # the join's *completion* waits for the children...
        assert q.mcb(c1, j) and q.mcb(c2, j)
        assert not q.chb(j, c1)
        # ... but the join can begin (blocked) while a child still runs,
        # so it is not must-happened-before in the interval sense
        assert not q.mhb(c1, j)
        assert q.ccw(c1, j)
        # the join is po-after the fork: genuine interval ordering
        assert q.mhb(f.eid, j)

    def test_siblings_unordered(self, fork_join_execution):
        exe, f, c1, c2, j = fork_join_execution
        q = OrderingQueries(exe)
        assert q.ccw(c1, c2)
        assert q.chb(c1, c2) and q.chb(c2, c1)
        assert not q.mow(c1, c2)


class TestDependenceOrderings:
    def build(self, include):
        b = ExecutionBuilder()
        w = b.process("writer").write("x")
        r = b.process("reader").read("x")
        b.dependence(w, r)
        return OrderingQueries(b.build(), include_dependences=include), w, r

    def test_dependence_forces_order(self):
        q, w, r = self.build(True)
        assert q.mhb(w, r)
        assert not q.ccw(w, r)

    def test_ignoring_dependences_releases_order(self):
        q, w, r = self.build(False)
        assert not q.mhb(w, r)
        assert q.ccw(w, r)
        assert q.chb(r, w)


class TestExplanations:
    def test_why_not_mhb_gives_counterexample(self, independent_pair):
        exe, x, y = independent_pair
        q = OrderingQueries(exe)
        w = q.why_not_mhb(x, y)
        assert w is not None
        assert w.happened_before(y, x) or w.concurrent(x, y)

    def test_why_not_mhb_none_when_mhb_holds(self):
        b = ExecutionBuilder()
        proc = b.process("p")
        x, y = proc.skip(), proc.skip()
        q = OrderingQueries(b.build())
        assert q.mhb(x, y)
        assert q.why_not_mhb(x, y) is None

    def test_relation_values_consistent(self, vp_execution):
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        vals = q.relation_values(v, p)
        assert vals == {
            "MHB": False, "CHB": True, "MCW": False,
            "CCW": True, "MOW": False, "COW": True,
        }


class TestWitnesses:
    def test_chb_witness_exhibits_ordering(self, independent_pair):
        exe, x, y = independent_pair
        q = OrderingQueries(exe)
        w = q.chb_witness(y, x)
        assert w is not None and w.happened_before(y, x)
        w.validate()

    def test_ccw_witness_exhibits_overlap(self, vp_execution):
        exe, v, p = vp_execution
        q = OrderingQueries(exe)
        w = q.ccw_witness(v, p)
        assert w is not None and w.concurrent(v, p)
        w.validate()

    def test_statically_ordered_pairs_short_circuit(self):
        b = ExecutionBuilder()
        proc = b.process("p")
        x, y = proc.skip(), proc.skip()
        q = OrderingQueries(b.build())
        assert q.statically_ordered(x, y)
        assert not q.statically_ordered(y, x)
        assert q.chb_witness(x, y) is q.feasible_witness()
