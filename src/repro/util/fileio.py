"""Atomic file writes shared by every snapshot-shaped output.

Metrics snapshots and saved reports are scraped and tailed while the
scan that writes them is still running, so a plain ``open(path, "w")``
exposes readers to torn files.  :func:`atomic_write_text` writes to
``path + ".tmp"``, fsyncs, and :func:`os.replace`\\ s into place --
readers see either the old complete snapshot or the new one, never a
prefix.  Dependency-free on purpose: both :mod:`repro.obs.metrics` and
:mod:`repro.model.serialize` use it, and those sit on opposite sides
of the package's import layering.
"""

from __future__ import annotations

import os


def atomic_write_text(path: str, text: str, *, fsync: bool = True) -> None:
    """Replace ``path``'s content with ``text`` atomically.

    The temporary sibling ``path + ".tmp"`` lives in the same directory
    so the final :func:`os.replace` stays on one filesystem (rename is
    only atomic within a filesystem).  ``fsync=False`` skips the
    durability barrier for callers that only need tear-freedom.
    """
    tmp = path + ".tmp"
    fh = open(tmp, "w")
    try:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    finally:
        fh.close()
    os.replace(tmp, path)


__all__ = ["atomic_write_text"]
