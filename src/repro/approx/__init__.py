"""Polynomial-time approximation algorithms from the paper's Section 4.

The paper's hardness results explain *why* the prior work computes only
approximations.  This package implements all three systems the paper
discusses, so the benchmark harness can measure exactly the gaps the
paper points out:

* :mod:`repro.approx.vectorclock` -- Lamport-style vector clocks over
  the *observed* execution with naive semaphore/event pairing; the
  classical "apparent ordering" baseline (and the unsound phase 1 of
  Helmbold/McDowell/Wang).
* :mod:`repro.approx.hmw` -- the Helmbold/McDowell/Wang three-phase
  *safe ordering* computation for counting-semaphore traces: sound but
  incomplete with respect to the exact must-orderings.
* :mod:`repro.approx.taskgraph` -- the Emrath/Ghosh/Padua *task graph*
  for event-style (Post/Wait/Clear) programs, whose blindness to
  shared-data dependences is exhibited by the paper's Figure 1.
"""

from repro.approx.vectorclock import VectorClockAnalysis
from repro.approx.hmw import HMWAnalysis, InfeasibleTraceError
from repro.approx.taskgraph import TaskGraph, TaskGraphEdge
from repro.approx.combined import BestEffortOrdering

__all__ = [
    "VectorClockAnalysis",
    "HMWAnalysis",
    "InfeasibleTraceError",
    "TaskGraph",
    "TaskGraphEdge",
    "BestEffortOrdering",
]
