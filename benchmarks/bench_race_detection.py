"""Experiment X4 -- the race-detection corollary (Conclusion).

"An implication of these results is that exhaustively detecting all
data races potentially exhibited by a given program execution is an
intractable problem."

Regenerated as a head-to-head between the polynomial *apparent*
detector (vector clocks on the observed pairing) and the exact
*feasible* detector (a CCW query per conflicting pair):

* on the masking family, apparent detection under-reports -- the
  observed V/P pairing hides races other feasible executions expose;
* the exact detector backs every report with a validated overlap
  witness;
* cost columns show the price of exactness growing with conflicting
  pairs, while the apparent detector stays flat;
* a ``jobs=2`` column scans the same pairs through the crash-isolated
  worker pool -- identical classifications, and the spawn overhead
  shows exactly when parallelism starts paying (many/hard pairs, not
  these toy widths).
"""

import time

from conftest import report, table

from repro.lang.ast import Assign, Const, ProcessDef, Program, SemP, SemV, Shared
from repro.lang.interpreter import run_program
from repro.lang.scheduler import FixedScheduler
from repro.races.detector import RaceDetector
from repro.supervise import SupervisedScanner
from repro.workloads.programs import figure1_execution


def masking_family(width: int):
    """``width`` writers each V once; a reader P's once then reads all
    written variables.  The observed run pairs the P with writer 0's V,
    apparently ordering that writer's data below the read -- feasibly,
    any single writer could have supplied the token."""
    procs = [
        ProcessDef(f"w{k}", [Assign(f"x{k}", Const(1)), SemV("s")])
        for k in range(width)
    ]
    reader_body = [SemP("s")] + [
        Assign(f"y{k}", Shared(f"x{k}")) for k in range(width)
    ]
    procs.append(ProcessDef("r", reader_body))
    prog = Program(procs)
    schedule = ["w0", "w0", "r"] + [
        x for k in range(1, width) for x in (f"w{k}", f"w{k}")
    ] + ["r"] * width
    return run_program(prog, FixedScheduler(schedule)).to_execution()


def run_study():
    workloads = [("figure1", figure1_execution())] + [
        (f"masking x{w}", masking_family(w)) for w in (2, 3, 4)
    ]
    rows = []
    for name, exe in workloads:
        detector = RaceDetector(exe)
        t0 = time.perf_counter()
        apparent = detector.apparent_races()
        t_apparent = time.perf_counter() - t0
        t0 = time.perf_counter()
        feasible = detector.feasible_races()
        t_feasible = time.perf_counter() - t0
        for race in feasible.races:
            race.witness.validate(include_dependences=False)
        t0 = time.perf_counter()
        supervised = RaceDetector(exe).feasible_races(
            runner=SupervisedScanner(jobs=2)
        )
        t_jobs2 = time.perf_counter() - t0
        rows.append(
            dict(
                name=name, exe=exe,
                pairs=feasible.conflicting_pairs_examined,
                apparent=len(apparent.races), feasible=len(feasible.races),
                missed=len(
                    set(map(frozenset, feasible.pairs()))
                    - set(map(frozenset, apparent.pairs()))
                ),
                supervised=supervised,
                serial_status=[
                    (c.a, c.b, c.status) for c in feasible.classifications
                ],
                t_apparent=t_apparent, t_feasible=t_feasible, t_jobs2=t_jobs2,
            )
        )
    return rows


def test_feasible_vs_apparent_races(benchmark):
    rows = benchmark(run_study)

    for r in rows:
        assert r["feasible"] >= r["apparent"] - 0  # exactness never under the masking family
        if r["name"].startswith("masking"):
            width = int(r["name"].split("x")[-1])
            # the race on x0 is masked by the accidental pairing
            assert r["missed"] >= 1
            assert r["feasible"] == width  # every writer's data races with its read
        # the crash-isolated pool is an execution strategy, not a
        # different detector: classifications must match the serial scan
        assert [
            (c.a, c.b, c.status) for c in r["supervised"].classifications
        ] == r["serial_status"]

    body = [
        [
            r["name"], len(r["exe"]), r["pairs"], r["apparent"], r["feasible"],
            r["missed"],
            f"{r['t_apparent'] * 1e3:.1f}ms", f"{r['t_feasible'] * 1e3:.1f}ms",
            f"{r['t_jobs2'] * 1e3:.1f}ms",
        ]
        for r in rows
    ]
    lines = table(
        ["workload", "|E|", "conflicting pairs", "apparent", "feasible",
         "missed by apparent", "apparent time", "feasible time",
         "feasible jobs=2"],
        body,
    )
    lines.append("")
    lines.append("every feasible race carries a replayed overlap witness; the")
    lines.append("apparent detector misses the pairing-masked races, and the")
    lines.append("exact detector's cost is what the corollary says it must be")
    report("race_detection", lines)
