"""Event-style synchronization variables (Post / Wait / Clear).

An event variable is a latch: ``Post`` sets it, ``Clear`` resets it,
``Wait`` blocks until it is set and does not consume the post.  This is
the synchronization style of Theorems 3 and 4; the paper stresses that
the ``Clear`` primitive is what lets two-process mutual exclusion be
built from event variables alone, and leaves the no-``Clear`` case as
an open problem (our engine answers individual instances either way,
but no polynomial algorithm is implied).
"""

from __future__ import annotations


class EventVariable:
    """A posted/cleared latch."""

    __slots__ = ("name", "posted", "initially_posted")

    def __init__(self, name: str, posted: bool = False):
        self.name = name
        self.posted = posted
        self.initially_posted = posted

    def can_wait(self) -> bool:
        """Whether a ``Wait`` could complete right now."""
        return self.posted

    def wait(self) -> None:
        if not self.posted:
            raise RuntimeError(f"Wait({self.name}) completed while cleared")

    def post(self) -> None:
        self.posted = True

    def clear(self) -> None:
        self.posted = False

    def reset(self) -> None:
        self.posted = self.initially_posted

    def copy(self) -> "EventVariable":
        v = EventVariable(self.name, self.initially_posted)
        v.posted = self.posted
        return v

    def __repr__(self) -> str:
        state = "posted" if self.posted else "cleared"
        return f"EventVariable({self.name!r}, {state})"
