"""The tiered query planner: one escalation ladder for every caller.

:class:`QueryPlanner` answers the primitive queries of
:mod:`repro.solve.query` by consulting its plan's backends cheapest
first, under the caller's per-call :class:`~repro.budget.Budget`.  On
top of the primitives it exposes the same three-valued relation
facades as ``OrderingQueries`` (``chb_verdict`` ... ``mcb_verdict``,
via the Table 1 dualities), so the query layer, the best-effort
analyzer and the race detector all route through one place.

Invariants the planner maintains:

* **soundness**: a definite verdict agrees with brute-force
  enumeration -- every backend is individually sound, so the first
  definite answer wins;
* **base feasibility first**: confirmation tiers need to know ``F`` is
  non-empty; the planner resolves that one fact lazily *through the
  ladder itself* (typically free via the observed schedule) and shares
  it in the context;
* **budget-independent memoization**: only definite verdicts are
  memoized (facts about the execution, not about a budget), so a query
  that came back ``UNKNOWN`` is genuinely retried when the caller
  relaxes the budget;
* **accounting**: every query is tallied per tier in a
  :class:`PlannerReport` -- supervised workers ship these home so a
  parallel scan still reports where its answers came from;
* **tracing**: with a :mod:`repro.obs.trace` sink attached
  (:meth:`QueryPlanner.attach_tracer`), every query emits one ``query``
  span whose per-tier entries are exactly the increments recorded into
  the report -- a trace re-aggregates into the same table.  The sink is
  duck-typed (``enabled`` + ``emit``) so this module never imports
  :mod:`repro.obs`, which imports it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.budget import Budget, Verdict
from repro.solve.backends import DEFAULT_PLAN, resolve_plan
from repro.solve.context import EMPTY_DROP, SolveContext
from repro.solve.query import CCB, CCW, CHB, FEASIBLE, RelationQuery


def tier_of(provenance: str) -> str:
    """Map a verdict's provenance tag back to its ladder tier name."""
    return "engine" if provenance == "exact" else provenance


@dataclass
class TierTally:
    """Per-tier accounting: queries settled and what they cost."""

    answered: int = 0
    states: int = 0
    elapsed: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "answered": self.answered,
            "states": self.states,
            "elapsed": self.elapsed,
        }


class PlannerReport:
    """Where a run's answers came from and what each tier cost.

    ``queries`` counts every primitive query posed (including the
    planner's internal feasibility resolution); ``unknown`` counts
    ladder fall-throughs.  Reports merge associatively, so per-worker
    and per-pair tallies aggregate into one scan-wide report.
    """

    def __init__(self) -> None:
        self.tiers: Dict[str, TierTally] = {}
        self.queries = 0
        self.unknown = 0

    # ------------------------------------------------------------------
    def _tally(self, tier: str) -> TierTally:
        tally = self.tiers.get(tier)
        if tally is None:
            tally = self.tiers[tier] = TierTally()
        return tally

    def record_answer(self, tier: str, *, states: int = 0, elapsed: float = 0.0) -> None:
        tally = self._tally(tier)
        tally.answered += 1
        tally.states += states
        tally.elapsed += elapsed

    def record_cost(self, tier: str, *, states: int = 0, elapsed: float = 0.0) -> None:
        """Charge a tier that tried and declined (or ran out)."""
        tally = self._tally(tier)
        tally.states += states
        tally.elapsed += elapsed

    # ------------------------------------------------------------------
    @property
    def answered(self) -> int:
        return sum(t.answered for t in self.tiers.values())

    def answered_below(self, tier: str = "engine") -> int:
        """Queries settled without reaching ``tier`` (the perf headline:
        how much of the truth was cheap)."""
        return sum(t.answered for name, t in self.tiers.items() if name != tier)

    def engine_states(self) -> int:
        tally = self.tiers.get("engine")
        return tally.states if tally is not None else 0

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "unknown": self.unknown,
            "tiers": {name: t.to_dict() for name, t in sorted(self.tiers.items())},
        }

    def merge(self, other) -> None:
        """Fold another report (or a snapshot dict) into this one."""
        data = other.snapshot() if isinstance(other, PlannerReport) else other
        self.queries += int(data.get("queries", 0))
        self.unknown += int(data.get("unknown", 0))
        for name, rec in data.get("tiers", {}).items():
            tally = self._tally(name)
            tally.answered += int(rec.get("answered", 0))
            tally.states += int(rec.get("states", 0))
            tally.elapsed += float(rec.get("elapsed", 0.0))

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "PlannerReport":
        report = cls()
        report.merge(data)
        return report

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"planner: {self.queries} queries, {self.answered} answered, "
            f"{self.unknown} unknown"
        ]
        for name, tally in sorted(self.tiers.items()):
            lines.append(
                f"  {name:<11} answered={tally.answered:<5} "
                f"states={tally.states:<8} elapsed={tally.elapsed * 1e3:.1f}ms"
            )
        return "\n".join(lines)


class QueryPlanner:
    """Cheapest-first escalation over a plan of registered backends."""

    def __init__(
        self,
        ctx: SolveContext,
        plan: Tuple[str, ...] = DEFAULT_PLAN,
        *,
        tracer=None,
    ) -> None:
        self.ctx = ctx
        self.plan = tuple(plan)
        self.backends = resolve_plan(self.plan)
        # backends that cannot reason about this execution's memory
        # model are skipped up front (never consulted, never tallied):
        # an SC-only tier answering a TSO query would be unsound, and
        # a skipped tier beats a silently wrong one
        model = ctx.exe.memory_model
        self.active_backends = tuple(
            b for b in self.backends if model in b.supported_models
        )
        self.report = PlannerReport()
        self.tracer = tracer  # duck-typed TraceSink (enabled + emit)
        self.board = None  # duck-typed StatusBoard (engine_tick)
        self._tick_min_interval = 0.25
        self._memo: Dict[RelationQuery, Verdict] = {}
        self._resolving_feasibility = False

    # ------------------------------------------------------------------
    def attach_tracer(self, sink, *, tick_min_interval: float = 0.25) -> None:
        """Route query spans to ``sink`` and arm the engine's progress
        ticks (throttled to one ``engine.tick`` per
        ``tick_min_interval`` seconds so deep searches stay cheap)."""
        self.tracer = sink
        self._tick_min_interval = tick_min_interval
        self._rearm_progress()

    def attach_board(self, board) -> None:
        """Publish engine progress to a live
        :class:`~repro.obs.server.StatusBoard` (duck-typed:
        ``engine_tick``) alongside any tracer; ``None`` detaches.  Both
        consumers share one ``on_progress`` callback so attaching one
        never silently disarms the other."""
        self.board = board
        self._rearm_progress()

    def _rearm_progress(self) -> None:
        hooks = []
        sink = self.tracer
        if sink is not None and sink.enabled:
            # -inf, not 0.0: monotonic clocks can start near zero (a
            # freshly booted host), and 0.0 would then swallow the
            # first tick for up to a full interval
            last = [float("-inf")]
            interval = self._tick_min_interval

            def trace_tick(stats) -> None:
                now = time.monotonic()
                if now - last[0] >= interval:
                    last[0] = now
                    sink.emit(
                        {"kind": "engine.tick", "states": stats.states_visited}
                    )

            hooks.append(trace_tick)
        if self.board is not None:
            hooks.append(self.board.engine_tick)  # throttles internally
        if not hooks:
            self.ctx.on_progress = None
        elif len(hooks) == 1:
            self.ctx.on_progress = hooks[0]
        else:
            self.ctx.on_progress = lambda stats: [h(stats) for h in hooks]

    def attach_profiler(self, profile) -> None:
        """Hand ``profile`` (a :class:`repro.obs.profile.SearchProfile`,
        duck-typed here) to every subsequent engine search so visited
        states are attributed to branch choice points.  ``None``
        detaches.  Profiling is a pure observer -- verdicts and
        ``states_visited`` are identical with it on or off."""
        self.ctx.profile = profile

    def _trace_query(
        self, query: RelationQuery, verdict: Verdict, attempts: List[Dict]
    ) -> None:
        self.tracer.emit(
            {
                "kind": "query",
                "relation": query.relation,
                "a": query.a,
                "b": query.b,
                "drop": len(query.drop),
                "decided": not verdict.is_unknown,
                "verdict": str(verdict.truth),
                "decided_by": None if verdict.is_unknown else verdict.provenance,
                "tiers": attempts,
            }
        )

    # ------------------------------------------------------------------
    def answer(
        self,
        query: RelationQuery,
        *,
        budget: Optional[Budget] = None,
        max_states: Optional[int] = None,
    ) -> Verdict:
        """Run the ladder for one primitive query (never raises)."""
        self.report.queries += 1
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        # per-tier attempts, mirroring the report increments one-for-one
        # so summarize(trace) reproduces the report exactly
        attempts: List[Dict] = []

        def answered(tier: str, states: int = 0, elapsed: float = 0.0) -> None:
            self.report.record_answer(tier, states=states, elapsed=elapsed)
            if traced:
                attempts.append(
                    {"tier": tier, "states": states, "elapsed": elapsed,
                     "answered": True}
                )

        def declined(tier: str, states: int = 0, elapsed: float = 0.0) -> None:
            self.report.record_cost(tier, states=states, elapsed=elapsed)
            if traced:
                attempts.append(
                    {"tier": tier, "states": states, "elapsed": elapsed,
                     "answered": False}
                )

        memo = self._memo.get(query)
        if memo is not None:
            answered(tier_of(memo.provenance))
            if traced:
                self._trace_query(query, memo, attempts)
            return memo
        if query.relation != FEASIBLE:
            self._ensure_base_feasibility(budget=budget, max_states=max_states)
            if self.ctx.feasible is False and not query.drop:
                # F is empty: every existential primitive is false.
                # (Relaxed drops have a larger F; their ladder decides.)
                verdict = Verdict.false(
                    self.ctx.feasible_provenance or "exact", stats=self.ctx.stats
                )
                self._memo[query] = verdict
                answered(tier_of(verdict.provenance))
                if traced:
                    self._trace_query(query, verdict, attempts)
                return verdict
        resource: Optional[str] = None
        try:
            for backend in self.active_backends:
                ans = backend.answer(
                    query, self.ctx, budget=budget, max_states=max_states
                )
                if ans is None:
                    continue
                if ans.decided:
                    self._memo[query] = ans.verdict
                    answered(backend.name, states=ans.states, elapsed=ans.elapsed)
                    if query.relation == FEASIBLE and not query.drop:
                        self.ctx.feasible = ans.verdict.is_true
                        self.ctx.feasible_provenance = ans.verdict.provenance
                    if traced:
                        self._trace_query(query, ans.verdict, attempts)
                    return ans.verdict
                resource = ans.verdict.resource or resource
                declined(backend.name, states=ans.states, elapsed=ans.elapsed)
        except BaseException:
            # an interrupted ladder (Ctrl-C mid-search) still flushes the
            # costs already charged, keeping the trace and the report in
            # agreement even on partial scans
            if traced:
                self._trace_query(query, Verdict.unknown(), attempts)
            raise
        self.report.unknown += 1
        verdict = Verdict.unknown(resource=resource, stats=self.ctx.stats)
        if traced:
            self._trace_query(query, verdict, attempts)
        return verdict

    def _ensure_base_feasibility(self, *, budget, max_states) -> None:
        """Resolve "is F non-empty" once, through the ladder itself."""
        if self.ctx.feasible is not None or self._resolving_feasibility:
            return
        self._resolving_feasibility = True
        try:
            self.answer(
                RelationQuery(FEASIBLE), budget=budget, max_states=max_states
            )
        finally:
            self._resolving_feasibility = False

    # ------------------------------------------------------------------
    # relation facades (the Table 1 dualities, in Kleene logic --
    # mirroring the historical OrderingQueries verdict algebra)
    # ------------------------------------------------------------------
    def feasible_verdict(
        self,
        *,
        drop: FrozenSet[Tuple[int, int]] = EMPTY_DROP,
        budget: Optional[Budget] = None,
        max_states: Optional[int] = None,
    ) -> Verdict:
        return self.answer(
            RelationQuery(FEASIBLE, drop=drop), budget=budget, max_states=max_states
        )

    def chb_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            return Verdict.false("trivial")
        drop = kw.pop("drop", EMPTY_DROP)
        return self.answer(RelationQuery(CHB, a, b, drop), **kw)

    def ccb_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            return Verdict.false("trivial")
        drop = kw.pop("drop", EMPTY_DROP)
        return self.answer(RelationQuery(CCB, a, b, drop), **kw)

    def ccw_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            # an event overlaps itself in every member of F
            drop = kw.pop("drop", EMPTY_DROP)
            fv = self.feasible_verdict(drop=drop, **kw)
            if fv.is_unknown:
                return fv
            return Verdict(
                fv.truth, fv.provenance, witness=fv.witness, stats=self.ctx.stats
            )
        drop = kw.pop("drop", EMPTY_DROP)
        return self.answer(RelationQuery(CCW, a, b, drop), **kw)

    def cow_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            return Verdict.false("trivial")
        first = self.chb_verdict(a, b, **kw)
        if first.is_true:
            return first
        second = self.chb_verdict(b, a, **kw)
        if second.is_true:
            return second
        if first.is_false and second.is_false:
            return Verdict.false(first.provenance, stats=self.ctx.stats)
        resource = first.resource or second.resource
        return Verdict.unknown(resource=resource, stats=self.ctx.stats)

    def mhb_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            fv = self.feasible_verdict(**kw)
            if fv.is_unknown:
                return Verdict.unknown(resource=fv.resource, stats=self.ctx.stats)
            return Verdict.of_bool(fv.is_false, "trivial", stats=self.ctx.stats)
        rev = self.chb_verdict(b, a, **kw)
        if rev.is_true:
            return Verdict.false(rev.provenance, witness=rev.witness, stats=self.ctx.stats)
        overlap = self.ccw_verdict(a, b, **kw)
        if overlap.is_true:
            return Verdict.false(
                overlap.provenance, witness=overlap.witness, stats=self.ctx.stats
            )
        if rev.is_false and overlap.is_false:
            provenance = (
                "exact" if rev.provenance == overlap.provenance == "exact"
                else "structural"
            )
            return Verdict.true(provenance, stats=self.ctx.stats)
        resource = rev.resource or overlap.resource
        return Verdict.unknown(resource=resource, stats=self.ctx.stats)

    def mow_verdict(self, a: int, b: int, **kw) -> Verdict:
        return self.ccw_verdict(a, b, **kw).negate()

    def mcw_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            return Verdict.true("trivial")
        return self.cow_verdict(a, b, **kw).negate()

    def mcb_verdict(self, a: int, b: int, **kw) -> Verdict:
        if a == b:
            fv = self.feasible_verdict(**kw)
            if fv.is_unknown:
                return Verdict.unknown(resource=fv.resource, stats=self.ctx.stats)
            return Verdict.of_bool(fv.is_false, "trivial", stats=self.ctx.stats)
        return self.ccb_verdict(b, a, **kw).negate()

    def relation_verdicts(self, a: int, b: int, **kw) -> Dict[str, Verdict]:
        return {
            "MHB": self.mhb_verdict(a, b, **kw),
            "CHB": self.chb_verdict(a, b, **kw),
            "MCW": self.mcw_verdict(a, b, **kw),
            "CCW": self.ccw_verdict(a, b, **kw),
            "MOW": self.mow_verdict(a, b, **kw),
            "COW": self.cow_verdict(a, b, **kw),
        }


__all__ = ["QueryPlanner", "PlannerReport", "TierTally", "tier_of"]
