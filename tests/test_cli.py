"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main

FIGURE1_SRC = """
shared X = 0
proc main {
  fork {
    proc t1 { post ev @post_left; X := 1 }
    proc t2 { if X == 1 { post ev @post_right } else { wait ev } }
    proc t3 { wait ev @w3 }
  }
  join
}
"""

DEADLOCK_SRC = """
proc a { wait v1; post v2 }
proc b { wait v2; post v1 }
"""

SAT_DIMACS = "p cnf 3 2\n1 2 3 0\n-1 -2 -3 0\n"
UNSAT_DIMACS = "p cnf 1 2\n1 0\n-1 0\n"


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "fig1.rp"
    path.write_text(FIGURE1_SRC)
    return str(path)


@pytest.fixture
def execution_file(tmp_path, program_file):
    out = tmp_path / "fig1.json"
    rc = main(["run", program_file, "--priority", "main,t1,t2,t3",
               "--save", str(out)])
    assert rc == 0
    return str(out)


class TestRun:
    def test_run_prints_trace(self, program_file, capsys):
        assert main(["run", program_file, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "final shared state" in out

    def test_run_saves_json_and_dot(self, tmp_path, program_file):
        json_out = tmp_path / "e.json"
        dot_out = tmp_path / "e.dot"
        rc = main(["run", program_file, "--priority", "main,t1,t2,t3",
                   "--save", str(json_out), "--dot", str(dot_out)])
        assert rc == 0
        assert json_out.exists() and "repro-execution" in json_out.read_text()
        assert dot_out.read_text().startswith("digraph")

    def test_run_reports_deadlock(self, tmp_path, capsys):
        path = tmp_path / "dead.rp"
        path.write_text(DEADLOCK_SRC)
        assert main(["run", str(path)]) == 1
        assert "DEADLOCK" in capsys.readouterr().out


class TestAnalyze:
    def test_summary(self, execution_file, capsys):
        assert main(["analyze", execution_file]) == 0
        out = capsys.readouterr().out
        for name in ("MHB", "CHB", "MCW", "CCW", "MOW", "COW"):
            assert name in out

    def test_pair_query(self, execution_file, capsys):
        rc = main(["analyze", execution_file, "--pair", "post_left", "post_right",
                   "--relation", "mhb"])
        assert rc == 0
        assert "MHB(post_left, post_right) = True" in capsys.readouterr().out

    def test_pair_all_relations(self, execution_file, capsys):
        main(["analyze", execution_file, "--pair", "post_left", "w3"])
        out = capsys.readouterr().out
        assert "MHB(post_left, w3)" in out and "CCW(post_left, w3)" in out

    def test_ignore_deps_changes_answer(self, execution_file, capsys):
        main(["analyze", execution_file, "--pair", "post_left", "post_right",
              "--relation", "mhb", "--ignore-deps"])
        assert "= False" in capsys.readouterr().out

    def test_witness_printed_for_ccw(self, execution_file, capsys):
        main(["analyze", execution_file, "--pair", "post_left", "w3",
              "--relation", "ccw"])
        out = capsys.readouterr().out
        assert "overlaps" in out

    def test_matrix(self, execution_file, capsys):
        main(["analyze", execution_file, "--matrix", "mhb"])
        assert "X" in capsys.readouterr().out


class TestRaces:
    def test_apparent_only(self, execution_file, capsys):
        assert main(["races", execution_file]) == 0
        assert "apparent races: 1" in capsys.readouterr().out

    def test_feasible_with_witness(self, execution_file, capsys):
        assert main(["races", execution_file, "--feasible", "--witnesses"]) == 0
        out = capsys.readouterr().out
        assert "feasible races: 1" in out and "witness for" in out


class TestBudgetedCli:
    """Budget flags degrade gracefully: three-valued output, a distinct
    exit status for partial answers, and never a traceback."""

    def test_races_expired_deadline_exits_unknown(self, execution_file, capsys):
        rc = main(["races", execution_file, "--feasible", "--timeout", "0"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "unknown" in out
        assert "undecided under the budget" in out

    def test_races_generous_budget_still_succeeds(self, execution_file, capsys):
        rc = main(["races", execution_file, "--feasible", "--timeout", "60",
                   "--per-pair-states", "200000"])
        assert rc == 0
        assert "feasible races: 1" in capsys.readouterr().out

    def test_analyze_budgeted_pair_decided_structurally(self, execution_file, capsys):
        # hopeless search budget, but structure alone decides the pair
        rc = main(["analyze", execution_file, "--pair", "post_left",
                   "post_right", "--relation", "mhb", "--max-states", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MHB(post_left, post_right) = TRUE" in out
        assert "structural" in out

    def test_analyze_budgeted_pair_unknown(self, execution_file, capsys):
        # w3 can never complete before post_left begins (the wait needs
        # a post), but refuting that needs the exact engine: structure
        # says nothing, the observed order is the wrong way round, and
        # HMW is inert on event-style executions.  One state is not
        # enough, so the honest answer is UNKNOWN.
        rc = main(["analyze", execution_file, "--pair", "w3", "post_left",
                   "--relation", "chb", "--max-states", "1"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "UNKNOWN" in out
        assert "undecided under the budget" in out

    def test_analyze_budgeted_pair_decided_by_witness_reuse(
        self, execution_file, capsys
    ):
        # the same hopeless budget, but the portfolio widens the
        # observed schedule into an overlap witness: decided without
        # any exact search
        rc = main(["analyze", execution_file, "--pair", "post_left", "w3",
                   "--relation", "ccw", "--max-states", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CCW(post_left, w3) = TRUE" in out
        assert "witness" in out

    def test_analyze_backends_restricts_the_ladder(self, execution_file, capsys):
        # an explicit cheap-only ladder cannot refute CHB(w3, post_left)
        rc = main(["analyze", execution_file, "--pair", "w3", "post_left",
                   "--relation", "chb", "--backends", "structural,observed"])
        assert rc == 3
        assert "UNKNOWN" in capsys.readouterr().out

    def test_analyze_plan_default_decides(self, execution_file, capsys):
        rc = main(["analyze", execution_file, "--pair", "post_left",
                   "post_right", "--relation", "mhb", "--plan", "default"])
        assert rc == 0
        assert "MHB(post_left, post_right) = TRUE" in capsys.readouterr().out

    def test_analyze_unknown_backend_exits_2(self, execution_file, capsys):
        rc = main(["analyze", execution_file, "--pair", "post_left", "w3",
                   "--backends", "structural,nosuch"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err and "Traceback" not in err

    def test_races_prints_planner_report(self, execution_file, capsys):
        rc = main(["races", execution_file, "--feasible"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planner:" in out
        assert "answered" in out

    def test_analyze_summary_budget_blown_is_clean(self, execution_file, capsys):
        """The boolean summary path raises internally; main() must turn
        that into a diagnostic plus exit status 3, not a traceback."""
        rc = main(["analyze", execution_file, "--max-states", "1"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "search budget exceeded" in err
        assert "Traceback" not in err

    def test_explore_races_budget(self, program_file, capsys):
        rc = main(["explore", program_file, "--races", "--timeout", "0"])
        assert rc == 3
        assert "undecided under the budget" in capsys.readouterr().out


class TestCliRobustness:
    """Bad input never tracebacks: one-line diagnostic, exit status 2."""

    def test_parse_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.rp"
        path.write_text("proc { this is not a program")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "parse error" in err and "Traceback" not in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["analyze", missing]) == 2
        assert "cannot access input" in capsys.readouterr().err

    def test_corrupt_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text('{"format": "repro-ex')
        assert main(["races", str(path)]) == 2
        assert "invalid JSON input" in capsys.readouterr().err

    def test_wrong_format_exits_2(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "version": 1}')
        assert main(["races", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid input" in err and "Traceback" not in err

    def test_resume_without_checkpoint_exits_2(self, execution_file, capsys):
        assert main(["races", execution_file, "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, execution_file, monkeypatch, capsys):
        def boom(path):
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.cli.serialize.load", boom)
        assert main(["races", execution_file]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestSupervisedCli:
    def test_races_save_round_trip(self, execution_file, tmp_path):
        from repro.model.serialize import load_report

        report_path = tmp_path / "report.json"
        assert main(["races", execution_file, "--save", str(report_path)]) == 0
        report = load_report(str(report_path))
        assert report.complete
        assert len(report.races) == 1

    def test_checkpoint_then_resume(self, execution_file, tmp_path, capsys):
        journal = str(tmp_path / "scan.jsonl")
        assert main(["races", execution_file, "--checkpoint", journal]) == 0
        first = capsys.readouterr().out
        assert "feasible races: 1" in first
        assert main(["races", execution_file, "--checkpoint", journal,
                     "--resume"]) == 0
        again = capsys.readouterr().out
        assert "resume: reusing 1 journaled pair(s)" in again
        assert "feasible races: 1" in again

    def test_resume_refuses_other_scan(self, execution_file, tmp_path, capsys):
        journal = str(tmp_path / "scan.jsonl")
        assert main(["races", execution_file, "--checkpoint", journal]) == 0
        capsys.readouterr()
        rc = main(["races", execution_file, "--checkpoint", journal,
                   "--resume", "--per-pair-states", "7"])
        assert rc == 2
        assert "different scan" in capsys.readouterr().err


class TestSat:
    def test_sat_formula(self, tmp_path, capsys):
        path = tmp_path / "f.cnf"
        path.write_text(SAT_DIMACS)
        assert main(["sat", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "SAT" in out and "agree" in out

    def test_unsat_formula_event_style(self, tmp_path, capsys):
        path = tmp_path / "f.cnf"
        path.write_text(UNSAT_DIMACS)
        assert main(["sat", str(path), "--style", "evt", "--check"]) == 0
        out = capsys.readouterr().out
        assert "UNSAT" in out and "agree" in out


class TestExplore:
    def test_explore_summary(self, program_file, capsys):
        assert main(["explore", program_file]) == 0
        out = capsys.readouterr().out
        assert "runs: 18" in out
        assert "event_signatures: 2" in out

    def test_explore_reports_deadlock(self, tmp_path, capsys):
        path = tmp_path / "dead.rp"
        path.write_text(DEADLOCK_SRC)
        assert main(["explore", str(path)]) == 0
        assert "example deadlock" in capsys.readouterr().out

    def test_explore_program_races(self, program_file, capsys):
        assert main(["explore", program_file, "--races"]) == 0
        out = capsys.readouterr().out
        assert "feasible races across all executions: 1" in out
