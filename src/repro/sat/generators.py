"""Formula generators for tests and the theorem benchmarks.

Random 3-CNF near the satisfiability threshold (clause/variable ratio
around 4.27) gives a healthy mix of SAT and UNSAT instances, which the
theorem benches need: Theorems 1/3 are only exercised by UNSAT
formulas, Theorems 2/4 by SAT ones.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Optional, Tuple

from repro.sat.cnf import CNF


def random_ksat(
    num_vars: int,
    num_clauses: int,
    *,
    k: int = 3,
    seed: int = 0,
    allow_duplicate_vars: bool = False,
) -> CNF:
    """A uniformly random k-CNF formula with a reproducible seed.

    Each clause draws ``k`` distinct variables (unless
    ``allow_duplicate_vars``) with independent random polarities.
    """
    if num_vars < k and not allow_duplicate_vars:
        raise ValueError(f"need at least k={k} variables for distinct-variable clauses")
    rng = random.Random(seed)
    clauses: List[Tuple[int, ...]] = []
    for _ in range(num_clauses):
        if allow_duplicate_vars:
            vs = [rng.randint(1, num_vars) for _ in range(k)]
        else:
            vs = rng.sample(range(1, num_vars + 1), k)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in vs))
    return CNF(clauses, num_vars=num_vars)


def pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): provably UNSAT, classically hard for DPLL.

    Variable ``p(i, j)`` (pigeon ``i`` in hole ``j``) is numbered
    ``i * holes + j + 1``.  Returned in raw CNF; callers wanting 3-CNF
    apply :meth:`~repro.sat.cnf.CNF.to_3cnf`.
    """
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses: List[Tuple[int, ...]] = []
    for i in range(pigeons):
        clauses.append(tuple(var(i, j) for j in range(holes)))
    for j in range(holes):
        for i1, i2 in combinations(range(pigeons), 2):
            clauses.append((-var(i1, j), -var(i2, j)))
    return CNF(clauses, num_vars=pigeons * holes)


def chain_formula(n: int, *, satisfiable: bool = True) -> CNF:
    """An implication chain ``x1 -> x2 -> ... -> xn`` with unit heads.

    With ``satisfiable=False`` the chain is closed with ``~xn`` against
    a forced ``x1``, yielding a minimal UNSAT family whose refutations
    are linear -- useful for scaling plots where DPLL should stay fast.
    Padded to 3-CNF by literal repetition.
    """
    if n < 1:
        raise ValueError("need at least one variable")
    clauses: List[Tuple[int, ...]] = [(1, 1, 1)]
    for i in range(1, n):
        clauses.append((-i, i + 1, i + 1))
    if not satisfiable:
        clauses.append((-n, -n, -n))
    return CNF(clauses, num_vars=n)


def all_assignment_formula(num_vars: int) -> CNF:
    """A formula satisfied by every assignment (each clause tautological
    after padding: ``x | ~x | x``)."""
    return CNF([(v, -v, v) for v in range(1, num_vars + 1)], num_vars=num_vars)
