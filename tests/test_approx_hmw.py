"""Tests for the HMW-style safe-ordering algorithm.

The key claims, mirroring the paper's Section 4 discussion:

* phase 1 (trace pairing) is **unsafe** -- a concrete trace exhibits an
  edge the exact engine refutes;
* phases 2 and 3 are **safe** -- every edge is an exact
  must-complete-before ordering (property-tested);
* phase 3 sharpens phase 2, and both are incomplete w.r.t. the exact
  relation (the paper proves no polynomial algorithm can close that
  gap) -- a deadlock-avoidance ordering is exhibited that phase 3
  misses.
"""

import pytest
from hypothesis import given, settings

from repro.approx.hmw import HMWAnalysis, InfeasibleTraceError
from repro.core.queries import OrderingQueries
from repro.model.builder import ExecutionBuilder

from tests.strategies import medium_semaphore_executions


def two_v_one_consumer():
    """A: V(s); B: V(s); C: P(s), P(s) -- pairing is accidental."""
    b = ExecutionBuilder()
    va = b.process("A").sem_v("s")
    vb = b.process("B").sem_v("s")
    c = b.process("C")
    p1, p2 = c.sem_p("s"), c.sem_p("s")
    exe = b.build(observed_schedule=[va, vb, p1, p2])
    return exe, va, vb, p1, p2


class TestPhase1Unsafety:
    def test_pairing_edge_not_guaranteed(self):
        exe, va, vb, p1, p2 = two_v_one_consumer()
        h = HMWAnalysis(exe)
        phase1 = h.phase1()
        # trace pairing claims the i-th V precedes the i-th P
        assert (va, p1) in phase1
        # ... but another feasible execution pairs B's V with the first P
        q = OrderingQueries(exe)
        assert not q.mcb(va, p1)

    def test_phase1_needs_schedule(self):
        b = ExecutionBuilder()
        b.process("A").sem_v("s")
        with pytest.raises(ValueError, match="observed schedule"):
            HMWAnalysis(b.build()).phase1()


class TestCountingRuleSafety:
    def test_single_supplier_forced(self):
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        exe = b.build(observed_schedule=[v, p])
        h = HMWAnalysis(exe)
        assert (v, p) in h.phase2()
        assert (v, p) in h.phase3()

    def test_last_p_needs_all_vs(self):
        exe, va, vb, p1, p2 = two_v_one_consumer()
        h = HMWAnalysis(exe)
        p3 = h.phase3()
        # the second P needs two tokens: both Vs must complete before it
        assert (va, p2) in p3 and (vb, p2) in p3
        # the first P is not tied to a specific V
        assert (va, p1) not in p3 and (vb, p1) not in p3

    def test_initial_count_weakens_requirement(self):
        b = ExecutionBuilder()
        b.semaphore("s", 1)
        v = b.process("A").sem_v("s")
        p = b.process("B").sem_p("s")
        exe = b.build(observed_schedule=[v, p])
        # the initial token satisfies the P; V is not required
        assert (v, p) not in HMWAnalysis(exe).phase3()

    def test_iteration_sharpens(self):
        # chain: A: V(a); B: P(a), V(b); C: P(b)
        # phase 2 forces V(a)->P(a) and V(b)->P(b); only the iterated
        # phase 3 view (through closure) relates V(a) to P(b)
        b = ExecutionBuilder()
        va = b.process("A").sem_v("a")
        proc_b = b.process("B")
        pa, vb = proc_b.sem_p("a"), proc_b.sem_v("b")
        pb = b.process("C").sem_p("b")
        exe = b.build(observed_schedule=[va, pa, vb, pb])
        p3 = HMWAnalysis(exe).phase3()
        assert (va, pb) in p3

    def test_infeasible_trace_detected(self):
        # one V cannot serve two forced-before P's... but two P's with a
        # single V and no other supply is simply infeasible
        b = ExecutionBuilder()
        v = b.process("A").sem_v("s")
        c = b.process("B")
        c.sem_p("s"), c.sem_p("s")
        exe = b.build()
        with pytest.raises(InfeasibleTraceError):
            HMWAnalysis(exe).phase3()

    def test_rejects_event_style_executions(self):
        b = ExecutionBuilder()
        b.process("p").post("v")
        with pytest.raises(ValueError, match="semaphore"):
            HMWAnalysis(b.build())


class TestSafetyProperty:
    @given(medium_semaphore_executions())
    @settings(max_examples=15, deadline=None)
    def test_phase2_and_3_sound_wrt_exact(self, exe):
        h = HMWAnalysis(exe)
        q = OrderingQueries(exe)
        p2, p3 = h.phase2(), h.phase3()
        assert p2.issubset(p3)
        for a, b in p3.pairs:
            assert q.mcb(a, b), (a, b)


class TestIncompleteness:
    def test_deadlock_avoidance_ordering_missed(self):
        """A: V1(s); B: P1(s), V2(s); C: P2(s).

        Any execution completing P2 first deadlocks (P1's refill comes
        after P1), so P1 must complete before P2 in every *complete*
        execution.  The local counting rule cannot see that; the exact
        engine can.  This is the gap Theorem 1 says is unavoidable for
        polynomial algorithms.
        """
        b = ExecutionBuilder()
        v1 = b.process("A").sem_v("s")
        proc_b = b.process("B")
        p1, v2 = proc_b.sem_p("s"), proc_b.sem_v("s")
        p2 = b.process("C").sem_p("s")
        exe = b.build(observed_schedule=[v1, p1, v2, p2])
        q = OrderingQueries(exe)
        assert q.mcb(p1, p2)  # exact: forced by deadlock avoidance
        p3 = HMWAnalysis(exe).phase3()
        assert (p1, p2) not in p3  # HMW: invisible to counting
