"""Tests for the text syntax parser."""

import pytest

from repro.lang import ast as A
from repro.lang.interpreter import run_program
from repro.lang.parser import ParseError, parse_expression, parse_program


class TestExpressions:
    def test_precedence_arithmetic(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.right, A.BinOp) and e.right.op == "*"

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert isinstance(e, A.BinOp) and e.op == "*"

    def test_comparison_and_logic(self):
        e = parse_expression("x >= 1 && y < 2 || !z")
        assert isinstance(e, A.BinOp) and e.op == "or"

    def test_locals_vs_shared(self):
        e = parse_expression("$t + x")
        assert isinstance(e.left, A.Local) and isinstance(e.right, A.Shared)

    def test_unary_minus(self):
        e = parse_expression("-5")
        assert isinstance(e, A.UnOp) and e.op == "-"

    def test_division_and_modulo(self):
        assert parse_expression("7 / 2").op == "//"
        assert parse_expression("7 % 2").op == "%"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_expression("1 + 2 )")

    def test_evaluates_like_ast(self):
        e = parse_expression("(3 + 4) * 2 == 14")
        assert e.evaluate({}, {}, set()) == 1


class TestDeclarations:
    def test_shared_initial_values(self):
        prog = parse_program("shared X = 5\nshared Y = -2\nproc p { skip }")
        assert prog.shared_initial == {"X": 5, "Y": -2}

    def test_semaphore_defaults_to_zero(self):
        prog = parse_program("sem a\nsem b = 3\nproc p { skip }")
        assert prog.sem_initial == {"a": 0, "b": 3}

    def test_event_posted_flag(self):
        prog = parse_program("event go posted\nevent stop\nproc p { skip }")
        assert prog.var_initial == {"go"}

    def test_program_without_processes_rejected(self):
        with pytest.raises(ParseError, match="no processes"):
            parse_program("shared X = 1\n")


class TestStatements:
    def wrap(self, body):
        return parse_program(f"proc p {{ {body} }}").processes[0].body

    def test_assignment(self):
        (stmt,) = self.wrap("X := 1 + 2")
        assert isinstance(stmt, A.Assign) and stmt.target == "X"

    def test_local_assignment(self):
        (stmt,) = self.wrap("$t := X")
        assert isinstance(stmt, A.LocalAssign)

    def test_sync_statements(self):
        stmts = self.wrap("P(s); V(s); post v; wait v; clear v")
        kinds = [type(s) for s in stmts]
        assert kinds == [A.SemP, A.SemV, A.Post, A.Wait, A.Clear]

    def test_labels(self):
        (stmt,) = self.wrap("skip @marker")
        assert stmt.label == "marker"
        (stmt,) = self.wrap("P(s) @acquire")
        assert stmt.label == "acquire"

    def test_if_else(self):
        (stmt,) = self.wrap("if X == 1 { skip } else { V(s) }")
        assert isinstance(stmt, A.If)
        assert len(stmt.then) == 1 and len(stmt.orelse) == 1

    def test_if_without_else(self):
        (stmt,) = self.wrap("if X { skip }")
        assert stmt.orelse == ()

    def test_while(self):
        (stmt,) = self.wrap("while X < 3 { X := X + 1 }")
        assert isinstance(stmt, A.While)

    def test_fork_join(self):
        stmts = self.wrap("fork { proc a { skip } proc b { skip } } join")
        assert isinstance(stmts[0], A.Fork)
        assert [c.name for c in stmts[0].children] == ["a", "b"]
        assert isinstance(stmts[1], A.Join)

    def test_empty_fork_rejected(self):
        with pytest.raises(ParseError, match="at least one proc"):
            self.wrap("fork { }")

    def test_newlines_separate_statements(self):
        stmts = self.wrap("skip\nskip\nskip")
        assert len(stmts) == 3

    def test_comments_ignored(self):
        stmts = self.wrap("skip  # a comment\nskip")
        assert len(stmts) == 2


class TestErrors:
    def test_position_reported(self):
        with pytest.raises(ParseError) as exc:
            parse_program("proc p {\n  wibble %\n}")
        assert exc.value.line == 2

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_program("proc p { skip")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("proc p { skip ~ }")


class TestEndToEnd:
    FIGURE1 = """
    # the paper's Figure 1 fragment
    shared X = 0
    proc main {
      fork {
        proc t1 { post ev @post_left; X := 1 }
        proc t2 { if X == 1 { post ev @post_right } else { wait ev } }
        proc t3 { wait ev }
      }
      join
    }
    """

    def test_figure1_parses_and_runs(self):
        from repro.lang.scheduler import PriorityScheduler

        prog = parse_program(self.FIGURE1)
        trace = run_program(prog, PriorityScheduler(["main", "t1", "t2", "t3"]))
        exe = trace.to_execution()
        assert {"post_left", "post_right"} <= set(exe.labels)
        assert len(exe.dependences) == 1

    def test_parsed_equals_constructed(self):
        """The parsed Figure 1 behaves identically to the hand-built one."""
        from repro.core.queries import OrderingQueries
        from repro.lang.scheduler import PriorityScheduler
        from repro.workloads.programs import figure1_execution

        prog = parse_program(self.FIGURE1)
        exe = run_program(prog, PriorityScheduler(["main", "t1", "t2", "t3"])).to_execution()
        ref = figure1_execution()
        q, q_ref = OrderingQueries(exe), OrderingQueries(ref)
        pair = (exe.by_label("post_left").eid, exe.by_label("post_right").eid)
        ref_pair = (ref.by_label("post_left").eid, ref.by_label("post_right").eid)
        assert q.mhb(*pair) == q_ref.mhb(*ref_pair) is True

    def test_producer_consumer_text(self):
        src = """
        sem slots = 2
        sem full
        proc producer { P(slots); buf := 1; V(full); P(slots); buf := 2; V(full) }
        proc consumer { P(full); $x := buf; V(slots); P(full); $x := buf; V(slots) }
        """
        trace = run_program(parse_program(src), 1)
        assert trace.final_shared["buf"] == 2
