"""The Emrath/Ghosh/Padua task graph (event-style programs).

Section 4 describes the EGP method [2] for computing "guaranteed
run-time orderings" of executions using fork/join and Post/Wait/Clear:

* one node per synchronization event;
* *Machine* edges between consecutive synchronization events of a
  process; *Task Start* edges from a fork to each created process's
  first node; *Task End* edges from a process's last node to the join
  awaiting it;
* *Synchronization* edges: for each Wait node, the Posts that might
  have triggered it are those with no path from the Wait to the Post
  (the Wait would have had to precede it) and no path from the Post to
  the Wait passing through a Clear of the same variable (the post
  would have been erased); an edge is added from the closest common
  ancestor(s) of those candidate Posts to the Wait.
* the construction iterates, since new edges change path existence.

The graph's paths are intended to show guaranteed orderings.  The
paper's Figure 1 shows the method's blind spot: it ignores shared-data
dependences, so two Posts that every feasible execution orders (via a
write/read pair on a shared variable) show no path.
``benchmarks/bench_figure1_taskgraph.py`` regenerates exactly that
discrepancy, and ``bench_egp_soundness.py`` counts such misses on
random workloads (against the exact must-complete-before baseline,
since the task graph speaks about completion order of the serial
machine events).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.events import EventKind
from repro.model.execution import ProgramExecution
from repro.util.graphs import Digraph, closest_common_ancestors, reachable_from
from repro.util.relations import BinaryRelation


class TaskGraphEdge(enum.Enum):
    MACHINE = "machine"
    TASK_START = "task-start"
    TASK_END = "task-end"
    SYNCHRONIZATION = "synchronization"


class TaskGraph:
    """EGP task graph over the synchronization events of an execution."""

    def __init__(self, exe: ProgramExecution):
        self.exe = exe
        self.nodes: Tuple[int, ...] = exe.synchronization_events()
        self._node_set = set(self.nodes)
        self.graph = Digraph(self.nodes)
        self.edge_kinds: Dict[Tuple[int, int], TaskGraphEdge] = {}
        self._build_structural()
        self._add_synchronization_edges()

    # ------------------------------------------------------------------
    def _add(self, u: int, v: int, kind: TaskGraphEdge) -> bool:
        if self.graph.add_edge(u, v):
            self.edge_kinds[(u, v)] = kind
            return True
        return False

    def _sync_events_of(self, process: str) -> List[int]:
        return [e for e in self.exe.process_events(process) if e in self._node_set]

    def _build_structural(self) -> None:
        exe = self.exe
        for p in exe.process_names:
            evs = self._sync_events_of(p)
            for u, v in zip(evs, evs[1:]):
                self._add(u, v, TaskGraphEdge.MACHINE)
        for feid, children in exe.fork_children.items():
            for c in children:
                evs = self._sync_events_of(c)
                if evs:
                    self._add(feid, evs[0], TaskGraphEdge.TASK_START)
        for jeid, targets in exe.join_targets.items():
            for t in targets:
                evs = self._sync_events_of(t)
                if evs:
                    self._add(evs[-1], jeid, TaskGraphEdge.TASK_END)
                else:
                    # a task with no sync events is still ordered between
                    # its fork and the join
                    feid = exe.parent_fork.get(t)
                    if feid is not None:
                        self._add(feid, jeid, TaskGraphEdge.TASK_END)

    # ------------------------------------------------------------------
    def _candidate_posts(self, wait: int) -> List[int]:
        """Posts that might have triggered ``wait`` per the EGP rule."""
        exe = self.exe
        var = exe.event(wait).obj
        posts = [e for e in self.nodes if exe.event(e).kind is EventKind.POST
                 and exe.event(e).obj == var]
        clears = [e for e in self.nodes if exe.event(e).kind is EventKind.CLEAR
                  and exe.event(e).obj == var]
        below_wait = reachable_from(self.graph, wait)
        out = []
        for p in posts:
            if p in below_wait:
                continue  # the Wait must precede this Post
            below_post = reachable_from(self.graph, p)
            erased = any(
                c in below_post and wait in reachable_from(self.graph, c)
                for c in clears
            )
            if erased:
                continue  # every use of this Post passes a Clear first
            out.append(p)
        return out

    def _add_synchronization_edges(self) -> None:
        exe = self.exe
        waits = [e for e in self.nodes if exe.event(e).kind is EventKind.WAIT]
        changed = True
        while changed:
            changed = False
            for w in waits:
                cands = self._candidate_posts(w)
                if not cands:
                    continue
                for anc in closest_common_ancestors(self.graph, cands):
                    if anc == w:
                        continue
                    if self._add(anc, w, TaskGraphEdge.SYNCHRONIZATION):
                        changed = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def guaranteed_ordering(self, a: int, b: int) -> bool:
        """EGP's answer: is there a path from ``a``'s node to ``b``'s?"""
        if a not in self._node_set or b not in self._node_set:
            raise ValueError("task-graph orderings are defined on synchronization events only")
        return b in reachable_from(self.graph, a)

    def ordering_relation(self) -> BinaryRelation:
        """All guaranteed orderings the graph shows (over sync events)."""
        pairs = []
        for a in self.nodes:
            below = reachable_from(self.graph, a)
            pairs.extend((a, b) for b in below if b != a)
        return BinaryRelation(self.nodes, pairs)

    def edges_of_kind(self, kind: TaskGraphEdge) -> List[Tuple[int, int]]:
        return sorted(e for e, k in self.edge_kinds.items() if k is kind)

    def describe(self) -> str:
        """Printable summary used by the Figure 1 example."""
        lines = [f"task graph: {len(self.nodes)} nodes, {len(self.edge_kinds)} edges"]
        for (u, v), kind in sorted(self.edge_kinds.items()):
            eu, ev = self.exe.event(u), self.exe.event(v)
            lines.append(f"  {eu.describe():<30} -> {ev.describe():<30} [{kind.value}]")
        return "\n".join(lines)
