"""Structured trace records for long scans (spans and events).

Every interesting query here is NP-hard, so a real scan runs for
minutes to hours under budgets, worker pools and a tiered solver
portfolio -- and "where did the exponential time go" is a question the
final report alone cannot answer.  This module records it as it
happens, as a flat stream of JSON records:

* ``query`` spans -- one per primitive planner query, carrying the
  relation, the pair, the drop-set size, the per-tier escalation
  attempts (states/elapsed, answered or declined) and the final
  verdict.  The per-tier numbers are **exactly** the increments the
  :class:`~repro.solve.planner.PlannerReport` accumulates, so a trace
  re-aggregates into the same per-tier table the report prints
  (``repro trace summarize``);
* ``engine.tick`` events -- amortized progress of the exact search
  (states visited so far), so a stuck scan shows *which* search is
  burning states;
* ``pair`` spans -- one per classified conflicting pair;
* ``scan.start`` / ``scan.end`` -- scan-level bounds and tallies;
* ``worker.*`` events -- the supervised pool's lifecycle (spawn,
  ready, retry, crash, retire, plus ``dispatch``/``result`` bounds
  around every attempt -- the raw material of ``repro trace
  timeline``); supervised workers record their own ``query`` spans
  into a bounded in-memory sink and ship them home over the existing
  result channel, so a parallel scan's trace is as complete as a
  serial one's;
* ``checkpoint.write`` events -- one per journaled pair;
* ``profile`` -- the scan's merged
  :class:`~repro.obs.profile.SearchProfile` snapshot (choice-point
  attribution of engine states), emitted once before ``scan.end`` when
  the scan ran with profiling (``repro trace profile`` reads these);
* ``trace.drops`` -- bounded sinks never block or grow without limit;
  when they shed records they say how many.

All timestamps are :func:`time.monotonic` (the same clock budgets,
deadlines and tier tallies use), so spans, budget accounting and the
planner report are directly comparable.

The default sink is :data:`NULL_SINK`, a no-op whose ``enabled`` flag
lets every call site skip building records entirely -- untraced runs
pay nothing.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.profile import SearchProfile
from repro.solve.planner import PlannerReport

TRACE_FORMAT = "repro-trace"
# version 2 added the profile / worker.dispatch / worker.result kinds;
# version-1 traces (which simply lack them) are still readable
TRACE_VERSION = 2
SUPPORTED_TRACE_VERSIONS = (1, 2)


class TraceError(ValueError):
    """A trace file or record violates the span schema."""


# ----------------------------------------------------------------------
# span schema: kind -> ((required field, type-tuple), ...)
# ----------------------------------------------------------------------
_NUM = (int, float)
SPAN_SCHEMA: Dict[str, Tuple[Tuple[str, tuple], ...]] = {
    "trace.start": (("format", (str,)), ("version", (int,))),
    "query": (
        ("relation", (str,)),
        ("decided", (bool,)),
        ("tiers", (list,)),
    ),
    "engine.tick": (("states", (int,)),),
    "pair": (("a", (int,)), ("b", (int,)), ("status", (str,))),
    "scan.start": (("pairs", (int,)), ("todo", (int,))),
    "scan.end": (
        ("done", (int,)),
        ("feasible", (int,)),
        ("infeasible", (int,)),
        ("unknown", (int,)),
        ("interrupted", (bool,)),
    ),
    "worker.spawn": (("worker", (int,)),),
    "worker.ready": (("worker", (int,)),),
    "worker.retire": (("worker", (int,)),),
    "worker.crash": (("worker", (int,)), ("resource", (str,))),
    "worker.retry": (("a", (int,)), ("b", (int,)), ("attempt", (int,))),
    "worker.dispatch": (("worker", (int,)), ("a", (int,)), ("b", (int,))),
    "worker.result": (("worker", (int,)), ("a", (int,)), ("b", (int,))),
    "checkpoint.write": (("a", (int,)), ("b", (int,))),
    "profile": (("profile", (dict,)),),
    "trace.drops": (("dropped", (int,)),),
}

_TIER_FIELDS = (
    ("tier", (str,)),
    ("states", (int,)),
    ("elapsed", _NUM),
    ("answered", (bool,)),
)


def validate_record(rec: Any) -> None:
    """Check one record against the span schema; raise :class:`TraceError`.

    Records may carry extra fields (``worker`` provenance, witnesses'
    pair ids, ...); only the schema-required ones are enforced.
    """
    if not isinstance(rec, dict):
        raise TraceError(f"trace record is not an object: {rec!r}")
    kind = rec.get("kind")
    if kind not in SPAN_SCHEMA:
        raise TraceError(f"unknown trace record kind {kind!r}")
    t = rec.get("t")
    if not isinstance(t, _NUM) or isinstance(t, bool):
        raise TraceError(f"{kind}: missing/non-numeric timestamp {t!r}")
    for name, types in SPAN_SCHEMA[kind]:
        value = rec.get(name)
        if not isinstance(value, types) or (
            bool not in types and isinstance(value, bool)
        ):
            raise TraceError(
                f"{kind}: field {name!r} is {value!r}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if kind == "query":
        for entry in rec["tiers"]:
            if not isinstance(entry, dict):
                raise TraceError(f"query: tier entry is not an object: {entry!r}")
            for name, types in _TIER_FIELDS:
                value = entry.get(name)
                if not isinstance(value, types) or (
                    bool not in types and isinstance(value, bool)
                ):
                    raise TraceError(
                        f"query: tier field {name!r} is {value!r}"
                    )


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TraceSink:
    """Destination for trace records.

    ``enabled`` is the cheap guard call sites check before *building*
    a record, so the untraced hot path never allocates.
    """

    enabled = True

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(TraceSink):
    """The default: drops everything, reports itself disabled."""

    enabled = False

    def emit(self, record: Dict[str, Any]) -> None:
        pass


#: the shared no-op sink -- untraced runs all point here
NULL_SINK = NullSink()


def _stamp(record: Dict[str, Any]) -> Dict[str, Any]:
    if "t" not in record:
        record["t"] = time.monotonic()
    return record


class RecordingSink(TraceSink):
    """Bounded in-memory sink.

    Used by supervised workers (records are shipped home over the
    result channel, so the buffer must not grow with search time) and
    by tests.  Past ``capacity`` records are *dropped, not blocked on*,
    and the drop count is appended as a final ``trace.drops`` record by
    :meth:`drain`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self.records: List[Dict[str, Any]] = []
        self.dropped = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(_stamp(record))

    def drain(self) -> List[Dict[str, Any]]:
        """The buffered records (plus a ``trace.drops`` accounting
        record when any were shed); resets the sink."""
        out = self.records
        if self.dropped:
            out = out + [
                _stamp({"kind": "trace.drops", "dropped": self.dropped})
            ]
        self.records = []
        self.dropped = 0
        return out


class JsonlTraceSink(TraceSink):
    """Records as JSON lines at ``path`` (the ``--trace FILE`` sink).

    * the first line is a ``trace.start`` header (format + version);
    * records are buffered and written every ``buffer_records`` emits,
      so tracing adds one syscall per batch, not per span;
    * ``max_records`` bounds the file: past it, records are dropped
      (counted, reported as a final ``trace.drops`` record on close);
    * ``fsync=True`` additionally fsyncs on every flush for traces
      that must survive the same power cut the checkpoint journal does.
    """

    def __init__(
        self,
        path: str,
        *,
        buffer_records: int = 64,
        max_records: Optional[int] = None,
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.buffer_records = max(1, buffer_records)
        self.max_records = max_records
        self.fsync = fsync
        self.emitted = 0
        self.dropped = 0
        self._buffer: List[str] = []
        self._fh = open(path, "w")
        self.emit(
            {
                "kind": "trace.start",
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
            }
        )

    def emit(self, record: Dict[str, Any]) -> None:
        if self._fh.closed:
            self.dropped += 1
            return
        if self.max_records is not None and self.emitted >= self.max_records:
            self.dropped += 1
            return
        self.emitted += 1
        self._buffer.append(
            json.dumps(_stamp(record), sort_keys=True, separators=(",", ":"))
        )
        if len(self._buffer) >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer = []
        self._fh.flush()
        if self.fsync:
            import os

            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh.closed:
            return
        if self.dropped:
            # bypass the cap: the accounting record must always land
            self._buffer.append(
                json.dumps(
                    _stamp({"kind": "trace.drops", "dropped": self.dropped}),
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        self.flush()
        self._fh.close()


# ----------------------------------------------------------------------
# reading traces back
# ----------------------------------------------------------------------
def iter_trace(path: str) -> Iterable[Dict[str, Any]]:
    """Parse and schema-validate a trace file one record at a time.

    A generator: the file is read line by line and each record is
    validated (and the header checked) before it is yielded, so
    multi-GB journals are analyzed in constant memory.  The header
    record is yielded too, like :func:`read_trace` returns it.
    Raises :class:`TraceError` on the first malformed line, a missing
    or foreign header, an unsupported version, or an empty file.
    """
    with open(path) as fh:
        first = True
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                raise TraceError(f"{path}: corrupt trace line {lineno}")
            try:
                validate_record(rec)
            except TraceError as exc:
                raise TraceError(f"{path}: line {lineno}: {exc}")
            if first:
                first = False
                if (
                    rec.get("kind") != "trace.start"
                    or rec.get("format") != TRACE_FORMAT
                ):
                    raise TraceError(f"{path}: not a {TRACE_FORMAT} file")
                if rec.get("version") not in SUPPORTED_TRACE_VERSIONS:
                    raise TraceError(
                        f"{path}: unsupported trace version "
                        f"{rec.get('version')!r} (this library reads "
                        f"versions {SUPPORTED_TRACE_VERSIONS})"
                    )
            yield rec
        if first:
            raise TraceError(f"{path}: empty trace")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Every record of a trace file, validated, as one list.

    Convenience for tests and small traces; anything that may face a
    long scan's journal should stream :func:`iter_trace` instead.
    """
    return list(iter_trace(path))


class TraceSummary:
    """Aggregate view of one trace (see :func:`summarize_trace`)."""

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        self.planner = PlannerReport()
        self.pairs: Dict[str, int] = {}
        self.engine_ticks = 0
        self.worker_events: Dict[str, int] = {}
        self.checkpoint_writes = 0
        self.dropped = 0
        self.interrupted = False
        self.profile = SearchProfile()  # merged from any profile records
        for rec in records:
            kind = rec["kind"]
            if kind == "query":
                self.planner.queries += 1
                if not rec["decided"]:
                    self.planner.unknown += 1
                for entry in rec["tiers"]:
                    if entry["answered"]:
                        self.planner.record_answer(
                            entry["tier"],
                            states=entry["states"],
                            elapsed=entry["elapsed"],
                        )
                    else:
                        self.planner.record_cost(
                            entry["tier"],
                            states=entry["states"],
                            elapsed=entry["elapsed"],
                        )
            elif kind == "pair":
                status = rec["status"]
                self.pairs[status] = self.pairs.get(status, 0) + 1
            elif kind == "engine.tick":
                self.engine_ticks += 1
            elif kind.startswith("worker."):
                event = kind.split(".", 1)[1]
                self.worker_events[event] = self.worker_events.get(event, 0) + 1
            elif kind == "checkpoint.write":
                self.checkpoint_writes += 1
            elif kind == "profile":
                self.profile.merge(rec["profile"])
            elif kind == "trace.drops":
                self.dropped += rec["dropped"]
            elif kind == "scan.end":
                self.interrupted = self.interrupted or rec["interrupted"]

    def describe(self) -> str:
        lines = []
        if self.pairs:
            tally = " ".join(
                f"{status}={n}" for status, n in sorted(self.pairs.items())
            )
            lines.append(f"pairs: {tally}")
        lines.append(self.planner.describe())
        if self.worker_events:
            tally = " ".join(
                f"{event}={n}" for event, n in sorted(self.worker_events.items())
            )
            lines.append(f"workers: {tally}")
        if self.checkpoint_writes:
            lines.append(f"checkpoint writes: {self.checkpoint_writes}")
        if self.engine_ticks:
            lines.append(f"engine progress ticks: {self.engine_ticks}")
        if self.dropped:
            lines.append(f"trace records dropped (bounded sink): {self.dropped}")
        if self.profile.searches:
            lines.append(
                f"profile: {self.profile.searches} search(es), "
                f"{self.profile.total_states} attributed state(s) "
                f"(see `repro trace profile`)"
            )
        if self.interrupted:
            lines.append("scan was interrupted")
        return "\n".join(lines)


def summarize_trace(path: str) -> TraceSummary:
    """Aggregate a trace file back into the per-tier table the live
    :class:`~repro.solve.planner.PlannerReport` prints -- the two agree
    exactly, including spans shipped home by supervised workers.
    Streams :func:`iter_trace`, so journal size doesn't matter."""
    return TraceSummary(iter_trace(path))


__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "SUPPORTED_TRACE_VERSIONS",
    "SPAN_SCHEMA",
    "TraceError",
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "JsonlTraceSink",
    "validate_record",
    "iter_trace",
    "read_trace",
    "TraceSummary",
    "summarize_trace",
]
