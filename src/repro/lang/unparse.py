"""Pretty-printer for the mini-language (inverse of the parser).

``parse_program(unparse_program(p))`` reproduces ``p`` up to AST
equality -- property-tested over randomly generated programs in
``tests/test_lang_unparse.py``.  Used by the exploration tooling to
display programs and by users to persist programmatically-built ASTs
in the text format.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast as A

_INDENT = "  "


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
_PRECEDENCE = {
    "or": 1, "and": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "//": 6, "%": 6,
}
_SURFACE_OP = {"or": "||", "and": "&&", "//": "/"}


def unparse_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Expression to text, parenthesizing only where precedence needs it."""
    if isinstance(expr, A.Const):
        if expr.value < 0:
            text = f"-{-expr.value}"
            return f"({text})" if parent_prec >= 7 else text
        return str(expr.value)
    if isinstance(expr, A.Shared):
        return expr.name
    if isinstance(expr, A.Local):
        return f"${expr.name}"
    if isinstance(expr, A.UnOp):
        inner = unparse_expr(expr.operand, 7)
        return ("!" if expr.op == "not" else "-") + inner
    if isinstance(expr, A.BinOp):
        prec = _PRECEDENCE[expr.op]
        op = _SURFACE_OP.get(expr.op, expr.op)
        # left-associative: the right child needs a strictly higher level
        text = (
            f"{unparse_expr(expr.left, prec)} {op} "
            f"{unparse_expr(expr.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
def _label_suffix(stmt: A.Stmt) -> str:
    label = getattr(stmt, "label", None)
    return f" @{label}" if label else ""


def _unparse_stmt(stmt: A.Stmt, depth: int, out: List[str]) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, A.Skip):
        out.append(f"{pad}skip{_label_suffix(stmt)}")
    elif isinstance(stmt, A.Assign):
        out.append(f"{pad}{stmt.target} := {unparse_expr(stmt.expr)}{_label_suffix(stmt)}")
    elif isinstance(stmt, A.LocalAssign):
        out.append(f"{pad}${stmt.target} := {unparse_expr(stmt.expr)}{_label_suffix(stmt)}")
    elif isinstance(stmt, A.SemP):
        out.append(f"{pad}P({stmt.sem}){_label_suffix(stmt)}")
    elif isinstance(stmt, A.SemV):
        out.append(f"{pad}V({stmt.sem}){_label_suffix(stmt)}")
    elif isinstance(stmt, A.Post):
        out.append(f"{pad}post {stmt.var}{_label_suffix(stmt)}")
    elif isinstance(stmt, A.Wait):
        out.append(f"{pad}wait {stmt.var}{_label_suffix(stmt)}")
    elif isinstance(stmt, A.Clear):
        out.append(f"{pad}clear {stmt.var}{_label_suffix(stmt)}")
    elif isinstance(stmt, A.Fence):
        out.append(f"{pad}fence{_label_suffix(stmt)}")
    elif isinstance(stmt, A.If):
        lbl = f"@{stmt.label} " if stmt.label else ""
        out.append(f"{pad}if {lbl}{unparse_expr(stmt.cond)} {{")
        for s in stmt.then:
            _unparse_stmt(s, depth + 1, out)
        if stmt.orelse:
            out.append(f"{pad}}} else {{")
            for s in stmt.orelse:
                _unparse_stmt(s, depth + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, A.While):
        lbl = f"@{stmt.label} " if stmt.label else ""
        out.append(f"{pad}while {lbl}{unparse_expr(stmt.cond)} {{")
        for s in stmt.body:
            _unparse_stmt(s, depth + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, A.Fork):
        lbl = f"@{stmt.label} " if stmt.label else ""
        out.append(f"{pad}fork {lbl}{{")
        for child in stmt.children:
            _unparse_procdef(child, depth + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, A.Join):
        out.append(f"{pad}join{_label_suffix(stmt)}")
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"unknown statement {stmt!r}")


def _unparse_procdef(proc: A.ProcessDef, depth: int, out: List[str]) -> None:
    pad = _INDENT * depth
    out.append(f"{pad}proc {proc.name} {{")
    for stmt in proc.body:
        _unparse_stmt(stmt, depth + 1, out)
    out.append(f"{pad}}}")


def unparse_program(program: A.Program) -> str:
    """Program to its text form (see :mod:`repro.lang.parser` grammar)."""
    out: List[str] = []
    for name in sorted(program.shared_initial):
        out.append(f"shared {name} = {program.shared_initial[name]}")
    for name in sorted(program.sem_initial):
        out.append(f"sem {name} = {program.sem_initial[name]}")
    for name in sorted(program.var_initial):
        out.append(f"event {name} posted")
    if out:
        out.append("")
    for proc in program.processes:
        _unparse_procdef(proc, 0, out)
    return "\n".join(out) + "\n"
