"""Pytest fixtures (strategies live in tests.strategies)."""

import os

import pytest

from repro import faults as _faults
from tests.strategies import (  # noqa: F401  (re-exported fixtures)
    deadlocked_execution,
    fork_join_execution,
    independent_pair,
    vp_execution,
)


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """A test that arms the global failpoint registry must never leak
    its chaos schedule into the next test (or into spawned workers,
    via the exported environment variable)."""
    yield
    if _faults.REGISTRY.armed or "REPRO_FAILPOINTS" in os.environ:
        _faults.disarm()
