"""A live one-line stderr progress meter for long scans.

Prints ``scan 12/40 feasible=5 infeasible=6 unknown=1 3.1 pairs/s eta
9s`` on a carriage-returned line, throttled so even a fast scan pays a
handful of writes per second.  Enabled only when stderr is a terminal
(or ``REPRO_PROGRESS=1`` forces it -- how the tests observe it), so
piped/captured runs stay machine-readable.  When the scan carries a
wall-clock budget the ETA is clamped to the remaining budget: a scan
that will be cut off says so.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Optional

from repro.budget import Budget


class ScanProgress:
    """Incremental scan progress; feed it every classification."""

    def __init__(
        self,
        total: int,
        *,
        budget: Optional[Budget] = None,
        stream=None,
        enabled: Optional[bool] = None,
        min_interval: float = 0.1,
    ) -> None:
        self.total = total
        self.budget = budget
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            forced = os.environ.get("REPRO_PROGRESS", "") == "1"
            enabled = forced or bool(
                getattr(self.stream, "isatty", lambda: False)()
            )
        self.enabled = enabled and total > 0
        self.min_interval = min_interval
        self.done = 0
        self.counts = {"feasible": 0, "infeasible": 0, "unknown": 0}
        self._t0 = time.monotonic()
        self._last_render = 0.0
        self._dirty = False
        self._rendered = False  # anything on the line that needs a "\n"

    # ------------------------------------------------------------------
    def update(self, classification) -> None:
        self.done += 1
        status = classification.status
        self.counts[status] = self.counts.get(status, 0) + 1
        self._dirty = True
        if not self.enabled:
            return
        now = time.monotonic()
        if self.done < self.total and now - self._last_render < self.min_interval:
            return
        self._render(now)

    def finish(self) -> None:
        """Render any pending state and terminate the line.

        The newline is owed whenever anything was ever rendered -- the
        final ``update`` usually renders immediately (clearing
        ``_dirty``), and skipping the newline then would glue the shell
        prompt to the last progress line.
        """
        if not self.enabled:
            return
        if self._dirty:
            self._render(time.monotonic())
        if self._rendered:
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    def line(self, now: Optional[float] = None) -> str:
        now = time.monotonic() if now is None else now
        elapsed = max(1e-9, now - self._t0)
        rate = self.done / elapsed
        parts = [
            f"scan {self.done}/{self.total}",
            " ".join(
                f"{status}={self.counts.get(status, 0)}"
                for status in ("feasible", "infeasible", "unknown")
            ),
            f"{rate:.1f} pairs/s",
        ]
        remaining = self.total - self.done
        if remaining <= 0:
            parts.append("done")
        else:
            # the ETA always comes from the observed pair rate; a budget
            # deadline only *caps* it.  Before the first classification
            # there is no rate yet -- say so rather than print nothing.
            eta = remaining / rate if rate > 0 else None
            budget_left = (
                self.budget.remaining_seconds() if self.budget is not None else None
            )
            if eta is None:
                parts.append(
                    "eta ?" if budget_left is None else f"eta <={budget_left:.0f}s"
                )
            elif budget_left is not None and budget_left < eta:
                parts.append(f"eta {budget_left:.0f}s (budget caps {eta:.0f}s)")
            else:
                parts.append(f"eta {eta:.0f}s")
        return " ".join(parts)

    def _render(self, now: float) -> None:
        self._last_render = now
        self._dirty = False
        self._rendered = True
        self.stream.write("\r" + self.line(now).ljust(78))
        self.stream.flush()


__all__ = ["ScanProgress"]
