"""The memory-model axis: SC vs TSO across every layer.

The paper's relations are defined over sequentially consistent
processors; :mod:`repro.memmodel` makes that assumption explicit and
swappable.  These tests pin the whole axis:

* the registry (resolution, the one-line unknown-model error);
* program-order constraint derivation (SC = the adjacent chain; TSO
  relaxes exactly W -> R over disjoint variables);
* the ``fence`` statement through parse -> unparse -> parse;
* the simulator's store buffers (determinism under a seeded scheduler,
  drained buffers at exit);
* the store-buffering litmus end-to-end: race-free under SC, racy
  under TSO, repaired by a fence -- the acceptance criterion;
* differential agreement between the planner and brute-force
  enumeration under *both* models;
* planner gating: a TSO query never reaches an SC-only backend;
* serialization (version bump, back-compat default, fingerprints);
* the CLI flag and the daemon's strict model claims.
"""

import json

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.core.enumerate import relations_by_enumeration
from repro.core.queries import OrderingQueries
from repro.core.relations import RelationName
from repro.lang import ast as A
from repro.lang.interpreter import run_program
from repro.lang.parser import ParseError, parse_program
from repro.lang.scheduler import PriorityScheduler, RandomScheduler
from repro.lang.unparse import unparse_program
from repro.memmodel import (
    MEMORY_MODELS,
    SC,
    TSO,
    po_constraint_pairs,
    resolve_memory_model,
)
from repro.model import serialize
from repro.model.builder import ExecutionBuilder
from repro.model.events import EventKind
from repro.races.detector import FEASIBLE, INFEASIBLE, RaceDetector
from repro.solve import BACKENDS, DEFAULT_PLAN, QueryPlanner, SolveContext

from hypothesis import strategies as st

from repro.workloads.generators import random_computation_overlay


def tiny_overlay_executions():
    """Enumeration-tractable computation overlays (point-schedule
    enumeration is exponential in 2|E| -- keep |E| <= 6)."""
    return st.builds(
        random_computation_overlay,
        processes=st.integers(2, 3),
        events_per_process=st.integers(1, 2),
        semaphores=st.integers(1, 2),
        shared_vars=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )

LITMUS_SRC = """
proc A {
  x := 1 @aw
  $t := y @ar
}
proc B {
  y := 2 @bw
  x := 2 @bx
}
"""

LITMUS_FENCED_SRC = LITMUS_SRC.replace("x := 1 @aw", "x := 1 @aw\n  fence")


def litmus_execution(memory_model, *, fenced=False):
    """The store-buffering litmus, A prioritized so the recorded
    dependences are ``aw -> bx`` and ``ar -> bw``."""
    src = LITMUS_FENCED_SRC if fenced else LITMUS_SRC
    trace = run_program(
        parse_program(src),
        PriorityScheduler(["A"]),
        memory_model=memory_model,
    )
    return trace.to_execution()


def by_label(exe):
    return {exe.event(e).label: e for e in exe.eids if exe.event(e).label}


def classify(exe):
    report = RaceDetector(exe).feasible_races()
    labels = {e: exe.event(e).label for e in exe.eids}
    return {
        frozenset((labels[c.a], labels[c.b])): c.status
        for c in report.classifications
    }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_known_models(self):
        assert set(MEMORY_MODELS) == {"sc", "tso"}
        assert resolve_memory_model("sc") is SC
        assert resolve_memory_model("TSO") is TSO  # case-insensitive

    def test_unknown_model_is_a_one_line_value_error(self):
        with pytest.raises(ValueError) as exc:
            resolve_memory_model("pso")
        msg = str(exc.value)
        assert msg == "unknown memory model 'pso' (known models: sc, tso)"
        assert "\n" not in msg


# ----------------------------------------------------------------------
# constraint derivation
# ----------------------------------------------------------------------
class TestConstraintPairs:
    def test_sc_is_the_adjacent_chain(self):
        exe = litmus_execution("sc")
        for proc in exe.process_names:
            events = [exe.event(e) for e in exe.process_events(proc)]
            n = len(events)
            assert po_constraint_pairs(events, SC) == [
                (i, i + 1) for i in range(n - 1)
            ]

    def test_tso_relaxes_store_then_load(self):
        exe = litmus_execution("tso")
        ids = by_label(exe)
        # A = [aw (W x), ar (R y)]: the relaxed pair -- no constraint
        a_events = [exe.event(e) for e in exe.process_events("A")]
        assert po_constraint_pairs(a_events, TSO) == []
        # and the engine-facing accessor agrees
        assert exe.po_begin_predecessors(ids["ar"]) == ()
        # B = [bw (W y), bx (W x)]: store-store order is preserved
        b_events = [exe.event(e) for e in exe.process_events("B")]
        assert po_constraint_pairs(b_events, TSO) == [(0, 1)]

    def test_tso_keeps_same_variable_store_load_ordered(self):
        b = ExecutionBuilder()
        p = b.process("A")
        w = p.write("x")
        r = p.read("x")  # store-to-load forwarding: stays ordered
        b.memory_model("tso")
        exe = b.build()
        assert exe.po_begin_predecessors(r) == (w,)

    def test_tso_fence_restores_order_transitively(self):
        exe = litmus_execution("tso", fenced=True)
        ids = by_label(exe)
        a_events = [exe.event(e) for e in exe.process_events("A")]
        # aw -> fence -> ar: the adjacent chain is back
        assert po_constraint_pairs(a_events, TSO) == [(0, 1), (1, 2)]
        fence_eid = next(
            e for e in exe.process_events("A")
            if exe.event(e).kind is EventKind.FENCE
        )
        assert exe.po_begin_predecessors(ids["ar"]) == (fence_eid,)

    def test_sync_operations_are_implicit_fences(self):
        b = ExecutionBuilder()
        p = b.process("A")
        w = p.write("x")
        v = p.sem_v("s")
        b.memory_model("tso")
        exe = b.build()
        assert exe.po_begin_predecessors(v) == (w,)


# ----------------------------------------------------------------------
# the fence statement in the language
# ----------------------------------------------------------------------
class TestFenceLanguage:
    def test_parse_unparse_parse_round_trip(self):
        prog = parse_program(LITMUS_FENCED_SRC)
        text = unparse_program(prog)
        assert "fence" in text
        assert parse_program(text) == prog

    def test_fence_label_survives_round_trip(self):
        prog = parse_program("proc A { fence @f1 }")
        stmt = prog.processes[0].body[0]
        assert isinstance(stmt, A.Fence) and stmt.label == "f1"
        assert parse_program(unparse_program(prog)) == prog

    def test_fence_records_a_fence_event(self):
        exe = litmus_execution("sc", fenced=True)
        kinds = [exe.event(e).kind for e in exe.process_events("A")]
        assert kinds.count(EventKind.FENCE) == 1

    def test_unknown_statement_points_at_the_typo(self):
        with pytest.raises(ParseError) as exc:
            parse_program("proc A {\n  x := 1\n  fense\n}")
        msg = str(exc.value)
        assert "line 3" in msg and "unknown statement 'fense'" in msg

    def test_malformed_sync_op_names_the_expectation(self):
        with pytest.raises(ParseError, match="after 'P'"):
            parse_program("proc A { P x }")
        with pytest.raises(ParseError, match="event-variable name"):
            parse_program("proc A { post }")


# ----------------------------------------------------------------------
# the simulator's store buffers
# ----------------------------------------------------------------------
class TestStoreBuffer:
    @pytest.mark.parametrize("fenced", [False, True])
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_seeded_runs_are_deterministic(self, seed, fenced):
        src = LITMUS_FENCED_SRC if fenced else LITMUS_SRC

        def run():
            return run_program(
                parse_program(src),
                RandomScheduler(seed),
                memory_model="tso",
            )

        t1, t2 = run(), run()
        assert t1.steps == t2.steps
        assert t1.final_shared == t2.final_shared
        assert serialize.execution_to_dict(
            t1.to_execution()
        ) == serialize.execution_to_dict(t2.to_execution())

    @pytest.mark.parametrize("seed", range(8))
    def test_buffers_always_drain(self, seed):
        # whatever the interleaving, the run only terminates once every
        # buffered store has reached shared memory
        trace = run_program(
            parse_program(LITMUS_SRC), RandomScheduler(seed),
            memory_model="tso",
        )
        assert trace.final_shared["x"] in (1, 2)
        assert trace.final_shared["y"] == 2
        assert trace.memory_model == "tso"

    def test_store_to_load_forwarding_reads_own_buffer(self):
        # A's read of x must see its own buffered store, not the
        # initial value, even though the store has not drained
        trace = run_program(
            parse_program("proc A { x := 41\n $t := x\n y := $t + 1 }"),
            PriorityScheduler(["A"]),
            memory_model="tso",
        )
        assert trace.final_shared["y"] == 42

    def test_sc_runs_carry_the_sc_model(self):
        trace = run_program(
            parse_program(LITMUS_SRC), PriorityScheduler(["A"])
        )
        assert trace.memory_model == "sc"
        assert trace.to_execution().memory_model == "sc"


# ----------------------------------------------------------------------
# the acceptance litmus, end to end
# ----------------------------------------------------------------------
class TestStoreBufferingLitmus:
    def test_sc_proves_the_write_write_pair_infeasible(self):
        status = classify(litmus_execution("sc"))
        assert status[frozenset(("aw", "bx"))] == INFEASIBLE
        assert status[frozenset(("ar", "bw"))] == FEASIBLE

    def test_tso_exposes_the_store_buffered_race(self):
        status = classify(litmus_execution("tso"))
        assert status[frozenset(("aw", "bx"))] == FEASIBLE
        assert status[frozenset(("ar", "bw"))] == FEASIBLE

    def test_fence_restores_the_sc_verdicts(self):
        status = classify(litmus_execution("tso", fenced=True))
        assert status[frozenset(("aw", "bx"))] == INFEASIBLE
        assert status[frozenset(("ar", "bw"))] == FEASIBLE


# ----------------------------------------------------------------------
# differential: planner vs enumeration, under both models
# ----------------------------------------------------------------------
class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(tiny_overlay_executions())
    def test_planner_matches_enumeration_under_both_models(self, exe):
        for model in ("sc", "tso"):
            m_exe = exe.with_memory_model(model)
            truth = relations_by_enumeration(m_exe)
            queries = OrderingQueries(m_exe)
            n = len(m_exe)
            for a in range(n):
                for b in range(n):
                    if a == b:
                        continue
                    assert queries.ccw(a, b) == truth[RelationName.CCW](
                        a, b
                    ), (model, a, b)
                    assert queries.mhb(a, b) == truth[RelationName.MHB](
                        a, b
                    ), (model, a, b)

    @settings(max_examples=25, deadline=None)
    @given(tiny_overlay_executions())
    def test_sc_relaxes_nothing_tso_only_relaxes(self, exe):
        # SC rebuild is a no-op; the TSO feasible set only ever grows
        assert exe.with_memory_model("sc") is exe
        t_exe = exe.with_memory_model("tso")
        sc_truth = relations_by_enumeration(exe)
        tso_truth = relations_by_enumeration(t_exe)
        assert sc_truth[RelationName.CCW].pairs <= tso_truth[
            RelationName.CCW
        ].pairs


# ----------------------------------------------------------------------
# planner gating
# ----------------------------------------------------------------------
class TestPlannerGating:
    FULL_PLAN = tuple(sorted(BACKENDS))
    SC_ONLY = frozenset(
        name for name, b in BACKENDS.items()
        if "tso" not in b.supported_models
    )

    def test_sc_activates_every_backend(self):
        exe = litmus_execution("sc")
        planner = QueryPlanner(SolveContext(exe), DEFAULT_PLAN)
        assert planner.active_backends == planner.backends

    def test_tso_deactivates_sc_only_backends(self):
        exe = litmus_execution("tso")
        planner = QueryPlanner(SolveContext(exe), self.FULL_PLAN)
        active = {b.name for b in planner.active_backends}
        skipped = {b.name for b in planner.backends} - active
        assert skipped == {"hmw", "sat", "taskgraph", "vc"}
        for backend in planner.active_backends:
            assert "tso" in backend.supported_models

    def test_tso_scan_report_never_tallies_an_sc_only_tier(self):
        exe = litmus_execution("tso")
        report = RaceDetector(exe, plan=self.FULL_PLAN).feasible_races()
        consulted = set(report.planner.tiers)
        assert not (consulted & self.SC_ONLY), (
            f"SC-only tiers consulted under TSO: {consulted & self.SC_ONLY}"
        )
        assert report.planner.answered > 0  # the scan still concluded

    def test_every_backend_declares_sc_support(self):
        for name, backend in BACKENDS.items():
            assert "sc" in backend.supported_models, name


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestSerialization:
    def test_round_trip_preserves_the_model(self):
        exe = litmus_execution("tso")
        doc = serialize.execution_to_dict(exe)
        assert doc["version"] == serialize.FORMAT_VERSION
        assert doc["memory_model"] == "tso"
        back = serialize.execution_from_dict(doc)
        assert back.memory_model == "tso"
        assert serialize.execution_to_dict(back) == doc

    def test_version_1_documents_default_to_sc(self):
        exe = litmus_execution("sc")
        doc = serialize.execution_to_dict(exe)
        doc["version"] = 1
        del doc["memory_model"]
        back = serialize.execution_from_dict(doc)
        assert back.memory_model == "sc"
        assert serialize.execution_to_dict(back) == serialize.execution_to_dict(exe)

    def test_unknown_model_in_a_document_is_loud(self):
        doc = serialize.execution_to_dict(litmus_execution("sc"))
        doc["memory_model"] = "alpha21264"
        with pytest.raises(ValueError, match="unknown memory model"):
            serialize.execution_from_dict(doc)

    def test_fingerprint_folds_the_model_in(self):
        sc_exe = litmus_execution("sc")
        assert serialize.execution_fingerprint(
            sc_exe
        ) != serialize.execution_fingerprint(sc_exe.with_memory_model("tso"))


# ----------------------------------------------------------------------
# the CLI flag
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def litmus_file(self, tmp_path):
        path = tmp_path / "sb.rp"
        path.write_text(LITMUS_SRC)
        return str(path)

    def _run(self, litmus_file, tmp_path, model):
        out = tmp_path / f"sb_{model}.json"
        rc = main(["run", litmus_file, "--priority", "A",
                   "--memory-model", model, "--save", str(out)])
        assert rc == 0
        return str(out)

    def test_races_reports_the_tso_only_race(self, litmus_file, tmp_path,
                                             capsys):
        sc_path = self._run(litmus_file, tmp_path, "sc")
        tso_path = self._run(litmus_file, tmp_path, "tso")
        capsys.readouterr()
        assert main(["races", sc_path, "--feasible"]) == 0
        sc_out = capsys.readouterr().out
        assert "feasible races: 1 / 2" in sc_out
        assert main(["races", tso_path, "--feasible"]) == 0
        tso_out = capsys.readouterr().out
        assert "feasible races: 2 / 2" in tso_out

    def test_races_can_reinterpret_a_saved_execution(self, litmus_file,
                                                     tmp_path, capsys):
        sc_path = self._run(litmus_file, tmp_path, "sc")
        assert main(["races", sc_path, "--feasible",
                     "--memory-model", "tso"]) == 0
        assert "feasible races: 2 / 2" in capsys.readouterr().out

    def test_unknown_model_exits_2_with_one_line(self, litmus_file,
                                                 tmp_path, capsys):
        sc_path = self._run(litmus_file, tmp_path, "sc")
        capsys.readouterr()
        assert main(["races", sc_path, "--memory-model", "pso"]) == 2
        err = capsys.readouterr().err
        assert "unknown memory model 'pso'" in err

    def test_resume_refuses_a_different_model(self, litmus_file, tmp_path,
                                              capsys):
        sc_path = self._run(litmus_file, tmp_path, "sc")
        journal = str(tmp_path / "scan.journal")
        assert main(["races", sc_path, "--feasible",
                     "--checkpoint", journal]) == 0
        capsys.readouterr()
        rc = main(["races", sc_path, "--feasible", "--checkpoint", journal,
                   "--resume", "--memory-model", "tso"])
        assert rc == 2
        assert "refusing to resume" in capsys.readouterr().err
