"""Crash/retry policy for supervised pair classification.

A worker death is not always the pair's fault -- the host may have been
under memory pressure, the CPU cap may have been marginal -- so a
failed pair gets a bounded number of fresh attempts, spaced by
exponential backoff (so a systematically crashing pair cannot hot-loop
worker churn) and optionally with an *escalated* state budget, on the
theory that a pair which died near its cap may well be decidable just
past it.  When the attempts are spent, the pair is classified
``unknown`` with the resource that killed it, and the scan moves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised scan reacts to a failed pair attempt.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first failure (0 = fail immediately).
    backoff_base / backoff_factor:
        The ``k``-th retry is delayed ``base * factor**(k-1)`` seconds.
    state_escalation:
        Multiplier applied to the per-pair ``max_states`` cap on each
        retry (1.0 = same budget every attempt).
    """

    max_retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    state_escalation: float = 1.0

    def should_retry(self, failures: int) -> bool:
        """True when a pair that has failed ``failures`` times (>= 1)
        deserves another attempt."""
        return failures <= self.max_retries

    def delay(self, attempt: int) -> float:
        """Seconds to wait before dispatching retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base * (self.backoff_factor ** (attempt - 1))

    def escalated_states(
        self, max_states: Optional[int], attempt: int
    ) -> Optional[int]:
        """The per-pair state cap for ``attempt`` (0 = first try)."""
        if max_states is None or attempt <= 0 or self.state_escalation == 1.0:
            return max_states
        return max(1, int(max_states * (self.state_escalation ** attempt)))


__all__ = ["RetryPolicy"]
