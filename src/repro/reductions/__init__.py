"""The paper's reduction constructions (Theorems 1-4 and the remarks).

Each reduction maps a 3CNF formula ``B`` to a program execution and a
pair of marker events ``a``, ``b`` such that

* ``a MHB b``  iff  ``B`` is unsatisfiable   (Theorems 1 and 3), and
* ``b CHB a``  iff  ``B`` is satisfiable     (Theorems 2 and 4),

for counting semaphores (:mod:`repro.reductions.theorem1`) and for
event-style Post/Wait/Clear synchronization
(:mod:`repro.reductions.theorem3`).  The constructed programs contain
no conditionals and no shared variables, so every execution of the
program performs the same events and exhibits the same (empty)
shared-data dependences -- which is also why the results extend to the
Section 5.3 setting where ``D`` is ignored.

The remarks at the end of Section 5.1 are covered too: the Theorem 1
construction restricted to *binary* semaphores (exercised via the
engine's ``binary_semaphores`` mode), and the single-counting-semaphore
reduction from *sequencing to minimize maximum cumulative cost*
(Garey & Johnson SS7), implemented in
:mod:`repro.reductions.seqmaxcost` / :mod:`repro.reductions.single_semaphore`.
"""

from repro.reductions.common import SatReduction, decide_sat_via_ordering, decide_unsat_via_ordering
from repro.reductions.theorem1 import semaphore_reduction
from repro.reductions.theorem3 import event_reduction
from repro.reductions.seqmaxcost import SeqMaxCostInstance, solve_seqmaxcost, greedy_seqmaxcost
from repro.reductions.single_semaphore import single_semaphore_reduction

__all__ = [
    "SatReduction",
    "decide_sat_via_ordering",
    "decide_unsat_via_ordering",
    "semaphore_reduction",
    "event_reduction",
    "SeqMaxCostInstance",
    "solve_seqmaxcost",
    "greedy_seqmaxcost",
    "single_semaphore_reduction",
]
