"""Tests for the executable model axioms."""

import pytest

from repro.core.queries import OrderingQueries
from repro.core.witness import Witness
from repro.model.axioms import (
    AxiomViolation,
    _is_interval_order,
    check_dependences,
    check_structure,
    check_temporal_order,
    validate_execution,
)
from repro.model.builder import ExecutionBuilder
from repro.util.relations import BinaryRelation
from repro.workloads.generators import random_semaphore_execution


def clean_execution():
    b = ExecutionBuilder()
    main = b.process("main")
    f = main.fork()
    b.process("c", parent=f).write("x")
    main.join(f)
    main.read("x")
    b.dependence(1, 3)
    return b.build()


class TestStructureAxioms:
    def test_clean_execution_passes(self):
        assert check_structure(clean_execution()) == []

    def test_cyclic_dependence_reported(self):
        b = ExecutionBuilder()
        x = b.process("p").write("v")
        y = b.process("q").write("v")
        b.dependence(x, y)
        b.dependence(y, x)
        problems = check_structure(b.build())
        assert any("cyclic" in p for p in problems)

    def test_join_of_root_process_reported(self):
        b = ExecutionBuilder()
        b.process("other").skip()
        b.process("main").join(["other"])
        problems = check_structure(b.build())
        assert any("root process" in p for p in problems)

    def test_empty_process_reported(self):
        b = ExecutionBuilder()
        b.process("p").skip()
        b.process("empty")
        problems = check_structure(b.build())
        assert any("no events" in p for p in problems)


class TestDependenceAxioms:
    def test_conflicting_dependence_ok(self):
        assert check_dependences(clean_execution()) == []

    def test_non_conflicting_dependence_reported(self):
        b = ExecutionBuilder()
        x = b.process("p").read("v")
        y = b.process("q").read("v")  # read/read: no conflict
        b.dependence(x, y)
        problems = check_dependences(b.build())
        assert len(problems) == 1

    def test_require_conflict_can_be_disabled(self):
        b = ExecutionBuilder()
        x = b.process("p").skip()
        y = b.process("q").skip()
        b.dependence(x, y)
        assert check_dependences(b.build(), require_conflict=False) == []


class TestIntervalOrderCheck:
    def test_two_plus_two_detected(self):
        # a->b, c->d with no cross edges: the canonical non-interval order
        r = BinaryRelation(range(4), [(0, 1), (2, 3)])
        assert not _is_interval_order(r)

    def test_chain_is_interval(self):
        r = BinaryRelation(range(3), [(0, 1), (1, 2), (0, 2)])
        assert _is_interval_order(r)

    def test_empty_is_interval(self):
        assert _is_interval_order(BinaryRelation(range(3), []))


class TestTemporalOrderAxioms:
    def test_witness_temporal_relation_passes(self):
        exe = clean_execution()
        w = OrderingQueries(exe).feasible_witness()
        assert w is not None
        assert check_temporal_order(exe, w.temporal_relation()) == []

    def test_missing_structural_edge_reported(self):
        exe = clean_execution()
        empty = BinaryRelation(range(len(exe)), [])
        problems = check_temporal_order(exe, empty)
        assert any("structural edge" in p for p in problems)

    def test_wrong_universe_reported(self):
        exe = clean_execution()
        problems = check_temporal_order(exe, BinaryRelation(range(2), []))
        assert problems

    def test_missing_dependence_edge_reported(self):
        # D edge between otherwise unrelated processes: a temporal order
        # satisfying only the structural edges must be flagged
        b = ExecutionBuilder()
        x = b.process("p").write("v")
        y = b.process("q").read("v")
        b.dependence(x, y)
        exe = b.build()
        problems = check_temporal_order(exe, BinaryRelation(range(len(exe)), []))
        assert any("dependence" in p for p in problems)


class TestValidateExecution:
    def test_valid_execution_returns_empty(self):
        assert validate_execution(clean_execution()) == []

    def test_raises_on_violation(self):
        b = ExecutionBuilder()
        x = b.process("p").read("v")
        y = b.process("q").read("v")
        b.dependence(x, y)
        with pytest.raises(AxiomViolation):
            validate_execution(b.build())

    def test_collects_without_raising(self):
        b = ExecutionBuilder()
        x = b.process("p").read("v")
        y = b.process("q").read("v")
        b.dependence(x, y)
        problems = validate_execution(b.build(), raise_on_error=False)
        assert problems

    def test_random_generated_executions_are_valid(self):
        for seed in range(5):
            exe = random_semaphore_execution(seed=seed)
            assert validate_execution(exe) == []

    def test_witness_relations_are_valid_temporal_orders(self):
        for seed in range(3):
            exe = random_semaphore_execution(
                processes=2, events_per_process=2, seed=seed
            )
            w = OrderingQueries(exe).feasible_witness()
            assert validate_execution(exe, w.temporal_relation()) == []
