"""Layered best-effort ordering analysis under a budget.

The paper's theorems mean an exact analyzer cannot promise polynomial
time; a practical tool therefore needs graceful degradation.
:class:`BestEffortOrdering` answers must-complete-before queries by
delegating to the solver portfolio's
:class:`~repro.solve.planner.QueryPlanner` on a best-effort plan:

1. **structural** reachability (program order, fork/join, dependences)
   -- linear, always sound;
2. the **observed schedule** -- a known member of ``F``, so its
   completion order soundly decides could-complete-before queries;
3. the **HMW counting phases** (semaphore executions only) --
   polynomial, sound;
4. the **exact engine**, bounded by ``max_states`` / a
   :class:`~repro.budget.Budget` per query.

Answers are three-valued: ``True``/``False`` when some tier decides
soundly, ``None`` when every tier within budget is inconclusive
(never a guess).  ``decided_by`` records which tier settled each
query, so callers can report how much of the truth was cheap -- the
empirical content of the paper's "polynomial algorithms compute only
*some* of the orderings".  :meth:`mcb_verdict` exposes the same answer
as a :class:`~repro.budget.Verdict` with that provenance attached.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.budget import Budget, Verdict
from repro.core.queries import OrderingQueries
from repro.model.execution import ProgramExecution
from repro.solve.backends import BEST_EFFORT_PLAN
from repro.solve.planner import QueryPlanner
from repro.util.relations import BinaryRelation


class BestEffortOrdering:
    """Three-valued must-complete-before with layered escalation."""

    def __init__(
        self,
        exe: ProgramExecution,
        *,
        max_states: Optional[int] = 50_000,
        use_hmw: bool = True,
        budget: Optional[Budget] = None,
        queries: Optional[OrderingQueries] = None,
    ) -> None:
        self.exe = exe
        self.queries = queries or OrderingQueries(
            exe, max_states=max_states, budget=budget
        )
        self.decided_by: Dict[Tuple[int, int], str] = {}
        self.exhausted: Dict[Tuple[int, int], Optional[str]] = {}
        plan = BEST_EFFORT_PLAN
        if not use_hmw:
            plan = tuple(name for name in plan if name != "hmw")
        # shares the queries object's SolveContext, so structural
        # bitsets, the validated observed schedule and any witnesses the
        # exact paths found are reused rather than recomputed
        self.planner = QueryPlanner(self.queries.ctx, plan)
        self._observed_pos: Optional[Dict[int, int]] = self.queries.ctx.observed_pos
        self._hmw_relation: Optional[BinaryRelation] = (
            self.queries.ctx.hmw_relation() if use_hmw else None
        )

    # ------------------------------------------------------------------
    def mcb(self, a: int, b: int) -> Optional[bool]:
        """Must ``a`` complete before ``b``?  True/False/None (unknown)."""
        key = (a, b)
        if a == b:
            self.decided_by[key] = "trivial"
            return False
        v = self.planner.mcb_verdict(
            a, b, budget=self.queries.budget, max_states=self.queries.max_states
        )
        if v.is_unknown:
            self.decided_by[key] = "unknown"
            self.exhausted[key] = v.resource
            return None
        self.decided_by[key] = v.provenance
        return v.to_bool()

    def mcb_verdict(self, a: int, b: int) -> Verdict:
        """:meth:`mcb` as a provenance-carrying verdict."""
        answer = self.mcb(a, b)
        key = (a, b)
        if answer is None:
            return Verdict.unknown(
                resource=self.exhausted.get(key), stats=self.queries.stats
            )
        return Verdict.of_bool(
            answer, self.decided_by[key], stats=self.queries.stats
        )

    # ------------------------------------------------------------------
    def relation_with_provenance(self) -> Dict[str, object]:
        """All pairs classified, with per-layer counts.

        Returns ``{"relation": {(a, b): True/False/None}, "layers":
        {layer: count}}``.
        """
        n = len(self.exe)
        relation: Dict[Tuple[int, int], Optional[bool]] = {}
        for a in range(n):
            for b in range(n):
                if a != b:
                    relation[(a, b)] = self.mcb(a, b)
        layers: Dict[str, int] = {}
        for layer in self.decided_by.values():
            layers[layer] = layers.get(layer, 0) + 1
        return {"relation": relation, "layers": layers}
