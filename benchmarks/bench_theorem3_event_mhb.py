"""Experiment TH3 -- Theorem 3: must-have-happened-before for event-style (Post/Wait/Clear)
synchronization is co-NP-hard.

The reduction's claimed equivalence -- a MHB b <=> UNSAT(B) -- is
checked over a seeded grid of random 3CNF formulas against the
library's own DPLL solver; agreement must be 100%.  The reported
states/seconds columns exhibit the exponential growth the theorem
predicts for the exact decision procedure.
"""

from conftest import report, table
from _theorem_common import rows_to_table, sweep

from repro.reductions import event_reduction


def test_theorem3_mhb_equivalence(benchmark):
    rows = benchmark(sweep, event_reduction, "mhb")
    assert all(r["agree"] for r in rows)
    headers, body = rows_to_table(rows)
    lines = table(headers, body)
    lines.append("")
    lines.append("claim: a MHB b <=> UNSAT(B) -- agreement 100%")
    report("theorem3_mhb", lines)
