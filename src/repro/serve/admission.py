"""Bounded admission with backpressure for the query daemon.

Every query is NP-hard (Theorems 1 and 3), so "queue everything and
hope" is not a strategy: an unbounded queue converts overload into
unbounded latency and an eventual OOM.  The daemon instead admits a
bounded number of requests (queued + executing); past the bound the
client gets a structured ``429`` with a ``Retry-After`` estimate
derived from the observed service rate -- backpressure the client can
act on, instead of silence it times out on.

During drain, admission closes entirely (:class:`Draining`, served as
``503``) while in-flight requests finish -- new work is the one thing
a stopping daemon must refuse.

``Retry-After`` is **capped** (``retry_after_cap``, default 5 minutes):
the estimate is an EWMA of observed service times, and one burst of
pathological queries must not poison it into telling every rejected
client to go away for hours -- a capped hint keeps clients probing at
a bounded cadence while the EWMA decays back to reality.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict

from repro import faults


class Overloaded(Exception):
    """Admission refused: at capacity.  ``retry_after`` is the seconds a
    client should wait before retrying (the 429's ``Retry-After``)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"at capacity; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class Draining(Exception):
    """Admission refused: the daemon is shutting down (served as 503)."""


class AdmissionQueue:
    """Counting gate over the daemon's in-flight requests.

    ``try_enter`` never blocks -- an HTTP handler thread either gets a
    slot or an exception to serialize; holding threads release with the
    observed service time, which feeds the EWMA behind ``Retry-After``.
    """

    def __init__(
        self,
        limit: int,
        *,
        workers: int = 1,
        retry_after_cap: float = 300.0,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if retry_after_cap < 1.0:
            raise ValueError("retry_after_cap must be >= 1 second")
        self.limit = limit
        self.workers = max(1, workers)
        self.retry_after_cap = retry_after_cap
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._draining = False
        self._ewma_seconds = 1.0  # prior until real service times land
        self.admitted = 0
        self.rejected_busy = 0
        self.rejected_draining = 0

    # ------------------------------------------------------------------
    def try_enter(self) -> None:
        """Claim a slot or raise :class:`Overloaded` / :class:`Draining`."""
        faults.fire("serve.admission")
        with self._lock:
            if self._draining:
                self.rejected_draining += 1
                raise Draining("shutting down; not admitting new requests")
            if self._active >= self.limit:
                self.rejected_busy += 1
                # everyone ahead shares `workers` lanes; first-order
                # estimate of when a slot frees up, bounded so a burst
                # of pathological service times can't tell clients to
                # back off for hours
                depth = self._active - self.workers + 1
                retry_after = min(
                    self.retry_after_cap,
                    max(1.0, self._ewma_seconds * max(1, depth) / self.workers),
                )
                raise Overloaded(retry_after)
            self._active += 1
            self.admitted += 1

    def release(self, elapsed: float) -> None:
        """Return a slot, folding the request's service time into the
        EWMA that prices ``Retry-After`` for rejected clients."""
        with self._lock:
            self._active = max(0, self._active - 1)
            if elapsed >= 0.0:
                self._ewma_seconds += 0.2 * (elapsed - self._ewma_seconds)
            self._idle.notify_all()

    # -- drain ----------------------------------------------------------
    def begin_drain(self) -> None:
        with self._lock:
            self._draining = True
            self._idle.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until every admitted request released (or timeout);
        True when idle."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._active > 0:
                left = deadline - time.monotonic()
                if left <= 0.0:
                    return False
                self._idle.wait(left)
            return True

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "limit": self.limit,
                "retry_after_cap": self.retry_after_cap,
                "active": self._active,
                "draining": self._draining,
                "admitted": self.admitted,
                "rejected_busy": self.rejected_busy,
                "rejected_draining": self.rejected_draining,
                "ewma_service_seconds": self._ewma_seconds,
            }


__all__ = ["AdmissionQueue", "Overloaded", "Draining"]
